"""Parallel incremental refinement (Section V.C.2, Algorithm 4, Figure 5).

Vertices parked in the pseudo-partition are drained in rounds:

1. **Independent-set selection** — a pseudo vertex moves this round only
   if it has no pseudo neighbor with a smaller vertex ID
   (``__any_sync`` in the paper), so adjacent vertices never move
   concurrently and the most-suitable-partition computation stays
   race-free.
2. **Most-suitable partition** — for each selected vertex, count its
   neighbors in every partition whose weight is still below ``W_pmax``;
   the partition with the most neighbors wins, ties broken by lighter
   partition (Algorithm 4 line 20).  A vertex with *no* feasible
   partition falls back to the lightest partition — a progress guarantee
   the paper leaves implicit.
3. **Move commit** (Figure 5) — candidate moves are sorted by neighbor
   count descending, the ``delta_p_wgt`` array (k segments × moves) is
   built, a parallel segmented scan accumulates per-partition weight
   deltas, and the longest prefix of moves that keeps every partition
   under ``W_pmax`` is applied.  If even the first move does not fit,
   it is retargeted to the partition with the most headroom so every
   round makes progress.

Rounds repeat until the pseudo-partition is empty.
"""
# repro-lint: hot-path

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.gpusim.context import FULL_MASK, GpuContext
from repro.core.backend import get_backend
from repro.gpusim.primitives import charge_segmented_scan, sort_by_key
from repro.gpusim.warp import Warp
from repro.graph.bucketlist import (
    EMPTY,
    SLOTS_PER_BUCKET,
    BucketListGraph,
)
from repro.partition.state import PartitionState
from repro.utils.errors import PartitionError
from repro.obs import span


@dataclass
class RefineStats:
    """Diagnostics of one refinement drain."""

    rounds: int = 0
    moves_applied: int = 0
    forced_moves: int = 0
    deferred_moves: int = 0
    rounds_move_counts: List[int] = field(default_factory=list)


@dataclass
class _MoveSet:
    """Candidate moves of one round (aligned arrays)."""

    vertices: np.ndarray
    targets: np.ndarray
    nbr_counts: np.ndarray
    weights: np.ndarray


def refine_pseudo(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    vertex_in_pseudo: Sequence[int],
    mode: str = "vector",
    max_rounds: int = 64,
) -> RefineStats:
    """Drain the pseudo-partition (Algorithm 4); mutates ``state``.

    Args:
        vertex_in_pseudo: The centralized buffer from Algorithm 3, in
            insertion order.
        max_rounds: Safety cap; any leftovers are force-assigned to the
            lightest partition that still has ``W_pmax`` headroom so the
            drain always terminates.
    """
    stats = RefineStats()
    buffer = np.asarray(vertex_in_pseudo, dtype=np.int64)
    # repro-lint: allow[hot-path-loop] round loop bounded by max_rounds, not per-vertex
    while buffer.size and stats.rounds < max_rounds:
        stats.rounds += 1
        with span("refine.find-moves"):
            moves = _find_moves(ctx, graph, state, buffer, mode)
        with span("refine.commit"):
            applied = _commit_moves(ctx, state, moves, stats)
            if applied.size:
                buffer = buffer[~np.isin(buffer, applied)]
        stats.rounds_move_counts.append(int(applied.size))
    # Safety: force-place any leftovers (can only trigger at the cap).
    # Honor the balance bound where possible: the lightest partition
    # *with headroom* wins; only when no partition can absorb the vertex
    # does the global lightest take it.
    # repro-lint: allow[hot-path-loop] cap-overflow fallback; buffer is empty in normal runs
    for u in buffer:
        w_u = state.vertex_weight(int(u))
        fits = state.part_weights + w_u <= state.w_pmax()
        if np.any(fits):
            weights = np.where(fits, state.part_weights, np.iinfo(np.int64).max)
            target = int(np.argmin(weights))
        else:
            target = int(np.argmin(state.part_weights))
        state.move(int(u), target)
        stats.forced_moves += 1
        stats.moves_applied += 1
    if state.pseudo_weight != 0:
        raise PartitionError("pseudo-partition not fully drained")
    return stats


# ---------------------------------------------------------------------------
# Step 1 + 2: independent set and most-suitable partition.
# ---------------------------------------------------------------------------


def _find_moves(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    buffer: Sequence[int],
    mode: str,
) -> _MoveSet:
    if mode == "vector":
        return _find_moves_vector(ctx, graph, state, buffer)
    if mode == "warp":
        return _find_moves_warp(ctx, graph, state, buffer)
    raise ValueError(f"unknown mode {mode!r}")


def _choose_partition(
    counts: np.ndarray,
    feasible: np.ndarray,
    part_weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Most-suitable partition for every row of the ``(selected, k)``
    counts matrix, as one masked argmax.

    The tie-break rule is shared with the warp path (Algorithm 4 line
    20) and is exact integer lexicographic comparison — most neighbors,
    then lighter partition, then smaller index — never a floating-point
    score, so the two execution paths cannot diverge on ties.  Rows with
    no feasible partition fall back to the globally lightest partition —
    a progress guarantee the paper leaves implicit.

    Dispatches to the active compute backend
    (:meth:`~repro.core.backend.numpy_backend.KernelBackend.choose_partition`
    holds the reference implementation); every backend must reproduce
    it bit-for-bit.

    Returns aligned ``(targets, counts_at_target)`` arrays.
    """
    return get_backend().choose_partition(counts, feasible, part_weights)


def _find_moves_vector(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    buffer: Sequence[int],
) -> _MoveSet:
    pseudo = state.pseudo_label
    k = state.k
    vertices = np.asarray(buffer, dtype=np.int64)
    partition = state.partition
    w_pmax = state.w_pmax()

    with ctx.ledger.kernel("select-independent"):
        slot_idx, owner = graph.slot_index_arrays(vertices)
        nbrs = graph.bucket_list[slot_idx]
        filled = nbrs != EMPTY
        owner_f = owner[filled]
        nbrs_f = nbrs[filled]
        # Independent set: blocked if a pseudo neighbor has a smaller ID.
        blocking = (partition[nbrs_f] == pseudo) & (
            nbrs_f < vertices[owner_f]
        )
        blocked = np.zeros(vertices.size, dtype=bool)
        blocked[owner_f[blocking]] = True
        instr = 3 * graph.bucket_count[vertices] + 2
        trans = graph.bucket_count[vertices] + 1
        ctx.charge_irregular_warps(instr, trans)

    selected_mask = ~blocked
    selected = vertices[selected_mask]
    if selected.size == 0:
        return _MoveSet(
            vertices=selected,
            targets=selected.copy(),
            nbr_counts=selected.copy(),
            weights=selected.copy(),
        )

    with ctx.ledger.kernel("count-partitions"):
        # Count neighbors of each selected vertex per real partition.
        sel_index = np.full(vertices.size, -1, dtype=np.int64)
        sel_index[selected_mask] = np.arange(selected.size)
        in_selected = sel_index[owner_f] >= 0
        nbr_part = partition[nbrs_f[in_selected]]
        rows = sel_index[owner_f[in_selected]]
        real = (nbr_part >= 0) & (nbr_part < k)
        counts = np.bincount(
            rows[real] * k + nbr_part[real], minlength=selected.size * k
        ).reshape(selected.size, k)
        feasible = state.part_weights < w_pmax
        k_feasible = int(feasible.sum())
        # Algorithm 4 re-scans the vertex's buckets once per feasible
        # partition (lines 12-19 re-read ``bucket_list`` inside the
        # ``for p`` loop), so both the instruction and the memory cost
        # grow with k — the paper's explanation for the speedup dropping
        # as k rises (Section VI.B).
        instr = graph.bucket_count[selected] * (2 + 2 * max(k_feasible, 1))
        trans = graph.bucket_count[selected] * max(k_feasible, 1) + 2
        ctx.charge_irregular_warps(instr + 4, trans)

    targets, nbr_counts = _choose_partition(
        counts, feasible, state.part_weights
    )
    ctx.ledger.charge_atomics(selected.size)
    weights = state.vertex_weights(selected)
    return _MoveSet(selected, targets, nbr_counts, weights)


def _find_moves_warp(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    buffer: Sequence[int],
) -> _MoveSet:
    """Algorithm 4 lines 1-23 on the 32-lane warp model."""
    from repro.gpusim.kernel import launch_warps

    pseudo = state.pseudo_label
    k = state.k
    partition = state.partition
    w_pmax = state.w_pmax()
    part_weights = state.part_weights
    feasible = part_weights < w_pmax

    move_rows: List[tuple[int, int, int, int]] = []

    def body(warp: Warp, u: int) -> None:
        bucket_start, n_slots = graph.slot_range(u)
        num_bucket = n_slots // SLOTS_PER_BUCKET
        # Lines 5-11: early exit if an adjacent pseudo vertex has a
        # smaller ID (it moves this round instead of u).
        bucket_cnt = 0
        while bucket_cnt < num_bucket:
            base = bucket_start + bucket_cnt * SLOTS_PER_BUCKET
            nbr = warp.load(graph.bucket_list, base + warp.lane_id)
            filled = nbr != EMPTY
            nbr_par = np.where(filled, partition[nbr], UNASSIGNED_PAR)
            if warp.any_sync(
                FULL_MASK, (nbr_par == pseudo) & (nbr < u) & filled
            ):
                return
            bucket_cnt += 1
        # Lines 12-20: count neighbors per feasible partition.
        best_count = -1
        best_part = -1
        for p in range(k):
            if not feasible[p]:
                continue
            num_nbr_in_p = 0
            bucket_cnt = 0
            while bucket_cnt < num_bucket:
                base = bucket_start + bucket_cnt * SLOTS_PER_BUCKET
                nbr = warp.load(graph.bucket_list, base + warp.lane_id)
                filled = nbr != EMPTY
                nbr_par = np.where(filled, partition[nbr], UNASSIGNED_PAR)
                mask = warp.ballot_sync(FULL_MASK, (nbr_par == p) & filled)
                num_nbr_in_p += bin(mask).count("1")
                bucket_cnt += 1
            # Shared tie-break rule (see _choose_partition): most
            # neighbors, then lighter partition, then smaller index —
            # ascending p plus strict comparisons implements exactly
            # that lexicographic order.
            if num_nbr_in_p > best_count or (
                num_nbr_in_p == best_count
                and 0 <= best_part
                and part_weights[p] < part_weights[best_part]
            ):
                best_count = num_nbr_in_p
                best_part = p
        if best_part < 0:
            best_part = int(np.argmin(part_weights))
            best_count = _count_in_partition(graph, partition, u, best_part)
        move_rows.append(
            (u, best_part, best_count, state.vertex_weight(u))
        )

    launch_warps(ctx, list(buffer), body, name="find-moves")
    ctx.ledger.charge_atomics(len(move_rows))
    if not move_rows:
        empty = np.zeros(0, dtype=np.int64)
        return _MoveSet(empty, empty.copy(), empty.copy(), empty.copy())
    arr = np.array(move_rows, dtype=np.int64)
    return _MoveSet(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])


UNASSIGNED_PAR = np.int64(-1)


def _count_in_partition(
    graph: BucketListGraph, partition: np.ndarray, u: int, p: int
) -> int:
    values = graph.slots(u)
    filled = values != EMPTY
    return int(np.count_nonzero(partition[values[filled]] == p))


# ---------------------------------------------------------------------------
# Step 3: the Figure 5 segmented-scan commit.
# ---------------------------------------------------------------------------


def longest_feasible_prefix(
    ctx: GpuContext,
    targets: np.ndarray,
    weights: np.ndarray,
    part_weights: np.ndarray,
    w_pmax: int,
    k: int,
) -> int:
    """Length of the longest move prefix satisfying the balance bound.

    Builds the ``delta_p_wgt`` array (k contiguous segments, one per
    partition, each as long as the move sequence), runs a parallel
    segmented inclusive scan, and returns the first prefix length whose
    accumulated weights would push some partition past ``w_pmax``.
    Feasibility is monotone (weights are non-negative), so this is the
    count of leading feasible positions.
    """
    m = targets.shape[0]
    if m == 0:
        return 0
    # The ledger charge stays here — identical to what the in-place
    # segmented_inclusive_scan over the (k, m) ``delta_p_wgt`` layout
    # would cost — while the scan's *result* comes from the active
    # compute backend, so a backend swap can never move a counter.
    charge_segmented_scan(ctx, k * m)
    return get_backend().feasible_prefix(
        targets, weights, part_weights, w_pmax, k
    )


def _commit_moves(
    ctx: GpuContext,
    state: PartitionState,
    moves: _MoveSet,
    stats: RefineStats,
) -> np.ndarray:
    """Sort moves by #nbr, apply the longest feasible prefix.

    Returns the applied vertices (possibly empty) as an int64 array.
    """
    m = moves.vertices.shape[0]
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    _keys, order = sort_by_key(
        ctx, moves.nbr_counts, np.arange(m), descending=True
    )
    vertices = moves.vertices[order]
    targets = moves.targets[order]
    weights = moves.weights[order]

    w_pmax = state.w_pmax()
    prefix = longest_feasible_prefix(
        ctx, targets, weights, state.part_weights, w_pmax, state.k
    )
    if prefix == 0:
        # Progress guarantee: retarget the strongest move to the
        # partition with the most headroom and apply it regardless.
        u = int(vertices[0])
        target = int(np.argmin(state.part_weights))
        state.move(u, target)
        stats.moves_applied += 1
        stats.forced_moves += 1
        stats.deferred_moves += m - 1
        return vertices[:1].copy()

    applied = vertices[:prefix]
    state.apply_moves(applied, targets[:prefix])
    stats.moves_applied += prefix
    stats.deferred_moves += m - prefix
    return applied
