"""Incremental graph modification kernels (Section V.B, Algorithms 1-2).

The driver expands the user-facing undirected modifiers into *directed
slot operations* — e.g. ``EdgeInsert(u, v)`` becomes slot-inserts
``(u, v)`` and ``(v, u)``, exactly the paired modifiers of the paper's
Figure 4 caption — and hands the whole batch to one kernel launch, one
warp per operation.

Two execution paths produce bit-identical results:

* ``warp``  — Algorithm 1/2 verbatim on :class:`~repro.gpusim.warp.Warp`
  (``__ballot_sync`` to find the slot, ``__ffs`` to pick the first one),
* ``vector`` — NumPy slot scans charging the same operation counts.

Overflow handling: when every slot of ``u`` is occupied, Algorithm 1
falls off its while-loop.  We extend it with the documented relocation
path (DESIGN.md): the vertex's buckets are copied to the pool tail with
one extra bucket, then the insertion retries.  Applications avoid this
by raising ``gamma``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.core.backend import get_backend
from repro.gpusim.context import FULL_MASK, GpuContext
from repro.gpusim.warp import Warp, ffs
from repro.graph.bucketlist import (
    EMPTY,
    SLOTS_PER_BUCKET,
    STATUS_ACTIVE,
    STATUS_DELETED,
    BucketListGraph,
)
from repro.graph.modifiers import (
    EdgeDelete,
    EdgeInsert,
    Modifier,
    VertexDelete,
    VertexInsert,
)
from repro.utils.errors import ModifierError


# ---------------------------------------------------------------------------
# Directed slot operations (what the kernels actually execute).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SlotInsert:
    """Insert neighbor ``v`` (weight ``w``) into ``u``'s buckets."""

    u: int
    v: int
    w: int = 1


@dataclass(frozen=True)
class SlotDelete:
    """Remove neighbor ``v`` from ``u``'s buckets."""

    u: int
    v: int


@dataclass(frozen=True)
class VertexActivate:
    """Mark ``u`` active with weight ``w`` (Algorithm 2, ``M_u^+``)."""

    u: int
    w: int = 1


@dataclass(frozen=True)
class VertexDeactivate:
    """Mark ``u`` deleted and blank its buckets (Algorithm 2, ``M_u^-``)."""

    u: int


SlotOp = Union[SlotInsert, SlotDelete, VertexActivate, VertexDeactivate]


def expand_modifiers(
    graph: BucketListGraph, batch: Sequence[Modifier]
) -> List[SlotOp]:
    """Expand undirected modifiers into the directed slot-op sequence.

    ``VertexDelete`` expands into slot-deletes of every *reverse* edge
    (so no neighbor keeps a dangling reference) followed by the
    deactivation that blanks the vertex's own buckets.  ``VertexInsert``
    of an ID one past the current space allocates the new ID.  Expansion
    reads the *current* adjacency, so it must run right before the batch
    is applied.

    Expansion is also the validity gate: modifiers referencing inactive
    or unknown vertices, duplicate edge insertions, missing edge
    deletions and re-activations of live vertices are rejected *here*,
    before any kernel writes a slot — matching :class:`HostGraph`'s
    reference semantics.  Errors name the failing modifier's batch index
    so bisection and operator logs are actionable.
    """
    ops: List[SlotOp] = []
    # Track adjacency deltas within the batch so expansion of a later
    # VertexDelete sees edges inserted earlier in the same batch.
    pending_add: dict[int, set[int]] = {}
    pending_del: dict[int, set[int]] = {}
    # Vertex-status deltas: True after an in-batch insert, False after an
    # in-batch delete.  An edge modifier touching a vertex deleted
    # earlier in the same batch used to emit slot ops against the
    # blanked buckets, silently corrupting the bucket list.
    pending_status: dict[int, bool] = {}
    next_new_id = graph.num_vertices

    def check_live(w: int, modifier: Modifier, index: int) -> None:
        status = pending_status.get(w)
        if status is False:
            raise ModifierError(
                f"modifier {index}: {modifier!r} references vertex {w} "
                "deleted earlier in the same batch",
                modifier_index=index,
            )
        if status is None and not (
            0 <= w < graph.num_vertices and graph.is_active(w)
        ):
            raise ModifierError(
                f"modifier {index}: {modifier!r} references inactive or "
                f"unknown vertex {w}",
                modifier_index=index,
            )

    def edge_exists(u: int, v: int) -> bool:
        if v in pending_add.get(u, ()):
            return True
        if v in pending_del.get(u, ()):
            return False
        if pending_status.get(u) is True:
            # (Re)activated this batch: buckets are blanked on apply, so
            # only in-batch insertions (pending_add) count.
            return False
        return u < graph.num_vertices and graph.has_edge(u, v)

    def current_neighbors(u: int) -> list[int]:
        if pending_status.get(u) is True:
            base: list[int] = []
        else:
            base = [int(v) for v in graph.neighbors(u)]
        added = pending_add.get(u, set())
        removed = pending_del.get(u, set())
        # A neighbor deleted and re-inserted within the batch is in both
        # ``base`` and ``added``; list it once.
        return [
            v for v in base if v not in removed and v not in added
        ] + sorted(added)

    def note_add(u: int, v: int) -> None:
        pending_del.get(u, set()).discard(v)
        pending_add.setdefault(u, set()).add(v)

    def note_del(u: int, v: int) -> None:
        pending_add.get(u, set()).discard(v)
        pending_del.setdefault(u, set()).add(v)

    for index, modifier in enumerate(batch):
        if isinstance(modifier, EdgeInsert):
            if modifier.u == modifier.v:
                raise ModifierError(
                    f"modifier {index}: {modifier!r} is a self-loop",
                    modifier_index=index,
                )
            check_live(modifier.u, modifier, index)
            check_live(modifier.v, modifier, index)
            if edge_exists(modifier.u, modifier.v):
                raise ModifierError(
                    f"modifier {index}: edge ({modifier.u}, {modifier.v}) "
                    "already exists",
                    modifier_index=index,
                )
            ops.append(SlotInsert(modifier.u, modifier.v, modifier.weight))
            ops.append(SlotInsert(modifier.v, modifier.u, modifier.weight))
            note_add(modifier.u, modifier.v)
            note_add(modifier.v, modifier.u)
        elif isinstance(modifier, EdgeDelete):
            check_live(modifier.u, modifier, index)
            check_live(modifier.v, modifier, index)
            if not edge_exists(modifier.u, modifier.v):
                raise ModifierError(
                    f"modifier {index}: edge ({modifier.u}, {modifier.v}) "
                    "not found for deletion",
                    modifier_index=index,
                )
            ops.append(SlotDelete(modifier.u, modifier.v))
            ops.append(SlotDelete(modifier.v, modifier.u))
            note_del(modifier.u, modifier.v)
            note_del(modifier.v, modifier.u)
        elif isinstance(modifier, VertexDelete):
            check_live(modifier.u, modifier, index)
            for v in current_neighbors(modifier.u):
                ops.append(SlotDelete(v, modifier.u))
                note_del(v, modifier.u)
                note_del(modifier.u, v)
            ops.append(VertexDeactivate(modifier.u))
            pending_status[modifier.u] = False
        elif isinstance(modifier, VertexInsert):
            status = pending_status.get(modifier.u)
            if status is True or (
                status is None
                and modifier.u < graph.num_vertices
                and graph.is_active(modifier.u)
            ):
                raise ModifierError(
                    f"modifier {index}: vertex {modifier.u} is already "
                    "active",
                    modifier_index=index,
                )
            if modifier.u >= next_new_id and status is None:
                if modifier.u != next_new_id:
                    raise ModifierError(
                        f"modifier {index}: new vertex ID must be "
                        f"{next_new_id}, got {modifier.u}",
                        modifier_index=index,
                    )
                next_new_id += 1
            ops.append(VertexActivate(modifier.u, modifier.weight))
            pending_status[modifier.u] = True
        else:
            raise ModifierError(
                f"modifier {index}: unknown modifier {modifier!r}",
                modifier_index=index,
            )
    return ops


# ---------------------------------------------------------------------------
# Warp-faithful kernels (Algorithms 1 and 2).
# ---------------------------------------------------------------------------


def _edge_insert_warp(
    warp: Warp, graph: BucketListGraph, op: SlotInsert
) -> None:
    """Algorithm 1 verbatim (plus the relocation overflow path)."""
    while True:
        bucket_start, n_slots = graph.slot_range(op.u)
        num_bucket = n_slots // SLOTS_PER_BUCKET
        bucket_cnt = 0
        while bucket_cnt < num_bucket:
            base = bucket_start + bucket_cnt * SLOTS_PER_BUCKET
            nbr = warp.load(graph.bucket_list, base + warp.lane_id)
            if_empty = warp.ballot_sync(FULL_MASK, nbr == EMPTY)
            slot = ffs(if_empty) - 1
            if slot != -1:
                graph._undo_slots(base + slot)
                graph.bucket_list[base + slot] = op.v
                graph.slot_wgt[base + slot] = op.w
                warp.charge(instructions=1, transactions=1)
                return
            bucket_cnt += 1
        # All buckets full: relocate with one extra bucket and retry.
        moved_slots = graph.relocate_with_extra_buckets(op.u, extra=1)
        warp.charge(
            instructions=2 * (moved_slots // SLOTS_PER_BUCKET),
            transactions=2 * (moved_slots // SLOTS_PER_BUCKET),
        )


def _edge_delete_warp(
    warp: Warp, graph: BucketListGraph, op: SlotDelete
) -> None:
    """Edge deletion: same scan as Algorithm 1, matching ``v`` instead."""
    bucket_start, n_slots = graph.slot_range(op.u)
    num_bucket = n_slots // SLOTS_PER_BUCKET
    bucket_cnt = 0
    while bucket_cnt < num_bucket:
        base = bucket_start + bucket_cnt * SLOTS_PER_BUCKET
        nbr = warp.load(graph.bucket_list, base + warp.lane_id)
        found = warp.ballot_sync(FULL_MASK, nbr == op.v)
        slot = ffs(found) - 1
        if slot != -1:
            graph._undo_slots(base + slot)
            graph.bucket_list[base + slot] = EMPTY
            graph.slot_wgt[base + slot] = 0
            warp.charge(instructions=1, transactions=1)
            return
        bucket_cnt += 1
    raise ModifierError(f"edge ({op.u}, {op.v}) not found for deletion")


def _vertex_op_warp(
    warp: Warp,
    graph: BucketListGraph,
    op: "VertexActivate | VertexDeactivate",
) -> None:
    """Algorithm 2 verbatim: status update + cooperative blanking."""
    u = op.u
    if isinstance(op, VertexDeactivate):
        if graph.vertex_status[u] != STATUS_ACTIVE:
            raise ModifierError(f"vertex {u} is not active")
        graph._undo_status(u)
        graph.vertex_status[u] = STATUS_DELETED
        warp.charge(instructions=1, transactions=1)
        bucket_start, n_slots = graph.slot_range(u)
        num_bucket = n_slots // SLOTS_PER_BUCKET
    else:
        if graph.vertex_status[u] == STATUS_ACTIVE:
            raise ModifierError(f"vertex {u} is already active")
        graph._undo_status(u)
        graph.vertex_status[u] = STATUS_ACTIVE
        graph.vwgt[u] = op.w
        warp.charge(instructions=2, transactions=1)
        if graph.bucket_count[u] == 0:
            # Brand-new ID: "assign u a single bucket and add the bucket
            # to the end of the bucket-list" (Algorithm 2 lines 9-10).
            graph.assign_new_buckets(u, 1)
        bucket_start, n_slots = graph.slot_range(u)
        num_bucket = n_slots // SLOTS_PER_BUCKET
    # Lines 11-13: initialize every slot to EMPTY.
    graph._undo_slots(
        np.arange(bucket_start, bucket_start + n_slots, dtype=np.int64)
    )
    for bucket_cnt in range(num_bucket):
        base = bucket_start + bucket_cnt * SLOTS_PER_BUCKET
        warp.store(graph.bucket_list, base + warp.lane_id, EMPTY)
        graph.slot_wgt[base : base + SLOTS_PER_BUCKET] = 0


def apply_ops_warp(
    ctx: GpuContext, graph: BucketListGraph, ops: Sequence[SlotOp]
) -> None:
    """Apply a slot-op batch with one warp per op, one kernel launch.

    New-vertex IDs are reserved on the host before the launch (the GPU
    kernel cannot grow the ID space), mirroring how the CUDA driver
    would size its grid.
    """
    _reserve_new_ids(graph, ops)
    from repro.gpusim.kernel import launch_warps

    cursor = {"index": 0}

    def body(warp: Warp, op: SlotOp) -> None:
        index = cursor["index"]
        cursor["index"] += 1
        try:
            if isinstance(op, SlotInsert):
                _edge_insert_warp(warp, graph, op)
            elif isinstance(op, SlotDelete):
                _edge_delete_warp(warp, graph, op)
            else:
                _vertex_op_warp(warp, graph, op)
        except ModifierError as err:
            raise _annotate(err, index) from None

    # ordered=True: slot ops within a batch are dependent by design —
    # two inserts on one vertex claim consecutive empty slots, a delete
    # may target a slot an earlier op filled.  The execution model
    # serializes ops in batch order (the vector path reproduces that
    # layout bit-for-bit); a CUDA port must preserve the contract, e.g.
    # by claiming slots with atomicCAS.  The warp-access sanitizer
    # therefore exempts this launch from cross-warp conflict checks and
    # guards it with the access-trace digest instead.
    launch_warps(ctx, list(ops), body, name="apply-modifiers", ordered=True)


# ---------------------------------------------------------------------------
# Vectorized path (same results, bulk NumPy, same charged cost).
# ---------------------------------------------------------------------------


def apply_ops_vector(
    ctx: GpuContext, graph: BucketListGraph, ops: Sequence[SlotOp]
) -> None:
    """Apply a slot-op batch with NumPy scans, charging warp-equivalent
    costs.  Produces exactly the same slot layout as the warp path
    (first empty / first match in slot order).

    The batch is processed in *runs* of consecutive same-kind slot ops:
    ops within a run touch either distinct vertices or distinct slots of
    one vertex, so a whole run resolves in one gather/scatter while
    preserving the sequential slot layout bit-for-bit.  Runs that could
    interact through allocation order (bucket overflow) or repeated
    (u, v) pairs fall back to the per-op scan.
    """
    _reserve_new_ids(graph, ops)
    instructions = 0
    transactions = 0
    with ctx.ledger.kernel("apply-modifiers"):
        i = 0
        n = len(ops)
        while i < n:
            op = ops[i]
            if isinstance(op, (SlotInsert, SlotDelete)):
                kind = type(op)
                j = i
                while j < n and type(ops[j]) is kind:
                    j += 1
                if kind is SlotInsert:
                    cost = _insert_run_vector(graph, ops[i:j], base_index=i)
                else:
                    cost = _delete_run_vector(graph, ops[i:j], base_index=i)
            else:
                j = i + 1
                try:
                    cost = _vertex_op_vector(graph, op)
                except ModifierError as err:
                    raise _annotate(err, i) from None
            instructions += cost[0]
            transactions += cost[1]
            i = j
        n_ops = max(len(ops), 1)
        balanced = math.ceil(instructions / ctx.resident_warps)
        longest = math.ceil(instructions / n_ops)
        ctx.ledger.charge_instructions(max(balanced, longest))
        ctx.ledger.charge_transactions(transactions)


def _insert_run_vector(
    graph: BucketListGraph,
    run: Sequence[SlotInsert],
    base_index: int = 0,
) -> tuple[int, int]:
    """Apply a run of consecutive SlotInserts in one scatter.

    The t-th insert targeting vertex ``u`` (in run order) lands in the
    t-th currently-empty slot of ``u`` — exactly where the sequential
    first-empty scan would put it, because earlier inserts only consume
    earlier empties.  Any vertex without enough empty slots sends the
    whole run down the sequential path, which preserves the relocation
    (overflow) order of Algorithm 1.
    """
    if len(run) == 1:
        try:
            return _edge_insert_vector(graph, run[0])
        except ModifierError as err:
            raise _annotate(err, base_index) from None
    us = np.array([op.u for op in run], dtype=np.int64)
    uu, group = np.unique(us, return_inverse=True)
    slot_idx, owner = graph.slot_index_arrays(uu)
    is_empty = graph.bucket_list[slot_idx] == EMPTY
    chosen = get_backend().insert_slot_positions(
        group, uu.size, slot_idx, owner, is_empty
    )
    if chosen is None:
        # Overflow: some vertex needs more slots than it has empty.
        instructions = transactions = 0
        for offset, op in enumerate(run):
            try:
                cost = _edge_insert_vector(graph, op)
            except ModifierError as err:
                raise _annotate(err, base_index + offset) from None
            instructions += cost[0]
            transactions += cost[1]
        return instructions, transactions
    graph._undo_slots(chosen)
    graph.bucket_list[chosen] = np.array(
        [op.v for op in run], dtype=np.int64
    )
    graph.slot_wgt[chosen] = np.array(
        [op.w for op in run], dtype=np.int64
    )
    base = graph.bucket_start[uu[group]] * SLOTS_PER_BUCKET
    buckets_scanned = (chosen - base) // SLOTS_PER_BUCKET + 1
    instructions = int((4 * buckets_scanned + 1).sum())
    transactions = int((buckets_scanned + 1).sum())
    return instructions, transactions


def _delete_run_vector(
    graph: BucketListGraph,
    run: Sequence[SlotDelete],
    base_index: int = 0,
) -> tuple[int, int]:
    """Apply a run of consecutive SlotDeletes in one scatter.

    Deletes match by neighbor *value*, and a vertex's filled slots hold
    distinct neighbors, so deletes within a run never contend for a
    slot — unless the run repeats a (u, v) pair, which falls back to the
    per-op scan to reproduce the sequential not-found error.
    """
    if len(run) == 1:
        try:
            return _edge_delete_vector(graph, run[0])
        except ModifierError as err:
            raise _annotate(err, base_index) from None
    us = np.array([op.u for op in run], dtype=np.int64)
    vs = np.array([op.v for op in run], dtype=np.int64)
    pairs = np.stack([us, vs], axis=1)
    if np.unique(pairs, axis=0).shape[0] != us.size:
        instructions = transactions = 0
        for offset, op in enumerate(run):
            try:
                cost = _edge_delete_vector(graph, op)
            except ModifierError as err:
                raise _annotate(err, base_index + offset) from None
            instructions += cost[0]
            transactions += cost[1]
        return instructions, transactions
    # One slot segment *per op* (vertices repeated per delete), so each
    # op matches its value only against its own vertex's slots.
    slot_idx, owner = graph.slot_index_arrays(us)
    chosen, found = get_backend().delete_slot_positions(
        slot_idx, owner, graph.bucket_list[slot_idx], vs
    )
    if not found.all():
        return _delete_run_fallback(graph, run, found, base_index)
    graph._undo_slots(chosen)
    graph.bucket_list[chosen] = EMPTY
    graph.slot_wgt[chosen] = 0
    base = graph.bucket_start[us] * SLOTS_PER_BUCKET
    buckets_scanned = (chosen - base) // SLOTS_PER_BUCKET + 1
    instructions = int((4 * buckets_scanned + 1).sum())
    transactions = int((buckets_scanned + 1).sum())
    return instructions, transactions


def _delete_run_fallback(
    graph: BucketListGraph,
    run: Sequence[SlotDelete],
    found: np.ndarray,
    base_index: int = 0,
) -> tuple[int, int]:
    """Replay a delete run sequentially up to its first missing edge,
    then raise exactly like the per-op path would — naming the failing
    op's index in the slot-op sequence so callers can isolate it."""
    instructions = transactions = 0
    first_missing = int(np.flatnonzero(~found)[0])
    for op in run[:first_missing]:
        cost = _edge_delete_vector(graph, op)
        instructions += cost[0]
        transactions += cost[1]
    bad = run[first_missing]
    raise ModifierError(
        f"slot-op {base_index + first_missing}: edge ({bad.u}, {bad.v}) "
        "not found for deletion"
    )


def _edge_insert_vector(
    graph: BucketListGraph, op: SlotInsert
) -> tuple[int, int]:
    relocate_instr = 0
    relocate_trans = 0
    while True:
        start, n_slots = graph.slot_range(op.u)
        slots = graph.bucket_list[start : start + n_slots]
        empties = np.flatnonzero(slots == EMPTY)
        if empties.size:
            slot = int(empties[0])
            graph._undo_slots(start + slot)
            graph.bucket_list[start + slot] = op.v
            graph.slot_wgt[start + slot] = op.w
            buckets_scanned = slot // SLOTS_PER_BUCKET + 1
            return (
                4 * buckets_scanned + 1 + relocate_instr,
                buckets_scanned + 1 + relocate_trans,
            )
        moved = graph.relocate_with_extra_buckets(op.u, extra=1)
        relocate_instr += 2 * (moved // SLOTS_PER_BUCKET)
        relocate_trans += 2 * (moved // SLOTS_PER_BUCKET)


def _edge_delete_vector(
    graph: BucketListGraph, op: SlotDelete
) -> tuple[int, int]:
    start, n_slots = graph.slot_range(op.u)
    slots = graph.bucket_list[start : start + n_slots]
    hits = np.flatnonzero(slots == op.v)
    if hits.size == 0:
        raise ModifierError(f"edge ({op.u}, {op.v}) not found for deletion")
    slot = int(hits[0])
    graph._undo_slots(start + slot)
    graph.bucket_list[start + slot] = EMPTY
    graph.slot_wgt[start + slot] = 0
    buckets_scanned = slot // SLOTS_PER_BUCKET + 1
    return 4 * buckets_scanned + 1, buckets_scanned + 1


def _vertex_op_vector(
    graph: BucketListGraph, op: "VertexActivate | VertexDeactivate"
) -> tuple[int, int]:
    u = op.u
    if isinstance(op, VertexDeactivate):
        if graph.vertex_status[u] != STATUS_ACTIVE:
            raise ModifierError(f"vertex {u} is not active")
        graph._undo_status(u)
        graph.vertex_status[u] = STATUS_DELETED
    else:
        if graph.vertex_status[u] == STATUS_ACTIVE:
            raise ModifierError(f"vertex {u} is already active")
        graph._undo_status(u)
        graph.vertex_status[u] = STATUS_ACTIVE
        graph.vwgt[u] = op.w
        if graph.bucket_count[u] == 0:
            graph.assign_new_buckets(u, 1)
    start, n_slots = graph.slot_range(u)
    graph._undo_slots(np.arange(start, start + n_slots, dtype=np.int64))
    graph.bucket_list[start : start + n_slots] = EMPTY
    graph.slot_wgt[start : start + n_slots] = 0
    num_bucket = n_slots // SLOTS_PER_BUCKET
    return 2 + 2 * num_bucket, 1 + num_bucket


# ---------------------------------------------------------------------------
# Shared helpers.
# ---------------------------------------------------------------------------


def _annotate(err: ModifierError, index: int) -> ModifierError:
    """Prefix a kernel-level error with the failing slot-op's index."""
    return type(err)(f"slot-op {index}: {err}")


def _reserve_new_ids(
    graph: BucketListGraph, ops: Sequence[SlotOp]
) -> None:
    """Grow the vertex-ID space for activations of brand-new IDs."""
    for op in ops:
        if isinstance(op, VertexActivate) and op.u >= graph.num_vertices:
            if op.u != graph.num_vertices:
                raise ModifierError(
                    f"new vertex ID must be {graph.num_vertices}, "
                    f"got {op.u}"
                )
            graph.new_vertex_id()


def apply_ops(
    ctx: GpuContext,
    graph: BucketListGraph,
    ops: Sequence[SlotOp],
    mode: str = "vector",
) -> None:
    """Apply an already-expanded slot-op batch in the selected mode.

    Split out of :func:`apply_batch` so callers that need a look at the
    expanded ops *before* the kernels mutate the graph (the incremental
    cut accumulator reads deleted-arc weights from the pre-batch
    adjacency) can expand, inspect, then apply.
    """
    if mode == "warp":
        apply_ops_warp(ctx, graph, ops)
    elif mode == "vector":
        apply_ops_vector(ctx, graph, ops)
    else:
        raise ValueError(f"unknown mode {mode!r}")


def apply_batch(
    ctx: GpuContext,
    graph: BucketListGraph,
    batch: Sequence[Modifier],
    mode: str = "vector",
) -> List[SlotOp]:
    """Expand and apply a modifier batch; returns the slot-op list.

    The returned ops feed the balancing kernel (Algorithm 3), which
    needs to know which vertices each modifier touched.
    """
    ops = expand_modifiers(graph, batch)
    apply_ops(ctx, graph, ops, mode=mode)
    return ops
