"""Partition balancing (Section V.C.1, Algorithm 3).

After a modifier batch is applied, the kernel

1. parks newly inserted vertices in the **pseudo-partition** so they
   cannot break the balance constraint,
2. marks every endpoint of an inserted/deleted edge as *affected*,
3. filters affected vertices: only those with ``adj_ext > adj_int`` can
   reduce the cut by moving, so only they join the pseudo-partition
   (their partition update is deferred to a second kernel to avoid data
   races between warps),
4. ripples one hop: neighbors of pseudo vertices are marked affected and
   filtered the same way.

The scattered pseudo vertices are aggregated into the centralized
``vertex_in_pseudo`` buffer — the paper's load-balancing device — whose
*order* (insertion order: activations first, then filtered vertices in
vertex-ID order, then ripple adds) is preserved because the refinement
kernel's tie-breaking depends on it.
"""
# repro-lint: hot-path

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.gpusim.context import FULL_MASK, GpuContext
from repro.gpusim.warp import Warp
from repro.graph.bucketlist import (
    EMPTY,
    SLOTS_PER_BUCKET,
    BucketListGraph,
)
from repro.core.modification import (
    SlotOp,
    VertexActivate,
    VertexDeactivate,
)
from repro.obs import span
from repro.partition.metrics import external_internal_degrees
from repro.partition.state import UNASSIGNED, PartitionState


@dataclass
class BalanceStats:
    """Diagnostics of one balancing run."""

    affected_marked: int
    filtered_out: int
    inserted_to_pseudo: int
    moved_to_pseudo: int
    ripple_moved: int

    @property
    def pseudo_total(self) -> int:
        return (
            self.inserted_to_pseudo
            + self.moved_to_pseudo
            + self.ripple_moved
        )


def balance_partition(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    ops: Sequence[SlotOp],
    mode: str = "vector",
) -> tuple[List[int], BalanceStats]:
    """Run Algorithm 3; returns ``(vertex_in_pseudo, stats)``.

    ``state`` is mutated: inserted vertices and filtered affected
    vertices move to the pseudo label, deactivated vertices to
    UNASSIGNED.
    """
    pseudo_label = state.pseudo_label
    affected = np.zeros(graph.capacity, dtype=bool)
    buffer: List[int] = []

    # -- Phase A: one warp per modifier (Algorithm 3 lines 1-7) -------------
    with ctx.ledger.kernel("mark-modified"):
        # Vertex ops must replay in modifier order (a delete +
        # re-insert with a new weight in one batch); edge endpoints are
        # order-free and scatter into ``affected`` in one shot.
        endpoints: List[int] = []
        n_activations = 0
        # repro-lint: allow[hot-path-loop] modifier-order semantics require a sequential host loop
        for op in ops:
            if isinstance(op, VertexActivate):
                # The (re-)inserted vertex may carry a new weight; the
                # state learns it here, in modifier order, while the
                # vertex is still unassigned.
                state.set_vertex_weight(op.u, op.w)
                state.move(op.u, pseudo_label)
                buffer.append(op.u)
                n_activations += 1
            elif isinstance(op, VertexDeactivate):
                state.move(op.u, UNASSIGNED)
            else:
                endpoints.append(op.u)
                endpoints.append(op.v)
        if endpoints:
            affected[np.asarray(endpoints, dtype=np.int64)] = True
        ctx.ledger.charge_atomics(n_activations)
        ctx.charge_wavefront(max(len(ops), 1), 2, 1)

    # Deactivations during the batch may have invalidated earlier
    # activations; keep only vertices still in the pseudo partition.
    buffer = [
        u for u in dict.fromkeys(buffer)
        if state.partition[u] == pseudo_label
    ]
    affected_marked = int(affected.sum())

    # -- Phase B: filter affected vertices (lines 8-24) ----------------------
    # The paper dispatches one warp per entry of the |V|-sized
    # ``affected_vertex`` array; gathering the set ones is a stream
    # compaction over the whole array, which is the O(|V|) component of
    # iG-kway's per-iteration cost.
    with span("balance.filter-affected"):
        _charge_affected_scan(ctx, graph.num_vertices)
        candidates = np.flatnonzero(affected)
        candidates = candidates[
            (candidates < graph.num_vertices)
            & (graph.vertex_status[candidates] == 1)
            & (state.partition[candidates] != pseudo_label)
            & (state.partition[candidates] != UNASSIGNED)
        ]
        selected = _filter_ext_gt_int(ctx, graph, state, candidates, mode)
        filtered_out = candidates.size - selected.size

    # -- Phase C: deferred partition update (lines 25-26) --------------------
    with ctx.ledger.kernel("update-pseudo"):
        state.move_many(selected, pseudo_label)
        buffer.extend(selected.tolist())
        ctx.ledger.charge_atomics(selected.size)
        ctx.charge_wavefront(max((selected.size + 31) // 32, 1), 2, 1)
    moved_to_pseudo = int(selected.size)

    # -- Phase D: one-hop ripple over pseudo neighborhoods -------------------
    ripple_moved = 0
    if buffer:
        with span("balance.ripple"):
            pseudo_now = np.array(buffer, dtype=np.int64)
            slot_idx, _owner = graph.slot_index_arrays(pseudo_now)
            nbrs = graph.bucket_list[slot_idx]
            nbrs = np.unique(nbrs[nbrs != EMPTY])
            _charge_neighbor_mark(ctx, graph, pseudo_now)
            nbrs = nbrs[
                (graph.vertex_status[nbrs] == 1)
                & (state.partition[nbrs] != pseudo_label)
                & (state.partition[nbrs] != UNASSIGNED)
            ]
            ripple_selected = _filter_ext_gt_int(
                ctx, graph, state, nbrs, mode
            )
            with ctx.ledger.kernel("update-pseudo-ripple"):
                state.move_many(ripple_selected, pseudo_label)
                buffer.extend(ripple_selected.tolist())
                ctx.ledger.charge_atomics(ripple_selected.size)
                ctx.charge_wavefront(
                    max((ripple_selected.size + 31) // 32, 1), 2, 1
                )
            ripple_moved = int(ripple_selected.size)

    stats = BalanceStats(
        affected_marked=affected_marked,
        filtered_out=int(filtered_out),
        inserted_to_pseudo=len(buffer) - moved_to_pseudo - ripple_moved,
        moved_to_pseudo=moved_to_pseudo,
        ripple_moved=ripple_moved,
    )
    return buffer, stats


def _filter_ext_gt_int(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    candidates: np.ndarray,
    mode: str,
) -> np.ndarray:
    """Vertices among ``candidates`` with more external than internal
    neighbors (ascending vertex-ID order)."""
    candidates = np.sort(np.asarray(candidates, dtype=np.int64))
    if candidates.size == 0:
        return candidates
    if mode == "warp":
        return _filter_warp(ctx, graph, state, candidates)
    if mode == "vector":
        with ctx.ledger.kernel("filter-affected"):
            ext, internal = external_internal_degrees(
                graph, state.partition, candidates
            )
            instr = 3 * graph.bucket_count[candidates] + 4
            trans = graph.bucket_count[candidates] + 1
            ctx.charge_irregular_warps(instr, trans)
        return candidates[ext > internal]
    raise ValueError(f"unknown mode {mode!r}")


def _filter_warp(
    ctx: GpuContext,
    graph: BucketListGraph,
    state: PartitionState,
    candidates: np.ndarray,
) -> np.ndarray:
    """Warp-faithful version of Algorithm 3 lines 11-24."""
    from repro.gpusim.kernel import launch_warps

    keep: List[int] = []
    partition = state.partition

    def body(warp: Warp, u: int) -> None:
        bucket_start, n_slots = graph.slot_range(u)
        num_bucket = n_slots // SLOTS_PER_BUCKET
        cur_par = partition[u]
        adj_ext = 0
        adj_int = 0
        bucket_cnt = 0
        while bucket_cnt < num_bucket:
            base = bucket_start + bucket_cnt * SLOTS_PER_BUCKET
            nbr = warp.load(graph.bucket_list, base + warp.lane_id)
            filled = nbr != EMPTY
            nbr_par = np.where(filled, partition[nbr], UNASSIGNED)
            ext_mask = warp.ballot_sync(
                FULL_MASK, (nbr_par != cur_par) & filled
            )
            int_mask = warp.ballot_sync(
                FULL_MASK, (nbr_par == cur_par) & filled
            )
            adj_ext += bin(ext_mask).count("1")
            adj_int += bin(int_mask).count("1")
            bucket_cnt += 1
        if adj_ext > adj_int:
            keep.append(int(u))

    launch_warps(
        ctx, [int(u) for u in candidates], body, name="filter-affected"
    )
    ctx.ledger.charge_atomics(len(keep))
    return np.array(sorted(keep), dtype=np.int64)


def charge_boundary_bookkeeping(
    ctx: GpuContext, graph: BucketListGraph
) -> None:
    """Per-iteration boundary/bookkeeping sweep over the adjacency.

    The paper's own Table I implies iG-kway's per-iteration cost has a
    per-edge component roughly half the per-vertex one (vga_lcd, with
    half tv80's vertices but 4.4x its edges, takes 2.1x the iG time):
    after refinement the implementation refreshes boundary state —
    ``adj_ext`` counters and partition-weight bookkeeping — with a
    bucket-list sweep.  We charge one kernel reading each vertex's
    buckets plus scattered partition lookups, ~3 transactions per eight
    arcs.
    """
    import math

    arcs = 2 * graph.num_edges()
    n_warps = math.ceil(max(arcs, 1) / 32)
    with ctx.ledger.kernel("boundary-bookkeeping"):
        ctx.charge_wavefront(
            n_warps, instructions_per_warp=6, transactions_per_warp=12
        )


def _charge_affected_scan(ctx: GpuContext, num_vertices: int) -> None:
    """Dispatch over the |V|-sized ``affected_vertex`` array.

    Algorithm 3 assigns *each entry* of ``affected_vertex`` to a GPU
    warp; warps whose vertex is unaffected terminate after reading their
    flag.  This per-vertex warp dispatch is the O(|V|) component of
    iG-kway's incremental cost (it is why the paper's iG-kway
    partitioning time grows slowly with graph size in Table I).
    """
    with ctx.ledger.kernel("affected-dispatch"):
        ctx.charge_wavefront(
            max(num_vertices, 1),
            instructions_per_warp=3,
            transactions_per_warp=1,
        )


def _charge_neighbor_mark(
    ctx: GpuContext, graph: BucketListGraph, pseudo_vertices: np.ndarray
) -> None:
    """Cost of the warps that mark pseudo-vertex neighbors as affected."""
    with ctx.ledger.kernel("ripple-mark"):
        instr = 2 * graph.bucket_count[pseudo_vertices] + 2
        trans = graph.bucket_count[pseudo_vertices] + 1
        ctx.charge_irregular_warps(instr, trans)
