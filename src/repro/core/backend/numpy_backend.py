"""The NumPy reference backend — the bit-exactness oracle.

Every method here is a *pure array kernel*: no ledger charges, no graph
or state mutation beyond the explicitly in-place folds, no RNG.  Other
backends (numba, future cython/CUDA) must reproduce these results
bit-for-bit — same dtypes, same integer arithmetic, same tie-breaks —
which ``tools/perf_gate.py`` certifies by running the gate workload
under every available backend and requiring identical ledger counters,
final cut and partition sha256.

:class:`KernelBackend` doubles as the interface definition: subclass it
and override any subset of methods; un-overridden kernels fall back to
the NumPy reference, so a backend that accelerates only one kernel is
still complete.
"""

from __future__ import annotations

import numpy as np


class KernelBackend:
    """Interface + NumPy reference for the bulk compute kernels.

    Cost accounting is the caller's job: the simulated-GPU ledger is
    charged by the core kernels *around* these calls, so a backend swap
    can never move a deterministic counter.
    """

    #: Registry name; subclasses override.
    name = "numpy"

    # -- refinement ---------------------------------------------------------

    def choose_partition(
        self,
        counts: np.ndarray,
        feasible: np.ndarray,
        part_weights: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Most-suitable partition for every row of the ``(selected, k)``
        counts matrix, as one masked argmax.

        The tie-break rule is shared with the warp path (Algorithm 4
        line 20) and is exact integer lexicographic comparison — most
        neighbors, then lighter partition, then smaller index — never a
        floating-point score, so execution paths cannot diverge on ties.
        Rows with no feasible partition fall back to the globally
        lightest partition — a progress guarantee the paper leaves
        implicit.

        Returns aligned ``(targets, counts_at_target)`` arrays.
        """
        counts = np.atleast_2d(np.asarray(counts, dtype=np.int64))
        rows = counts.shape[0]
        if not np.any(feasible):
            target = int(np.argmin(part_weights))
            targets = np.full(rows, target, dtype=np.int64)
            return targets, counts[:, target].astype(np.int64)
        # Masked argmax, stage 1: the best neighbor count among feasible
        # partitions (counts are >= 0, so -1 marks infeasible columns).
        masked = np.where(feasible, counts, np.int64(-1))
        best_count = masked.max(axis=1)
        # Stage 2: among the tied-best columns, the minimum partition
        # weight; np.argmax then picks the first (smallest-index) column
        # attaining both.
        tied = masked == best_count[:, None]
        heavy = np.iinfo(np.int64).max
        tied_weights = np.where(tied, part_weights[None, :], heavy)
        best_weight = tied_weights.min(axis=1)
        targets = np.argmax(
            tied & (tied_weights == best_weight[:, None]), axis=1
        ).astype(np.int64)
        chosen_counts = np.take_along_axis(
            counts, targets[:, None], axis=1
        )[:, 0]
        return targets, chosen_counts.astype(np.int64)

    def feasible_prefix(
        self,
        targets: np.ndarray,
        weights: np.ndarray,
        part_weights: np.ndarray,
        w_pmax: int,
        k: int,
    ) -> int:
        """Length of the longest move prefix satisfying the balance bound
        (the Figure 5 ``delta_p_wgt`` scatter + segmented cumsum).

        One scatter builds all k segments: move j adds its weight at
        position (target_j, j) of the (k, m) layout; the segmented
        inclusive scan over equal-length contiguous segments is a row
        cumsum.  Feasibility is monotone (weights are non-negative), so
        the answer is the count of leading feasible positions.
        """
        m = targets.shape[0]
        delta = np.zeros((k, m), dtype=np.int64)
        delta[targets, np.arange(m)] = weights
        accumulated = np.cumsum(delta, axis=1)
        ok = np.all(
            part_weights[:, None] + accumulated <= w_pmax, axis=0
        )
        return int(np.count_nonzero(np.cumprod(ok)))

    # -- modification -------------------------------------------------------

    def insert_slot_positions(
        self,
        group: np.ndarray,
        n_groups: int,
        slot_idx: np.ndarray,
        owner: np.ndarray,
        is_empty: np.ndarray,
    ) -> np.ndarray | None:
        """Slot position for each insert of a same-kind run, or ``None``.

        ``group[j]`` is the (deduplicated) vertex index of insert ``j``;
        ``slot_idx``/``owner`` are the gather arrays over those vertices
        and ``is_empty`` marks the currently-free slots.  The t-th insert
        targeting a vertex (in run order) lands in the vertex's t-th
        empty slot — exactly where the sequential first-empty scan would
        put it, because earlier inserts only consume earlier empties.
        Returns ``None`` when some vertex lacks enough empty slots
        (bucket overflow); the caller then falls back to the sequential
        path, which preserves Algorithm 1's relocation order.
        """
        # Occurrence index of each insert within its vertex group
        # (stable), via a stable argsort of the group keys.
        order = np.argsort(group, kind="stable")
        occ = np.empty(group.size, dtype=np.int64)
        group_sorted = group[order]
        first_of_group = np.searchsorted(group_sorted, np.arange(n_groups))
        occ[order] = np.arange(group.size) - first_of_group[group_sorted]

        empty_positions = slot_idx[is_empty]
        empty_owner = owner[is_empty]
        per_owner = np.bincount(empty_owner, minlength=n_groups)
        need = np.bincount(group, minlength=n_groups)
        if np.any(per_owner < need):
            return None
        # ``empty_owner`` is non-decreasing (owner segments are
        # contiguous), so each group's empties start at a searchsorted
        # boundary.
        group_start = np.searchsorted(empty_owner, np.arange(n_groups))
        return empty_positions[group_start[group] + occ]

    def delete_slot_positions(
        self,
        slot_idx: np.ndarray,
        owner: np.ndarray,
        slot_values: np.ndarray,
        match_values: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """First matching slot per delete of a same-kind run.

        ``owner`` indexes *ops* (one slot segment per delete, vertices
        repeated per op), so each op matches ``match_values[op]`` only
        against its own vertex's slots.  Returns ``(chosen, found)``:
        ``found[i]`` is False when op ``i`` has no matching slot (the
        caller replays sequentially to reproduce the not-found error),
        and ``chosen`` holds the matched positions of the found ops in
        op order (meaningful only when ``found.all()``).
        """
        n_ops = match_values.size
        match = slot_values == match_values[owner]
        midx = np.flatnonzero(match)
        first_owners, first_pos = np.unique(owner[midx], return_index=True)
        found = np.zeros(n_ops, dtype=bool)
        found[first_owners] = True
        # found.all() implies first_owners == arange(n_ops): the first
        # matching slot of op i is midx[first_pos[i]].
        return slot_idx[midx[first_pos]], found

    # -- partition state ----------------------------------------------------

    def apply_move_deltas(
        self,
        src: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        k: int,
        pseudo_label: int,
    ) -> tuple[np.ndarray, int]:
        """Per-partition weight deltas of a bulk move batch.

        Returns ``(part_delta, pseudo_delta)`` where ``part_delta`` is a
        length-k int64 array to add onto the cached partition weights
        and ``pseudo_delta`` adjusts the pseudo-partition weight.
        Integer scatter-adds only, so accumulation order cannot change
        the result.
        """
        part_delta = np.zeros(k, dtype=np.int64)
        src_real = (src >= 0) & (src < k)
        if np.any(src_real):
            np.subtract.at(part_delta, src[src_real], weights[src_real])
        dst_real = (targets >= 0) & (targets < k)
        if np.any(dst_real):
            np.add.at(part_delta, targets[dst_real], weights[dst_real])
        pseudo_delta = int(
            weights[targets == pseudo_label].sum()
        ) - int(weights[src == pseudo_label].sum())
        return part_delta, pseudo_delta

    # -- incremental cut ----------------------------------------------------

    def fold_cut_deltas(
        self,
        flat_matrix: np.ndarray,
        sub_keys: np.ndarray,
        sub_weights: np.ndarray,
        add_keys: np.ndarray,
        add_weights: np.ndarray,
    ) -> None:
        """Fold arc deltas into the flat extended-label cut matrix,
        in place.

        Keys are flattened ``ext_row * ext_n + ext_col`` indices.  Plain
        int64 scatter-adds (never ``np.bincount(weights=...)``, which
        promotes to float64 and would break bit-exactness).
        """
        if sub_keys.size:
            np.subtract.at(flat_matrix, sub_keys, sub_weights)
        if add_keys.size:
            np.add.at(flat_matrix, add_keys, add_weights)


class NumpyBackend(KernelBackend):
    """The default backend: the reference implementations themselves."""

    name = "numpy"
