"""Optional numba backend: JIT-compiled hot kernels, NumPy semantics.

Import-gated: numba is an *optional* dependency.  This module imports
cleanly whether or not numba is installed; :func:`numba_import_error`
reports the failure (if any) and the registry in
:mod:`repro.core.backend` only lists ``numba`` as available when it is
None.  Nothing here may import numba at module scope unconditionally.

The overridden kernels are the per-row/per-arc loops that NumPy
expresses as multi-pass whole-array operations — a compiled single pass
wins on large rows.  Every override must match the NumPy reference
bit-for-bit (same int64 arithmetic, same tie-breaks); the perf gate's
backend-parity check runs the gate workload under this backend and
fails on any ledger/cut/sha divergence.  Kernels without a compiled win
are inherited from :class:`NumpyBackend` unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend.numpy_backend import NumpyBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    _NUMBA_ERROR: Exception | None = None
except Exception as err:  # ImportError, or a broken install
    numba = None  # type: ignore[assignment]
    _NUMBA_ERROR = err


def numba_import_error() -> Exception | None:
    """The numba import failure, or None when numba is usable."""
    return _NUMBA_ERROR


if numba is not None:  # pragma: no cover - requires numba

    @numba.njit(cache=True)
    def _choose_partition_rows(
        counts: np.ndarray,
        feasible: np.ndarray,
        part_weights: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows, k = counts.shape
        targets = np.empty(rows, dtype=np.int64)
        chosen = np.empty(rows, dtype=np.int64)
        for r in range(rows):
            best_count = np.int64(-1)
            best_part = np.int64(-1)
            for p in range(k):
                if not feasible[p]:
                    continue
                c = counts[r, p]
                # Exact lexicographic tie-break: most neighbors, then
                # lighter partition, then smaller index (strict
                # comparisons + ascending p).
                if c > best_count or (
                    c == best_count
                    and best_part >= 0
                    and part_weights[p] < part_weights[best_part]
                ):
                    best_count = c
                    best_part = p
            targets[r] = best_part
            chosen[r] = counts[r, best_part]
        return targets, chosen

    @numba.njit(cache=True)
    def _feasible_prefix_scan(
        targets: np.ndarray,
        weights: np.ndarray,
        part_weights: np.ndarray,
        w_pmax: np.int64,
        k: int,
    ) -> int:
        m = targets.shape[0]
        acc = part_weights.copy()
        for j in range(m):
            acc[targets[j]] += weights[j]
            for p in range(k):
                if acc[p] > w_pmax:
                    return j
        return m

    @numba.njit(cache=True)
    def _fold_deltas(
        flat_matrix: np.ndarray,
        sub_keys: np.ndarray,
        sub_weights: np.ndarray,
        add_keys: np.ndarray,
        add_weights: np.ndarray,
    ) -> None:
        for i in range(sub_keys.size):
            flat_matrix[sub_keys[i]] -= sub_weights[i]
        for i in range(add_keys.size):
            flat_matrix[add_keys[i]] += add_weights[i]


class NumbaBackend(NumpyBackend):
    """JIT overrides for the row-loop kernels; NumPy for the rest."""

    name = "numba"

    def __init__(self) -> None:
        if numba is None:
            raise RuntimeError(
                f"numba is not importable: {_NUMBA_ERROR}"
            )

    # pragma: no cover on the overrides - requires numba installed

    def choose_partition(
        self,
        counts: np.ndarray,
        feasible: np.ndarray,
        part_weights: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        counts = np.atleast_2d(np.asarray(counts, dtype=np.int64))
        feasible = np.asarray(feasible, dtype=np.bool_)
        if not np.any(feasible):
            # Same progress fallback as the reference: globally lightest.
            target = int(np.argmin(part_weights))
            rows = counts.shape[0]
            targets = np.full(rows, target, dtype=np.int64)
            return targets, counts[:, target].astype(np.int64)
        return _choose_partition_rows(
            counts, feasible, np.asarray(part_weights, dtype=np.int64)
        )

    def feasible_prefix(
        self,
        targets: np.ndarray,
        weights: np.ndarray,
        part_weights: np.ndarray,
        w_pmax: int,
        k: int,
    ) -> int:  # pragma: no cover
        return int(
            _feasible_prefix_scan(
                np.asarray(targets, dtype=np.int64),
                np.asarray(weights, dtype=np.int64),
                np.asarray(part_weights, dtype=np.int64),
                np.int64(w_pmax),
                k,
            )
        )

    def fold_cut_deltas(
        self,
        flat_matrix: np.ndarray,
        sub_keys: np.ndarray,
        sub_weights: np.ndarray,
        add_keys: np.ndarray,
        add_weights: np.ndarray,
    ) -> None:  # pragma: no cover
        _fold_deltas(
            flat_matrix, sub_keys, sub_weights, add_keys, add_weights
        )
