"""Pluggable compute backends for the bulk (vectorized) kernels.

The vectorized execution path expresses every hot kernel — the
choose-partition masked argmax, the longest-feasible-prefix
scatter/segment-cumsum, the bulk edge insert/delete slot resolution,
``PartitionState.apply_moves`` weight scatter, and the incremental
cut-delta folds — as *pure array functions*: arrays in, arrays out, no
ledger charges, no graph mutation.  This module puts those functions
behind a thin interface so a compiled implementation (numba today,
cython/CUDA tomorrow) can be certified by the exact same bit-identity
gates as the NumPy reference:

* ``tools/perf_gate.py`` runs the gate workload under every available
  backend and requires identical ledger counters, final cut and
  partition sha256, and
* the ``repro.obs`` trace-diff attributes any regression a backend
  introduces to the exact kernel that diverged.

Selection
---------
The active backend defaults to ``numpy`` and can be chosen with the
``REPRO_BACKEND`` environment variable, :func:`set_backend`, or the
``--backend`` flag on the bench/eval CLIs.  Backends whose imports are
missing (e.g. numba not installed) stay *registered* but unavailable:
they are listed by :func:`available_backends` only when importable, and
selecting one raises :class:`BackendUnavailable` with the import error.

Contract: every backend method must be **bit-identical** to the NumPy
reference implementation in :class:`NumpyBackend` — same dtypes, same
tie-breaks, same integer arithmetic.  Cost accounting is *not* a
backend concern: callers charge the simulated-GPU ledger themselves,
so switching backends can never move a deterministic counter.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

from repro.core.backend.numpy_backend import KernelBackend, NumpyBackend


class BackendUnavailable(RuntimeError):
    """Raised when selecting a registered backend whose deps are missing."""


def _make_numba() -> KernelBackend:
    from repro.core.backend.numba_backend import (  # noqa: PLC0415
        NumbaBackend,
        numba_import_error,
    )

    err = numba_import_error()
    if err is not None:
        raise BackendUnavailable(
            f"backend 'numba' is registered but not importable: {err}"
        )
    return NumbaBackend()


#: Registered backend factories.  A factory may raise
#: :class:`BackendUnavailable`; registration itself never imports the
#: backend's dependencies.
_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": NumpyBackend,
    "numba": _make_numba,
}

#: Instantiated backends (a backend is stateless; one instance each).
_INSTANCES: Dict[str, KernelBackend] = {}

_ENV_VAR = "REPRO_BACKEND"

_active: KernelBackend | None = None


def register_backend(
    name: str, factory: Callable[[], KernelBackend]
) -> None:
    """Register an out-of-tree backend factory under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory


def registered_backends() -> list[str]:
    """All registered backend names, available or not (sorted)."""
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """Registered backends whose dependencies import cleanly (sorted)."""
    out = []
    for name in sorted(_FACTORIES):
        try:
            _instantiate(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out


def _instantiate(name: str) -> KernelBackend:
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r} "
            f"(registered: {', '.join(registered_backends())})"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _FACTORIES[name]()
        _INSTANCES[name] = instance
    return instance


def get_backend(name: str | None = None) -> KernelBackend:
    """Return a backend by name, or the active one when ``name`` is None.

    The active backend resolves once, lazily: ``REPRO_BACKEND`` if set
    (unknown/unavailable values raise immediately so a typo cannot
    silently fall back to NumPy), else ``numpy``.
    """
    global _active
    if name is not None:
        return _instantiate(name)
    if _active is None:
        _active = _instantiate(os.environ.get(_ENV_VAR, "numpy"))
    return _active


def set_backend(name: str) -> KernelBackend:
    """Make ``name`` the process-wide active backend; returns it."""
    global _active
    _active = _instantiate(name)
    return _active


def active_backend_name() -> str:
    """Name of the backend :func:`get_backend` currently resolves to."""
    return get_backend().name


__all__ = [
    "BackendUnavailable",
    "KernelBackend",
    "NumpyBackend",
    "active_backend_name",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "set_backend",
]
