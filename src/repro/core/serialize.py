"""Checkpointing: save and restore a live incremental partitioner.

Long-running CAD sessions (the paper's motivating applications run
"thousands or even millions of incremental iterations") need to park and
resume partitioner state.  ``save_partitioner`` serializes everything a
running :class:`~repro.core.igkway.IGKway` holds — the bucket-list
arrays, the partition assignment, and the configuration — into a single
compressed ``.npz``; ``load_partitioner`` reconstitutes an equivalent
partitioner (with a fresh cost ledger) that continues exactly where the
saved one stopped.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.igkway import IGKway
from repro.gpusim.context import GpuContext
from repro.graph.bucketlist import BucketListGraph
from repro.partition.config import PartitionConfig
from repro.partition.state import PartitionState
from repro.utils.errors import PartitionError

#: Bumped whenever the on-disk layout changes.
FORMAT_VERSION = 1


def save_partitioner(partitioner: IGKway, path: "str | Path") -> None:
    """Serialize a partitioned :class:`IGKway` to ``path`` (.npz)."""
    graph = partitioner.graph
    state = partitioner.state
    if graph is None or state is None:
        raise PartitionError("cannot save before full_partition()")
    config_json = json.dumps(dataclasses.asdict(partitioner.config))
    np.savez_compressed(
        Path(path),
        format_version=np.int64(FORMAT_VERSION),
        config_json=np.frombuffer(
            config_json.encode(), dtype=np.uint8
        ),
        capacity=np.int64(graph.capacity),
        pool_buckets=np.int64(graph.pool_buckets),
        gamma=np.int64(graph.gamma),
        num_vertices=np.int64(graph.num_vertices),
        num_buckets_used=np.int64(graph.num_buckets_used),
        bucket_list=graph.bucket_list,
        slot_wgt=graph.slot_wgt,
        bucket_start=graph.bucket_start,
        bucket_count=graph.bucket_count,
        vertex_status=graph.vertex_status,
        vwgt=graph.vwgt,
        partition=state.partition,
        iterations_applied=np.int64(partitioner.iterations_applied),
    )


def load_partitioner(
    path: "str | Path", ctx: GpuContext | None = None
) -> IGKway:
    """Reconstruct an :class:`IGKway` saved by :func:`save_partitioner`.

    The returned partitioner has a fresh cost ledger (timing state is
    not part of the checkpoint) but identical graph and partition state,
    so subsequent ``apply`` calls produce the same results the original
    would have.
    """
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise PartitionError(
                f"checkpoint format {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        config = PartitionConfig(
            **json.loads(bytes(data["config_json"]).decode())
        )
        graph = BucketListGraph(
            capacity=int(data["capacity"]),
            pool_buckets=int(data["pool_buckets"]),
            gamma=int(data["gamma"]),
        )
        graph.num_vertices = int(data["num_vertices"])
        graph.num_buckets_used = int(data["num_buckets_used"])
        graph.bucket_list = data["bucket_list"].copy()
        graph.slot_wgt = data["slot_wgt"].copy()
        graph.bucket_start = data["bucket_start"].copy()
        graph.bucket_count = data["bucket_count"].copy()
        graph.vertex_status = data["vertex_status"].copy()
        graph.vwgt = data["vwgt"].copy()
        partition = data["partition"].copy()
        iterations = int(data["iterations_applied"])

    # Reconstruct a placeholder CSR of the original graph for the
    # partitioner's provenance field (the live graph is the bucket list).
    csr, _id_map = graph.to_csr()
    partitioner = IGKway(csr, config, ctx=ctx)
    partitioner.graph = graph
    partitioner.state = PartitionState(
        partition, graph.vwgt, config.k, config.epsilon
    )
    partitioner.iterations_applied = iterations
    return partitioner


def export_partition_csv(
    partitioner: IGKway, path: "str | Path"
) -> None:
    """Write ``vertex_id,partition`` rows for all active vertices.

    The interchange format downstream tools (schedulers, placers)
    typically consume.
    """
    graph = partitioner.graph
    state = partitioner.state
    if graph is None or state is None:
        raise PartitionError("cannot export before full_partition()")
    active = graph.active_vertices()
    lines = ["vertex,partition"]
    for u in active:
        lines.append(f"{int(u)},{int(state.partition[u])}")
    Path(path).write_text("\n".join(lines) + "\n")
