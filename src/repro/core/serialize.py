"""Checkpointing: save and restore a live incremental partitioner.

Long-running CAD sessions (the paper's motivating applications run
"thousands or even millions of incremental iterations") need to park and
resume partitioner state.  ``save_partitioner`` serializes everything a
running :class:`~repro.core.igkway.IGKway` holds — the bucket-list
arrays, the partition assignment, and the configuration — into a single
compressed ``.npz``; ``load_partitioner`` reconstitutes an equivalent
partitioner (with a fresh cost ledger) that continues exactly where the
saved one stopped.

Format version 2 adds an optional *stream metadata* JSON payload used by
:mod:`repro.stream` to persist its journal cursor (the sequence number
of the last applied modifier) and the adaptive-trigger state alongside
the partitioner, so ``StreamSession.recover`` can replay exactly the
un-checkpointed suffix of the modifier log.  Version-1 checkpoints are
still loadable (their stream metadata is empty).

Derived state is *not* serialized: the incremental cut accumulator
(:class:`~repro.partition.cutacc.CutAccumulator`) is reconstructible
from the graph + partition, so checkpoints omit it and a loaded
partitioner simply re-bootstraps it on the first cut read — keeping the
format stable and the digest independent of accumulator presence.
"""

from __future__ import annotations

import dataclasses
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.igkway import IGKway
from repro.gpusim.context import GpuContext
from repro.graph.bucketlist import BucketListGraph
from repro.partition.config import PartitionConfig
from repro.partition.state import PartitionState
from repro.utils.errors import PartitionError

#: Bumped whenever the on-disk layout changes.  Version 2 (this
#: release) added the ``stream_meta_json`` payload.
FORMAT_VERSION = 2

#: Versions ``load_partitioner`` can read.
SUPPORTED_VERSIONS = (1, 2)

#: Array keys every checkpoint must contain (both versions).
_REQUIRED_KEYS = (
    "format_version",
    "config_json",
    "capacity",
    "pool_buckets",
    "gamma",
    "num_vertices",
    "num_buckets_used",
    "bucket_list",
    "slot_wgt",
    "bucket_start",
    "bucket_count",
    "vertex_status",
    "vwgt",
    "partition",
    "iterations_applied",
)


def save_partitioner(
    partitioner: IGKway,
    path: "str | Path",
    stream_meta: dict | None = None,
) -> None:
    """Serialize a partitioned :class:`IGKway` to ``path`` (.npz).

    ``stream_meta`` is an optional JSON-serializable dict persisted
    verbatim; :mod:`repro.stream` stores its journal cursor there.
    """
    graph = partitioner.graph
    state = partitioner.state
    if graph is None or state is None:
        raise PartitionError("cannot save before full_partition()")
    config_json = json.dumps(dataclasses.asdict(partitioner.config))
    meta_json = json.dumps(stream_meta if stream_meta is not None else {})
    np.savez_compressed(
        Path(path),
        format_version=np.int64(FORMAT_VERSION),
        config_json=np.frombuffer(
            config_json.encode(), dtype=np.uint8
        ),
        stream_meta_json=np.frombuffer(
            meta_json.encode(), dtype=np.uint8
        ),
        capacity=np.int64(graph.capacity),
        pool_buckets=np.int64(graph.pool_buckets),
        gamma=np.int64(graph.gamma),
        num_vertices=np.int64(graph.num_vertices),
        num_buckets_used=np.int64(graph.num_buckets_used),
        bucket_list=graph.bucket_list,
        slot_wgt=graph.slot_wgt,
        bucket_start=graph.bucket_start,
        bucket_count=graph.bucket_count,
        vertex_status=graph.vertex_status,
        vwgt=graph.vwgt,
        partition=state.partition,
        iterations_applied=np.int64(partitioner.iterations_applied),
    )


def load_partitioner(
    path: "str | Path", ctx: GpuContext | None = None
) -> IGKway:
    """Reconstruct an :class:`IGKway` saved by :func:`save_partitioner`.

    The returned partitioner has a fresh cost ledger (timing state is
    not part of the checkpoint) but identical graph and partition state,
    so subsequent ``apply`` calls produce the same results the original
    would have.

    Raises :class:`~repro.utils.errors.PartitionError` — never a bare
    ``KeyError`` or ``zipfile`` error — on a missing file, a truncated
    or corrupt archive, or an unsupported format version.
    """
    partitioner, _meta = load_checkpoint(path, ctx=ctx)
    return partitioner


def load_checkpoint(
    path: "str | Path", ctx: GpuContext | None = None
) -> "tuple[IGKway, dict]":
    """Like :func:`load_partitioner`, also returning the stream metadata.

    Version-1 checkpoints (no ``stream_meta_json`` payload) yield an
    empty dict.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            files = set(data.files)
            missing = [k for k in _REQUIRED_KEYS if k not in files]
            if "format_version" not in files:
                raise PartitionError(
                    f"{path}: not an iG-kway checkpoint "
                    "(no format_version field)"
                )
            version = int(data["format_version"])
            if version not in SUPPORTED_VERSIONS:
                raise PartitionError(
                    f"checkpoint format {version} unsupported "
                    f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
                )
            if missing:
                raise PartitionError(
                    f"{path}: truncated checkpoint, missing fields: "
                    f"{', '.join(missing)}"
                )
            config = PartitionConfig(
                **json.loads(bytes(data["config_json"]).decode())
            )
            if version >= 2 and "stream_meta_json" in files:
                stream_meta = json.loads(
                    bytes(data["stream_meta_json"]).decode()
                )
            else:
                stream_meta = {}
            graph = BucketListGraph(
                capacity=int(data["capacity"]),
                pool_buckets=int(data["pool_buckets"]),
                gamma=int(data["gamma"]),
            )
            graph.num_vertices = int(data["num_vertices"])
            graph.num_buckets_used = int(data["num_buckets_used"])
            graph.bucket_list = data["bucket_list"].copy()
            graph.slot_wgt = data["slot_wgt"].copy()
            graph.bucket_start = data["bucket_start"].copy()
            graph.bucket_count = data["bucket_count"].copy()
            graph.vertex_status = data["vertex_status"].copy()
            graph.vwgt = data["vwgt"].copy()
            partition = data["partition"].copy()
            iterations = int(data["iterations_applied"])
    except PartitionError:
        raise
    except FileNotFoundError as exc:
        raise PartitionError(f"checkpoint not found: {path}") from exc
    except (
        KeyError,
        ValueError,
        OSError,
        EOFError,
        zipfile.BadZipFile,
        json.JSONDecodeError,
    ) as exc:
        raise PartitionError(
            f"{path}: truncated or corrupt checkpoint ({exc})"
        ) from exc

    # Reconstruct a placeholder CSR of the original graph for the
    # partitioner's provenance field (the live graph is the bucket list).
    csr, _id_map = graph.to_csr()
    partitioner = IGKway(csr, config, ctx=ctx)
    partitioner.graph = graph
    partitioner.state = PartitionState(
        partition, graph.vwgt, config.k, config.epsilon
    )
    partitioner.iterations_applied = iterations
    return partitioner, stream_meta


def export_partition_csv(
    partitioner: IGKway, path: "str | Path"
) -> None:
    """Write ``vertex_id,partition`` rows for all active vertices.

    The interchange format downstream tools (schedulers, placers)
    typically consume.
    """
    graph = partitioner.graph
    state = partitioner.state
    if graph is None or state is None:
        raise PartitionError("cannot export before full_partition()")
    active = graph.active_vertices()
    lines = ["vertex,partition"]
    for u in active:
        lines.append(f"{int(u)},{int(state.partition[u])}")
    Path(path).write_text("\n".join(lines) + "\n")
