"""The paper's contribution: iG-kway and its baseline G-kway†."""

from repro.core.adaptive import AdaptiveIGKway, AdaptiveReport
from repro.core.balancing import BalanceStats, balance_partition
from repro.core.baseline import BaselineIterationReport, GKwayDagger
from repro.core.cpu_baseline import CpuIncremental, CpuIterationReport
from repro.core.igkway import (
    FullPartitionReport,
    IGKway,
    IterationReport,
)
from repro.core.backend import (
    available_backends,
    get_backend,
    registered_backends,
    set_backend,
)
from repro.core.modification import (
    SlotDelete,
    SlotInsert,
    SlotOp,
    VertexActivate,
    VertexDeactivate,
    apply_batch,
    apply_ops,
    apply_ops_vector,
    apply_ops_warp,
    expand_modifiers,
)
from repro.core.refinement import (
    RefineStats,
    longest_feasible_prefix,
    refine_pseudo,
)
from repro.core.transaction import state_digest, transaction

__all__ = [
    "IGKway",
    "GKwayDagger",
    "AdaptiveIGKway",
    "AdaptiveReport",
    "CpuIncremental",
    "CpuIterationReport",
    "IterationReport",
    "BaselineIterationReport",
    "FullPartitionReport",
    "apply_batch",
    "apply_ops",
    "apply_ops_warp",
    "apply_ops_vector",
    "get_backend",
    "set_backend",
    "available_backends",
    "registered_backends",
    "expand_modifiers",
    "SlotInsert",
    "SlotDelete",
    "VertexActivate",
    "VertexDeactivate",
    "SlotOp",
    "balance_partition",
    "BalanceStats",
    "refine_pseudo",
    "RefineStats",
    "longest_feasible_prefix",
    "state_digest",
    "transaction",
]
