"""G-kway†: the paper's baseline (Section VI).

G-kway has no incremental support, so for each incremental iteration the
baseline must

1. apply the modifiers to the CPU-side graph,
2. rebuild the CSR on the CPU (charged as host operations proportional
   to ``|V| + 2|E|``),
3. re-upload the CSR over PCIe, and
4. re-partition the whole graph from scratch with G-kway (using the
   same constrained coarsening as iG-kway, per the paper's fair-
   comparison setup).

That per-iteration full cost is exactly what Figure 1 and Table I show
iG-kway avoiding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.igkway import FullPartitionReport
from repro.gpusim.context import GpuContext
from repro.gpusim.device import A6000, DeviceSpec
from repro.graph.csr import CSRGraph
from repro.graph.modifiers import HostGraph, Modifier
from repro.partition.config import PartitionConfig
from repro.partition.gkway import GKwayPartitioner
from repro.utils.errors import PartitionError


@dataclass
class BaselineIterationReport:
    """Per-iteration outcome of G-kway† (mirrors ``IterationReport``)."""

    modification_seconds: float
    partitioning_seconds: float
    cut: int
    balanced: bool


class GKwayDagger:
    """The CSR-rebuilding, re-partitioning baseline.

    Args:
        csr: Initial graph.
        config: Same configuration as the iG-kway run it is compared to.
        ctx: Optional shared GPU context.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: PartitionConfig,
        ctx: GpuContext | None = None,
        device: DeviceSpec = A6000,
    ):
        self.config = config
        self.ctx = ctx if ctx is not None else GpuContext(device)
        self.host = HostGraph.from_csr(csr)
        self._partition: np.ndarray | None = None
        self._id_map: np.ndarray | None = None
        self._cut: int | None = None
        self.iterations_applied = 0

    def full_partition(self) -> FullPartitionReport:
        """Initial FGP (identical to iG-kway's stage 1)."""
        ledger = self.ctx.ledger
        before = ledger.snapshot()
        with ledger.section("full_partitioning"):
            csr, id_map = self.host.to_csr()
            self.ctx.reallocate("csr", csr.nbytes())
            ledger.charge_h2d(csr.nbytes())
            result = GKwayPartitioner(self.config, ctx=self.ctx).partition(
                csr
            )
        self._partition = result.partition
        self._id_map = id_map
        self._cut = result.cut
        seconds = ledger.model.seconds(ledger.total.diff(before))
        return FullPartitionReport(
            seconds=seconds,
            cut=result.cut,
            balanced=result.balanced,
            num_levels=result.num_levels,
        )

    def apply(self, batch: Sequence[Modifier]) -> BaselineIterationReport:
        """One incremental iteration: modify, rebuild, re-partition."""
        if self._partition is None:
            raise PartitionError(
                "call full_partition() before applying modifiers"
            )
        ledger = self.ctx.ledger

        before_mod = ledger.snapshot()
        with ledger.section("modification"):
            for modifier in batch:
                self.host.apply(modifier)
            # CPU CSR rebuild + PCIe re-upload: the incrementality tax.
            ledger.charge_host_ops(self.host.rebuild_work())
            csr, id_map = self.host.to_csr()
            # The rebuilt CSR replaces the previous one on device.
            self.ctx.reallocate("csr", csr.nbytes())
            ledger.charge_h2d(csr.nbytes())
        mod_seconds = ledger.model.seconds(ledger.total.diff(before_mod))

        before_part = ledger.snapshot()
        with ledger.section("partitioning"):
            result = GKwayPartitioner(self.config, ctx=self.ctx).partition(
                csr, seed=self.config.seed + self.iterations_applied + 1
            )
        part_seconds = ledger.model.seconds(ledger.total.diff(before_part))

        self._partition = result.partition
        self._id_map = id_map
        self._cut = result.cut
        self.iterations_applied += 1
        return BaselineIterationReport(
            modification_seconds=mod_seconds,
            partitioning_seconds=part_seconds,
            cut=result.cut,
            balanced=result.balanced,
        )

    # -- queries -----------------------------------------------------------------

    @property
    def partition(self) -> np.ndarray:
        """Labels of the compacted active subgraph (see :meth:`id_map`)."""
        if self._partition is None:
            raise PartitionError("not partitioned yet")
        return self._partition

    @property
    def id_map(self) -> np.ndarray:
        """Original vertex ID of each compacted vertex."""
        if self._id_map is None:
            raise PartitionError("not partitioned yet")
        return self._id_map

    def cut_size(self) -> int:
        if self._cut is None:
            raise PartitionError("not partitioned yet")
        return self._cut
