"""Transactional execution around modifier batches.

The paper's modifier kernels (Algorithms 1-2) assume valid input; a bad
modifier raises mid-batch with the bucket list and partition partially
mutated.  This module makes a batch *atomic*: :func:`transaction` opens a
pre-image undo log on the graph (``BucketListGraph.begin_undo``) and
snapshots the partition state, so any :class:`~repro.utils.errors.ReproError`
inside the block rolls both back bit-identically to the pre-batch state
and re-raises.  Bit-identity is witnessed by :func:`state_digest`, a
sha256 over every live device array.

Cost accounting: recording pre-images is free on the simulated GPU (the
pre-image loads ride along with writes the kernels already pay for, like
a hardware transactional-memory write set), so the success path charges
*exactly* what a non-transactional run charges — the perf gate's
deterministic ledger counters do not move.  A rollback charges a
``"rollback"`` ledger section proportional to the slots restored.

The partition snapshot also carries the incremental cut accumulator
(via ``CutAccumulator.clone``/``restore_from``): a rolled-back batch
restores the maintained arc matrix bit-identically, but the
accumulator stays *derived* state — it is excluded from
:func:`state_digest`, so digest-verified rollbacks compare only
authoritative device arrays.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.bucketlist import SLOTS_PER_BUCKET, BucketListGraph
from repro.partition.state import PartitionState
from repro.utils.errors import ReproError, TransactionError


def state_digest(
    graph: BucketListGraph, state: PartitionState | None = None
) -> str:
    """sha256 hex digest of the *used* device state.

    Covers the graph's scalars and every array region a kernel can
    observe (pool up to the tail pointer, per-vertex metadata up to the
    vertex high-water mark) plus, when given, the partition state.
    Abandoned pool regions beyond the tail are excluded: slots there are
    unreachable through any bucket range, and rolling back a tail bump
    intentionally leaves the blanked region behind it untouched.
    """
    h = hashlib.sha256()
    n = graph.num_vertices
    used_slots = graph.num_buckets_used * SLOTS_PER_BUCKET
    h.update(np.int64(n).tobytes())
    h.update(np.int64(graph.num_buckets_used).tobytes())
    h.update(np.ascontiguousarray(graph.bucket_list[:used_slots]).tobytes())
    h.update(np.ascontiguousarray(graph.slot_wgt[:used_slots]).tobytes())
    h.update(np.ascontiguousarray(graph.bucket_start[:n]).tobytes())
    h.update(np.ascontiguousarray(graph.bucket_count[:n]).tobytes())
    h.update(np.ascontiguousarray(graph.vertex_status[:n]).tobytes())
    h.update(np.ascontiguousarray(graph.vwgt[:n]).tobytes())
    if state is not None:
        h.update(np.ascontiguousarray(state.partition).tobytes())
        h.update(np.ascontiguousarray(state._vwgt).tobytes())
        h.update(np.ascontiguousarray(state.part_weights).tobytes())
        h.update(np.int64(state.pseudo_weight).tobytes())
    return h.hexdigest()


@contextmanager
def transaction(
    graph: BucketListGraph,
    state: PartitionState | None = None,
    ctx: GpuContext | None = None,
    verify_digest: bool = False,
) -> Iterator[None]:
    """Run a modifier batch atomically against ``graph`` (and ``state``).

    On a clean exit the undo log is discarded.  If the block raises a
    :class:`ReproError`, the graph is rolled back from its undo log, the
    state is restored from its snapshot, and the original error is
    re-raised.  Non-``ReproError`` exceptions (genuine bugs) also roll
    back, so even an unexpected crash cannot leave corruption behind.

    Args:
        verify_digest: Recompute :func:`state_digest` before the batch
            and after a rollback and raise :class:`TransactionError` on
            mismatch.  Costs a full state hash per batch — meant for
            tests and the chaos harness, not the hot path.
    """
    pre_digest = state_digest(graph, state) if verify_digest else None
    log = graph.begin_undo()
    snapshot = state.copy() if state is not None else None
    try:
        yield
    except BaseException as err:
        from repro.obs import default_registry, span

        restored_slots = log.slot_writes
        with span("transaction.rollback"):
            graph.rollback_undo()
            if state is not None and snapshot is not None:
                state.restore(snapshot)
            if ctx is not None:
                # One coalesced scatter restoring the logged slots plus
                # the snapshot copy-back of the partition arrays.
                ledger = ctx.ledger
                with ledger.section("rollback"), ledger.kernel(
                    "txn_rollback"
                ):
                    warps = -(-max(restored_slots, 1) // SLOTS_PER_BUCKET)
                    ledger.charge_instructions(2 * warps)
                    ledger.charge_transactions(2 * warps)
                    if state is not None:
                        n = state.partition.size
                        ledger.charge_transactions(-(-n // 16))
        registry = default_registry()
        registry.counter(
            "transaction_rollbacks_total",
            "modifier batches rolled back transactionally",
        ).inc()
        registry.counter(
            "transaction_rollback_slots_total",
            "bucket-pool slots restored by rollbacks",
        ).inc(max(restored_slots, 0))
        if pre_digest is not None:
            post_digest = state_digest(graph, state)
            if post_digest != pre_digest:
                raise TransactionError(
                    f"rollback failed to restore pre-batch state: "
                    f"digest {post_digest[:12]} != {pre_digest[:12]} "
                    f"(original error: {err})"
                ) from err
        raise
    else:
        graph.commit_undo()


__all__ = ["state_digest", "transaction", "TransactionError", "ReproError"]
