"""CPU incremental partitioning baseline (prior-work class).

The paper's related work covers CPU incremental partitioners (Ou &
Ranka 1997; IOGP) and motivates iG-kway partly by the cost of "moving
and converting graph data between CPU and GPU during iterative IGP" in
GPU-resident applications.  This module implements that comparison
point — an extension experiment of this reproduction (clearly *not* a
paper table):

:class:`CpuIncremental` keeps the graph and partition on the host and,
per iteration,

1. applies the modifiers to the host graph (cheap),
2. **transfers state** — in the motivating pipeline (GPU RTL simulation,
   GPU timing) the graph lives on the device, so the CPU partitioner
   pays a D2H copy of the dirty state and an H2D copy of the updated
   partition every iteration,
3. refines the affected region with a sequential greedy pass
   (single-thread host ops, the prior-work algorithm class).

What the comparison shows (honestly): the CPU baseline crushes
re-partitioning from scratch, and at *small* affected sets it is
competitive with — at reproduction scale even faster than — the GPU
incremental path, whose per-iteration kernel dispatch has a fixed
cost.  The GPU case the paper argues for is (a) large graphs with
large affected regions, where the sequential host refinement and the
|V|-proportional transfers grow while iG-kway's data stays resident,
and (b) pipelines where the partition consumer itself runs on the GPU.
The three-way bench reports the trend rather than asserting a universal
winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Set

import numpy as np

from repro.core.igkway import FullPartitionReport
from repro.gpusim.context import GpuContext
from repro.gpusim.device import A6000, DeviceSpec
from repro.graph.csr import CSRGraph
from repro.graph.modifiers import (
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    Modifier,
    VertexDelete,
    VertexInsert,
)
from repro.partition.config import PartitionConfig
from repro.partition.gkway import GKwayPartitioner
from repro.partition.metrics import max_partition_weight
from repro.utils.errors import PartitionError


@dataclass
class CpuIterationReport:
    """Per-iteration outcome (mirrors the other systems' reports)."""

    modification_seconds: float
    partitioning_seconds: float
    cut: int
    balanced: bool
    affected: int
    moves: int


class CpuIncremental:
    """Sequential host-side incremental refinement baseline.

    Args:
        csr: Initial graph.
        config: Same configuration as the systems it is compared to.
        device_resident_app: When True (default), charge the per-
            iteration D2H/H2D state transfers of a GPU-resident
            application; False models a purely CPU pipeline.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: PartitionConfig,
        ctx: GpuContext | None = None,
        device: DeviceSpec = A6000,
        device_resident_app: bool = True,
    ):
        self.config = config
        self.ctx = ctx if ctx is not None else GpuContext(device)
        self.host = HostGraph.from_csr(csr)
        self.device_resident_app = device_resident_app
        self.partition: Dict[int, int] = {}
        self.part_weights = np.zeros(config.k, dtype=np.int64)
        self.iterations_applied = 0
        self._ready = False

    # -- lifecycle ---------------------------------------------------------------

    def full_partition(self) -> FullPartitionReport:
        """Initial FGP (run once, off the critical incremental path)."""
        ledger = self.ctx.ledger
        before = ledger.snapshot()
        with ledger.section("full_partitioning"):
            csr, id_map = self.host.to_csr()
            result = GKwayPartitioner(self.config, ctx=self.ctx).partition(
                csr
            )
        self.partition = {
            int(u): int(p) for u, p in zip(id_map, result.partition)
        }
        self.part_weights = result.part_weights.copy()
        self._ready = True
        return FullPartitionReport(
            seconds=ledger.model.seconds(ledger.total.diff(before)),
            cut=result.cut,
            balanced=result.balanced,
            num_levels=result.num_levels,
        )

    def apply(self, batch: Sequence[Modifier]) -> CpuIterationReport:
        if not self._ready:
            raise PartitionError(
                "call full_partition() before applying modifiers"
            )
        ledger = self.ctx.ledger

        before_mod = ledger.snapshot()
        with ledger.section("modification"):
            affected = self._apply_modifiers(batch)
            ledger.charge_host_ops(8 * max(len(batch), 1))
        mod_seconds = ledger.model.seconds(ledger.total.diff(before_mod))

        before_part = ledger.snapshot()
        with ledger.section("partitioning"):
            if self.device_resident_app:
                # D2H: dirty graph state; H2D: the refreshed partition.
                n = self.host.num_vertex_slots
                ledger.charge_d2h(8 * n)
                ledger.charge_h2d(8 * n)
            moves = self._refine(affected)
        part_seconds = ledger.model.seconds(
            ledger.total.diff(before_part)
        )

        self.iterations_applied += 1
        return CpuIterationReport(
            modification_seconds=mod_seconds,
            partitioning_seconds=part_seconds,
            cut=self.cut_size(),
            balanced=self.balanced(),
            affected=len(affected),
            moves=moves,
        )

    # -- internals ------------------------------------------------------------------

    def _apply_modifiers(self, batch: Sequence[Modifier]) -> Set[int]:
        """Apply modifiers; returns the affected vertex set."""
        affected: Set[int] = set()
        for modifier in batch:
            if isinstance(modifier, EdgeInsert):
                affected.add(modifier.u)
                affected.add(modifier.v)
            elif isinstance(modifier, EdgeDelete):
                affected.add(modifier.u)
                affected.add(modifier.v)
            elif isinstance(modifier, VertexDelete):
                weight = self.host.vwgt[modifier.u]
                label = self.partition.pop(modifier.u, None)
                if label is not None:
                    self.part_weights[label] -= weight
                affected.update(self.host.neighbors(modifier.u))
                affected.discard(modifier.u)
            elif isinstance(modifier, VertexInsert):
                affected.add(modifier.u)
            self.host.apply(modifier)
            if isinstance(modifier, VertexInsert):
                # New vertices start in the lightest partition.
                label = int(np.argmin(self.part_weights))
                self.partition[modifier.u] = label
                self.part_weights[label] += modifier.weight
        return {u for u in affected if self.host.is_active(u)}

    def _refine(self, affected: Set[int]) -> int:
        """Greedy sequential refinement over the affected region.

        The prior-work algorithm class: for each affected vertex (plus
        one ripple hop), move it to its best-connected feasible
        partition if that strictly reduces the cut.  Single-threaded:
        every connectivity probe is charged as host ops.
        """
        ledger = self.ctx.ledger
        k = self.config.k
        w_pmax = max_partition_weight(
            self.host.total_active_weight(), k, self.config.epsilon
        )
        frontier = set(affected)
        for u in list(affected):
            frontier.update(
                v for v in self.host.neighbors(u)
                if self.host.is_active(v)
            )
        moves = 0
        host_ops = 0
        for u in sorted(frontier):
            nbrs = self.host.neighbors(u)
            host_ops += 4 + len(nbrs) + k
            conn = np.zeros(k, dtype=np.int64)
            for v, w in nbrs.items():
                label = self.partition.get(v)
                if label is not None:
                    conn[label] += w
            current = self.partition[u]
            weight = self.host.vwgt[u]
            best, best_conn = current, conn[current]
            for p in range(k):
                if p == current:
                    continue
                if self.part_weights[p] + weight > w_pmax:
                    continue
                if conn[p] > best_conn or (
                    conn[p] == best_conn
                    and self.part_weights[p] < self.part_weights[best]
                ):
                    best = p
                    best_conn = conn[p]
            if best != current and conn[best] > conn[current]:
                self.part_weights[current] -= weight
                self.part_weights[best] += weight
                self.partition[u] = best
                moves += 1
        ledger.charge_host_ops(host_ops)
        return moves

    # -- queries --------------------------------------------------------------------

    def cut_size(self) -> int:
        total = 0
        for u in self.host.active_vertices():
            pu = self.partition[u]
            for v, w in self.host.neighbors(u).items():
                if u < v and self.partition.get(v) != pu:
                    total += w
        return total

    def balanced(self) -> bool:
        w_pmax = max_partition_weight(
            self.host.total_active_weight(),
            self.config.k,
            self.config.epsilon,
        )
        return int(self.part_weights.max()) <= w_pmax
