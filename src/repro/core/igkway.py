"""iG-kway: the incremental k-way GPU graph partitioner (public API).

Usage mirrors Figure 2 of the paper::

    from repro import IGKway, PartitionConfig
    from repro.graph import circuit_graph, ModifierBatch, EdgeInsert

    csr = circuit_graph(10_000, 1.3, seed=1)
    partitioner = IGKway(csr, PartitionConfig(k=4))
    partitioner.full_partition()              # G-kway + constrained coarsening
    report = partitioner.apply(ModifierBatch([EdgeInsert(3, 77)]))
    print(report.cut, report.partitioning_seconds)

``full_partition`` runs the multilevel partitioner once and uploads the
graph into the bucket-list structure; every subsequent ``apply`` performs
incremental graph modification (Algorithms 1-2), partition balancing
(Algorithm 3) and parallel refinement (Algorithm 4) entirely "on
device", charging the simulated-GPU cost ledger so runtime estimates can
be compared against the paper.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.balancing import (
    BalanceStats,
    balance_partition,
    charge_boundary_bookkeeping,
)
from repro.core.modification import apply_ops, expand_modifiers
from repro.core.refinement import RefineStats, refine_pseudo
from repro.core.transaction import transaction
from repro.gpusim.context import GpuContext
from repro.gpusim.device import A6000, DeviceSpec
from repro.graph.bucketlist import BucketListGraph
from repro.graph.csr import CSRGraph
from repro.graph.modifiers import Modifier
from repro.partition.config import PartitionConfig
from repro.partition.cutacc import CutAccumulator
from repro.partition.cutcheck import verify_cut
from repro.partition.gkway import GKwayPartitioner
from repro.partition.state import UNASSIGNED, PartitionState
from repro.utils.errors import PartitionError
from repro.obs import span


@dataclass
class IterationReport:
    """Outcome of one incremental iteration.

    Attributes:
        modification_seconds: Modeled GPU time of the modifier kernels.
        partitioning_seconds: Modeled GPU time of balancing+refinement.
        cut: Weighted cut size after the iteration.
        balanced: Whether the balance constraint holds.
        balance_stats / refine_stats: Kernel diagnostics.
        applied_modifiers: Modifiers in the batch this report covers
            (after any coalescing upstream of the partitioner).
        cut_maintenance_seconds: Modeled GPU time of the incremental
            cut-update kernel (proportional to arcs touched by the
            batch, never to pool size).
    """

    modification_seconds: float
    partitioning_seconds: float
    cut: int
    balanced: bool
    balance_stats: BalanceStats
    refine_stats: RefineStats
    applied_modifiers: int = 0
    cut_maintenance_seconds: float = 0.0


@dataclass
class FullPartitionReport:
    """Outcome of the initial full partitioning."""

    seconds: float
    cut: int
    balanced: bool
    num_levels: int


class IGKway:
    """Incremental k-way graph partitioner on the simulated GPU.

    Args:
        csr: The initial graph.
        config: Partitioning configuration (k, epsilon, gamma, mode, ...).
        ctx: Optional shared GPU context; a fresh one is created if
            omitted.
        device: Device spec for the fresh context.
        capacity_factor: Vertex-ID headroom for future insertions.
        verify_cut_scan: When True, cross-check the incremental cut
            accumulator against a ground-truth pool scan after every
            batch (sanitizer mode; pays the full scan cost the
            accumulator exists to avoid).  Defaults to the
            ``REPRO_VERIFY_CUT`` environment variable.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: PartitionConfig,
        ctx: GpuContext | None = None,
        device: DeviceSpec = A6000,
        capacity_factor: float = 1.5,
        verify_cut_scan: bool | None = None,
    ):
        self.initial_csr = csr
        self.config = config
        self.ctx = ctx if ctx is not None else GpuContext(device)
        self.capacity_factor = capacity_factor
        self.graph: BucketListGraph | None = None
        self.state: PartitionState | None = None
        self.iterations_applied = 0
        #: When True, every transactional rollback re-hashes the state
        #: and raises TransactionError on a digest mismatch (tests and
        #: the chaos harness; costs a full state hash per batch).
        self.verify_rollback_digest = False
        if verify_cut_scan is None:
            verify_cut_scan = os.environ.get(
                "REPRO_VERIFY_CUT", ""
            ) not in ("", "0")
        #: Sanitizer mode: assert incremental cut == pool scan per batch.
        self.verify_cut_scan = bool(verify_cut_scan)

    # -- stage 1: full partitioning -------------------------------------------

    def full_partition(self) -> FullPartitionReport:
        """Run G-kway with constrained coarsening; upload the bucket list."""
        ledger = self.ctx.ledger
        before = ledger.snapshot()
        with ledger.section("full_partitioning"), span("full-partition"):
            result = GKwayPartitioner(self.config, ctx=self.ctx).partition(
                self.initial_csr
            )
            self.graph = BucketListGraph.from_csr(
                self.initial_csr,
                gamma=self.config.gamma,
                capacity_factor=self.capacity_factor,
            )
            # Register the pre-allocated device structures (Section V.A:
            # "we pre-allocate a large block of memory").
            self.ctx.reallocate("bucket_list", self.graph.nbytes())
            self.ctx.reallocate(
                "partition", 8 * self.graph.capacity
            )
            ledger.charge_h2d(self.graph.nbytes())
            # Build the slot->owner index at upload time so the first
            # incremental iteration doesn't pay the one-time scatter.
            self.graph.slot_owner_array()
        seconds = ledger.model.seconds(ledger.total.diff(before))

        partition = np.full(self.graph.capacity, UNASSIGNED, dtype=np.int64)
        partition[: self.initial_csr.num_vertices] = result.partition
        # The state snapshots graph.vwgt; weights of vertices inserted
        # later reach it through the balancing kernel in modifier order.
        self.state = PartitionState(
            partition, self.graph.vwgt, self.config.k, self.config.epsilon
        )
        # Bootstrap the incremental cut accumulator at upload time, like
        # the slot->owner index above: the one-time pool scan happens
        # here, so the first incremental iteration's cut read is already
        # an O(k^2) lookup.
        self.state.cut_acc = CutAccumulator(self.graph, self.config.k)
        self.state.cut_acc.ensure(self.state.partition)
        return FullPartitionReport(
            seconds=seconds,
            cut=result.cut,
            balanced=result.balanced,
            num_levels=result.num_levels,
        )

    # -- stage 2: incremental partitioning --------------------------------------

    def apply(
        self, batch: Sequence[Modifier], transactional: bool = True
    ) -> IterationReport:
        """Apply one modifier batch and incrementally refine (Figure 2).

        By default the batch runs inside a transaction: if any modifier
        fails (``ModifierError``, ``CapacityError``, ...) the bucket-list
        graph and partition state are rolled back bit-identically to
        their pre-batch values before the error propagates, so a bad
        batch can never leave the partitioner corrupted.  Pass
        ``transactional=False`` to skip the undo machinery (callers that
        already validated the batch and manage their own recovery).
        """
        graph, state = self._require_partitioned()
        if not transactional:
            return self._apply_inner(batch)
        with transaction(
            graph,
            state,
            ctx=self.ctx,
            verify_digest=self.verify_rollback_digest,
        ):
            return self._apply_inner(batch)

    def _apply_inner(self, batch: Sequence[Modifier]) -> IterationReport:
        graph, state = self._require_partitioned()
        ledger = self.ctx.ledger

        with span("apply.batch"):
            before_mod = ledger.snapshot()
            with ledger.section("modification"), span("modifiers"):
                ops = expand_modifiers(graph, batch)
                # Pre-compute the batch's arc deltas against the
                # pre-batch adjacency (a deleted arc's weight is about
                # to be blanked), fold them only after the kernels
                # commit — a failed batch folds nothing.
                acc = state.cut_acc
                cut_deltas = (
                    acc.edge_deltas(state.partition, ops)
                    if acc is not None and acc.active
                    else None
                )
                apply_ops(self.ctx, graph, ops, mode=self.config.mode)
                if cut_deltas is not None:
                    acc.fold(*cut_deltas)
            mod_seconds = ledger.model.seconds(
                ledger.total.diff(before_mod)
            )

            before_part = ledger.snapshot()
            with ledger.section("partitioning"):
                with span("balance"):
                    buffer, balance_stats = balance_partition(
                        self.ctx, graph, state, ops, mode=self.config.mode
                    )
                with span("refine"):
                    refine_stats = refine_pseudo(
                        self.ctx,
                        graph,
                        state,
                        buffer,
                        mode=self.config.mode,
                        max_rounds=self.config.max_incremental_rounds,
                    )
                with span("bookkeeping"):
                    charge_boundary_bookkeeping(self.ctx, graph)
            part_seconds = ledger.model.seconds(
                ledger.total.diff(before_part)
            )

            before_cut = ledger.snapshot()
            with ledger.section("cut_maintenance"), span("cut-size"):
                cut = self.cut_size()
                self._charge_cut_maintenance()
            cut_seconds = ledger.model.seconds(
                ledger.total.diff(before_cut)
            )
            if self.verify_cut_scan:
                with span("verify-cut"):
                    verify_cut(graph, state)
        self.iterations_applied += 1
        return IterationReport(
            modification_seconds=mod_seconds,
            partitioning_seconds=part_seconds,
            cut=cut,
            balanced=state.balanced(),
            balance_stats=balance_stats,
            refine_stats=refine_stats,
            applied_modifiers=len(batch),
            cut_maintenance_seconds=cut_seconds,
        )

    def _charge_cut_maintenance(self) -> None:
        """Charge the modeled device cost of the batch's cut updates.

        One atomic scatter-add per touched arc direction, 32 arcs per
        warp — work proportional to what the batch moved or modified,
        never to the pool.  Drains the accumulator's touched-arc
        counter, so each arc is charged exactly once even when reads
        and batches interleave.
        """
        acc = self.state.cut_acc if self.state is not None else None
        arcs = acc.take_touched() if acc is not None else 0
        if arcs == 0:
            return
        ledger = self.ctx.ledger
        with ledger.kernel("cut-update"):
            self.ctx.charge_wavefront(
                math.ceil(arcs / 32),
                instructions_per_warp=4,
                transactions_per_warp=2,
            )
            ledger.charge_atomics(arcs)

    def settle_cut_maintenance(self) -> None:
        """Charge any not-yet-drained cut-update work (checkpoint barrier).

        Checkpoints omit the cut accumulator (it re-bootstraps on
        load), which silently drops its touched-arc charge liability.
        Draining it immediately before serialization makes the
        checkpoint a charge boundary: the cycles land on the live run's
        pre-checkpoint side, and a recovered replay — whose restored
        accumulator starts with zero touched arcs — re-derives exactly
        the post-checkpoint remainder.
        """
        self._charge_cut_maintenance()

    def run_trace(
        self, trace: Sequence[Sequence[Modifier]]
    ) -> list[IterationReport]:
        """Apply every batch of ``trace`` in order; returns all reports.

        Convenience wrapper for the common experiment loop::

            reports = ig.run_trace(generate_trace(csr, TraceConfig(...)))
        """
        return [self.apply(batch) for batch in trace]

    # -- queries --------------------------------------------------------------------

    @property
    def partition(self) -> np.ndarray:
        """Current per-vertex labels (UNASSIGNED for deleted vertices)."""
        _graph, state = self._require_partitioned()
        return state.partition

    def cut_size(self) -> int:
        """Exact weighted cut of the current (modified) graph.

        O(k^2) from the incrementally maintained cut matrix; the first
        call after ``full_partition`` (or a checkpoint recovery) pays a
        one-time bootstrap scan.
        """
        _graph, state = self._require_partitioned()
        return state.cut_acc.cut_size(state.partition)

    def cut_matrix(self) -> np.ndarray:
        """``k x k`` inter-partition cut-weight matrix (O(k^2) read)."""
        _graph, state = self._require_partitioned()
        return state.cut_acc.cut_matrix(state.partition)

    def validate(self) -> None:
        """Check graph and partition invariants (tests / debugging)."""
        graph, state = self._require_partitioned()
        graph.validate()
        active = np.zeros(graph.capacity, dtype=bool)
        active[graph.active_vertices()] = True
        state.validate(active_mask=active)

    def _require_partitioned(
        self,
    ) -> tuple[BucketListGraph, PartitionState]:
        if self.graph is None or self.state is None:
            raise PartitionError(
                "call full_partition() before applying modifiers"
            )
        acc = self.state.cut_acc
        if acc is None or acc.graph is not self.graph:
            # Attach (or re-attach after recovery) the incremental cut
            # accumulator; construction is free, the matrix bootstraps
            # lazily on the first cut read.
            self.state.cut_acc = CutAccumulator(
                self.graph, self.config.k
            )
        return self.graph, self.state
