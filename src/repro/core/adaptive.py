"""Adaptive hybrid partitioner: incremental with an FGP fallback.

Section VI.C of the paper closes with a deployment recommendation:

    "When the number of graph modifiers exceeds 5K per iteration,
    iG-kway struggles to find a partition with a decent cut size. ...
    In such cases, applications can resort to FGP using G-kway†,
    especially when the number of graph modifiers reaches 50% of the
    graph's size."

:class:`AdaptiveIGKway` implements that policy as a first-class feature:
it runs iG-kway's incremental path by default and transparently falls
back to a full re-partition when either trigger fires:

* **volume trigger** — the modifiers accumulated since the last full
  partitioning exceed ``volume_threshold`` (default 0.5) times the
  current vertex count, or a single batch exceeds
  ``batch_threshold`` times the vertex count;
* **quality trigger** — the incremental cut has drifted more than
  ``drift_threshold`` (default 2x) above the cut measured right after
  the last full partitioning.

A full re-partition resets both triggers.  The class exposes the same
``apply`` interface as :class:`~repro.core.igkway.IGKway`, with the
report noting whether the iteration was incremental or a fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.igkway import FullPartitionReport, IGKway, IterationReport
from repro.gpusim.context import GpuContext
from repro.graph.bucketlist import BucketListGraph
from repro.graph.csr import CSRGraph
from repro.graph.modifiers import Modifier
from repro.partition.config import PartitionConfig
from repro.partition.gkway import GKwayPartitioner
from repro.partition.state import UNASSIGNED, PartitionState


@dataclass
class AdaptiveReport:
    """Per-iteration outcome, annotating the path taken."""

    iteration: IterationReport
    used_fallback: bool
    fallback_reason: str | None
    modifiers_since_full: int


class AdaptiveIGKway:
    """iG-kway with the paper's recommended FGP fallback policy.

    Args:
        csr: Initial graph.
        config: Partitioning configuration.
        volume_threshold: Cumulative modifiers (since the last full
            partition) that trigger a fallback, as a fraction of |V|
            (paper: 0.5).
        batch_threshold: Single-batch size that triggers an immediate
            fallback, as a fraction of |V|.
        drift_threshold: Cut-size growth factor over the post-FGP cut
            that triggers a fallback.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: PartitionConfig,
        ctx: GpuContext | None = None,
        volume_threshold: float = 0.5,
        batch_threshold: float = 0.1,
        drift_threshold: float = 2.0,
        capacity_factor: float = 1.5,
    ):
        if volume_threshold <= 0 or batch_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if drift_threshold <= 1.0:
            raise ValueError("drift_threshold must exceed 1.0")
        self.inner = IGKway(
            csr, config, ctx=ctx, capacity_factor=capacity_factor
        )
        self.volume_threshold = volume_threshold
        self.batch_threshold = batch_threshold
        self.drift_threshold = drift_threshold
        self.modifiers_since_full = 0
        self.reference_cut: int | None = None
        self.fallbacks_taken = 0

    @classmethod
    def from_inner(
        cls,
        inner: IGKway,
        volume_threshold: float = 0.5,
        batch_threshold: float = 0.1,
        drift_threshold: float = 2.0,
    ) -> "AdaptiveIGKway":
        """Wrap an existing (possibly restored) :class:`IGKway`.

        Used by checkpoint recovery (:mod:`repro.stream.journal`): the
        inner partitioner already carries live graph and partition
        state, so no fresh :class:`IGKway` must be constructed.  Trigger
        counters start reset; callers restore them from checkpoint
        metadata.
        """
        adaptive = cls.__new__(cls)
        if volume_threshold <= 0 or batch_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if drift_threshold <= 1.0:
            raise ValueError("drift_threshold must exceed 1.0")
        adaptive.inner = inner
        adaptive.volume_threshold = volume_threshold
        adaptive.batch_threshold = batch_threshold
        adaptive.drift_threshold = drift_threshold
        adaptive.modifiers_since_full = 0
        adaptive.reference_cut = None
        adaptive.fallbacks_taken = 0
        return adaptive

    # -- delegation ------------------------------------------------------------

    @property
    def ctx(self) -> GpuContext:
        return self.inner.ctx

    @property
    def config(self) -> PartitionConfig:
        return self.inner.config

    @property
    def partition(self) -> np.ndarray:
        return self.inner.partition

    @property
    def graph(self) -> BucketListGraph | None:
        return self.inner.graph

    def cut_size(self) -> int:
        return self.inner.cut_size()

    def validate(self) -> None:
        self.inner.validate()

    # -- lifecycle -------------------------------------------------------------

    def full_partition(self):
        report = self.inner.full_partition()
        self.reference_cut = report.cut
        self.modifiers_since_full = 0
        return report

    def apply(self, batch: Sequence[Modifier]) -> AdaptiveReport:
        """Apply one batch; fall back to FGP when a trigger fires.

        Volume triggers are evaluated *before* the incremental run (the
        decision the paper recommends applications make up front); the
        quality trigger is evaluated after, scheduling a fallback that
        repairs the partition within the same iteration.
        """
        graph, _state = self.inner._require_partitioned()
        n = max(graph.num_active_vertices(), 1)
        pending = self.modifiers_since_full + len(batch)
        reason = None
        if len(batch) >= self.batch_threshold * n:
            reason = (
                f"batch of {len(batch)} modifiers >= "
                f"{self.batch_threshold:.0%} of |V|={n}"
            )
        elif pending >= self.volume_threshold * n:
            reason = (
                f"{pending} modifiers since last FGP >= "
                f"{self.volume_threshold:.0%} of |V|={n}"
            )

        iteration = self.inner.apply(batch)
        self.modifiers_since_full += len(batch)

        if reason is None and self.reference_cut is not None:
            floor = max(self.reference_cut, 1)
            if iteration.cut > self.drift_threshold * floor:
                reason = (
                    f"cut {iteration.cut} drifted past "
                    f"{self.drift_threshold:.1f}x the post-FGP cut "
                    f"{self.reference_cut}"
                )

        used_fallback = reason is not None
        if used_fallback:
            iteration = self._fallback(iteration)
        return AdaptiveReport(
            iteration=iteration,
            used_fallback=used_fallback,
            fallback_reason=reason,
            modifiers_since_full=self.modifiers_since_full,
        )

    def full_rebuild(self) -> FullPartitionReport:
        """Escalation path: rebuild the device structures from scratch.

        Unlike :meth:`_fallback` (which re-partitions but keeps the live
        bucket list), this materializes the current graph on the host
        and constructs a *fresh* bucket-list graph — new pool, new
        spare-bucket headroom, vertex IDs preserved — then runs FGP on
        it.  This is the stream layer's last resort when incremental
        application keeps failing: it repairs failure causes a
        re-partition cannot, above all an exhausted bucket pool.
        """
        inner = self.inner
        graph, _state = inner._require_partitioned()
        ledger = inner.ctx.ledger
        before = ledger.snapshot()
        with ledger.section("partitioning"):
            host = graph.to_host_graph()
            ledger.charge_d2h(graph.nbytes())
            new_graph = BucketListGraph.from_host_graph(
                host,
                gamma=inner.config.gamma,
                capacity_factor=inner.capacity_factor,
            )
            inner.ctx.reallocate("bucket_list", new_graph.nbytes())
            inner.ctx.reallocate("partition", 8 * new_graph.capacity)
            ledger.charge_h2d(new_graph.nbytes())
            new_graph.slot_owner_array()
            csr, id_map = new_graph.to_csr()
            result = GKwayPartitioner(
                inner.config, ctx=inner.ctx
            ).partition(
                csr,
                seed=inner.config.seed + inner.iterations_applied,
            )
        seconds = ledger.model.seconds(ledger.total.diff(before))

        fresh = np.full(new_graph.capacity, UNASSIGNED, dtype=np.int64)
        fresh[id_map] = result.partition
        inner.graph = new_graph
        inner.state = PartitionState(
            fresh, new_graph.vwgt, inner.config.k, inner.config.epsilon
        )
        self.reference_cut = result.cut
        self.modifiers_since_full = 0
        self.fallbacks_taken += 1
        return FullPartitionReport(
            seconds=seconds,
            cut=result.cut,
            balanced=result.balanced,
            num_levels=result.num_levels,
        )

    def _fallback(self, incremental: IterationReport) -> IterationReport:
        """Re-partition the current graph from scratch on device.

        The modified graph is compacted to CSR (host-side), repartitioned
        with G-kway, and the labels are projected back onto the live
        bucket-list IDs.  Costs are charged to the ``partitioning``
        section like any other partitioning work.
        """
        inner = self.inner
        graph, state = inner._require_partitioned()
        ledger = inner.ctx.ledger
        before = ledger.snapshot()
        with ledger.section("partitioning"):
            csr, id_map = graph.to_csr()
            ledger.charge_h2d(csr.nbytes())
            result = GKwayPartitioner(
                inner.config, ctx=inner.ctx
            ).partition(
                csr,
                seed=inner.config.seed + inner.iterations_applied,
            )
        fgp_seconds = ledger.model.seconds(ledger.total.diff(before))

        fresh = np.full(graph.capacity, UNASSIGNED, dtype=np.int64)
        fresh[id_map] = result.partition
        inner.state = PartitionState(
            fresh, graph.vwgt, inner.config.k, inner.config.epsilon
        )
        self.reference_cut = result.cut
        self.modifiers_since_full = 0
        self.fallbacks_taken += 1
        return IterationReport(
            modification_seconds=incremental.modification_seconds,
            partitioning_seconds=(
                incremental.partitioning_seconds + fgp_seconds
            ),
            cut=result.cut,
            balanced=result.balanced,
            balance_stats=incremental.balance_stats,
            refine_stats=incremental.refine_stats,
            applied_modifiers=incremental.applied_modifiers,
        )
