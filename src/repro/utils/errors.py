"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The subclasses mirror the main failure domains: graph
consistency, bucket-list capacity, modifier application, and partitioning.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphConsistencyError(ReproError):
    """An invariant of a graph data structure was violated.

    Raised by the validation routines in :mod:`repro.graph` when, for
    example, an adjacency is not symmetric or an edge references a deleted
    vertex.
    """


class CapacityError(ReproError):
    """A pre-allocated capacity (vertex IDs or bucket pool) was exhausted.

    The bucket-list structure pre-allocates memory exactly like the CUDA
    implementation does; running out mirrors a device-side allocation
    failure and is reported eagerly instead of silently reallocating.
    """


class BucketListFullError(CapacityError):
    """A vertex's buckets are full and the bucket pool cannot grow.

    Matches the failure mode of Algorithm 1 in the paper when the warp
    scans every bucket of ``u`` without finding an empty slot and no spare
    bucket can be appended.
    """


class ModifierError(ReproError):
    """A graph modifier could not be applied (e.g. deleting a missing edge).

    ``modifier_index``, when not None, is the failing modifier's
    position in the (coalesced) batch — the structured counterpart of
    the index named in the message, which lets the stream layer isolate
    a poison modifier without bisecting.
    """

    def __init__(
        self, message: str, modifier_index: "int | None" = None
    ) -> None:
        super().__init__(message)
        self.modifier_index = modifier_index


class PartitionError(ReproError):
    """A partitioning operation failed or produced an invalid state."""


class TransactionError(ReproError):
    """A transactional rollback failed to restore the pre-batch state.

    Raised only when digest verification is enabled and the post-rollback
    sha256 state digest differs from the pre-batch one — i.e. the undo
    log missed a write site.  This is a bug in the library, never in the
    caller's input.
    """


class StreamError(ReproError):
    """A streaming-service operation failed (:mod:`repro.stream`)."""


class BackpressureError(StreamError):
    """The bounded ingest queue is full and the session's policy is
    ``"reject"``.

    Producers are expected to retry after the scheduler has flushed;
    under the ``"block"`` policy the session flushes on their behalf and
    this error is never raised.
    """


class JournalError(StreamError):
    """The recovery journal is missing, corrupt, or inconsistent with
    its checkpoint (e.g. a flush record references unlogged modifiers).
    """


class ServeError(ReproError):
    """The partition server rejected a request (:mod:`repro.serve`).

    ``code`` is the wire protocol's typed error code (one of
    :data:`repro.serve.protocol.ERROR_CODES`) and ``retryable`` mirrors
    the response's retry hint: quota and load-shed rejections clear on
    their own, so clients should back off and resubmit; the rest are
    caller bugs.
    """

    def __init__(
        self, message: str, code: str = "internal",
        retryable: bool = False,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable


class ServeTimeout(ServeError):
    """A client-side per-request deadline elapsed before the response.

    Never sent by the server: the :class:`~repro.serve.client.
    ServeClient` raises it when a request's socket deadline passes.  The
    request's fate is *ambiguous* — the server may or may not have
    executed it — so retry loops must re-synchronize (``attach`` reports
    the session's ``next_seq``) before resubmitting.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, code="timeout", retryable=True)


class WorkerFault(ServeError):
    """A device worker died while (or before) executing a request.

    Fail-stop model: the worker's in-memory session state is treated as
    lost; the supervisor restores its sessions on surviving workers from
    their journals.  The rejected request is retryable — after failover
    the same session answers from a surviving worker.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, code="worker-failed", retryable=True)
