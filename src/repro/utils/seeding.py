"""Deterministic seeding helpers.

Every stochastic component of the library (graph generators, modifier
traces, initial partitioning, tie-breaking) receives an explicit seed.
These helpers derive independent child seeds from a parent seed and a
string tag so that, for example, iteration 17 of a modifier trace is
reproducible regardless of how many random draws earlier iterations made.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, *tags: object) -> int:
    """Derive a stable 64-bit child seed from ``parent`` and ``tags``.

    The derivation hashes the parent seed together with the string
    representation of each tag, so distinct tags give statistically
    independent streams while remaining fully deterministic.

    >>> derive_seed(42, "trace", 3) == derive_seed(42, "trace", 3)
    True
    >>> derive_seed(42, "trace", 3) != derive_seed(42, "trace", 4)
    True
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(parent) & _MASK64).encode())
    for tag in tags:
        hasher.update(b"\x1f")
        hasher.update(str(tag).encode())
    return int.from_bytes(hasher.digest(), "little") & _MASK64


def make_rng(seed: int, *tags: object) -> np.random.Generator:
    """Create a NumPy generator for ``seed`` (optionally derived via tags)."""
    if tags:
        seed = derive_seed(seed, *tags)
    return np.random.default_rng(seed)
