"""Deterministic fault injection for the transactional layer.

The chaos harness (``tools/chaos_gate.py``) and the failure-parity
tests need *reproducible* ways of making batch application fail at
well-defined points.  :class:`FaultInjector` packages every supported
fault class behind one seeded RNG:

* **poison modifiers** — operations the expansion gate must reject:
  duplicate edge inserts, deletes of missing edges, operations on dead
  vertices;
* **pool exhaustion** — a context manager that shrinks the bucket
  pool's capacity so the next allocation raises
  :class:`~repro.utils.errors.CapacityError` mid-batch;
* **mid-kernel abort** — a one-shot write probe on the graph that
  raises :class:`InjectedAbort` after N logged slot-write units,
  simulating a device fault with partial writes already landed (the
  undo log must still roll them back);
* **journal truncation** — chops the tail off an on-disk file,
  simulating a torn write / crashed checkpoint.

All generators read the *live* graph so the poison is guaranteed to be
poison at injection time, not just statistically likely.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.utils.errors import ModifierError

if TYPE_CHECKING:  # graph imports stay lazy: utils must not pull in
    # repro.graph at module load (repro.graph itself imports
    # repro.utils.errors, which initializes this package).
    from repro.graph.bucketlist import BucketListGraph
    from repro.graph.modifiers import Modifier

#: Every fault class the injector implements, for gates that must
#: prove coverage.
FAULT_CLASSES = (
    "duplicate_edge",
    "missing_edge",
    "dead_vertex_op",
    "pool_exhaustion",
    "kernel_abort",
    "journal_truncation",
)


#: Transport/worker fault kinds the serve layer injects
#: (:class:`ServeFaultPlan`), for gates that must prove coverage.
SERVE_FAULT_KINDS = (
    "torn_response",
    "drop_connection",
    "delay_response",
    "worker_abort",
    "crash_after_wal",
)


class InjectedAbort(ModifierError):
    """A simulated mid-kernel device abort (fault injection only)."""


class FaultInjector:
    """Seeded source of every supported fault class."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # -- poison modifiers ----------------------------------------------------------

    def _random_active(self, graph: BucketListGraph) -> int:
        active = graph.active_vertices()
        if len(active) == 0:
            raise ValueError("graph has no active vertices")
        return int(active[self.rng.integers(len(active))])

    def duplicate_edge(self, graph: BucketListGraph) -> Modifier:
        """An insert of an edge the graph already has."""
        from repro.graph.bucketlist import EMPTY
        from repro.graph.modifiers import EdgeInsert

        for _ in range(256):
            u = self._random_active(graph)
            slots = graph.slots(u)
            neighbors = slots[slots != EMPTY]
            if len(neighbors):
                v = int(neighbors[self.rng.integers(len(neighbors))])
                return EdgeInsert(u, v)
        raise ValueError("could not find an existing edge to duplicate")

    def missing_edge(self, graph: BucketListGraph) -> Modifier:
        """A delete of an edge the graph does not have."""
        from repro.graph.modifiers import EdgeDelete

        for _ in range(256):
            u = self._random_active(graph)
            v = self._random_active(graph)
            if u != v and not graph.has_edge(u, v):
                return EdgeDelete(u, v)
        raise ValueError("could not find a missing edge to delete")

    def dead_vertex_op(self, graph: BucketListGraph) -> Modifier:
        """An operation referencing a deleted or never-created vertex."""
        from repro.graph.modifiers import EdgeInsert, VertexDelete

        dead = [
            w
            for w in range(graph.num_vertices)
            if not graph.is_active(w)
        ]
        if dead and self.rng.integers(2):
            w = int(dead[self.rng.integers(len(dead))])
        else:
            # Beyond every ID ever created: "unknown vertex".
            w = graph.num_vertices + int(self.rng.integers(1, 50))
        if self.rng.integers(2):
            return EdgeInsert(self._random_active(graph), w)
        return VertexDelete(w)

    def poison(self, graph: BucketListGraph, kind: str) -> Modifier:
        """Dispatch by fault-class name (the first three classes)."""
        return {
            "duplicate_edge": self.duplicate_edge,
            "missing_edge": self.missing_edge,
            "dead_vertex_op": self.dead_vertex_op,
        }[kind](graph)

    # -- structural / timing faults ------------------------------------------------

    @contextmanager
    def pool_exhaustion(
        self, graph: BucketListGraph, spare_buckets: int = 0
    ) -> "Iterator[BucketListGraph]":
        """Temporarily shrink the bucket pool to its current fill.

        Any allocation needing more than ``spare_buckets`` extra
        buckets raises :class:`~repro.utils.errors.CapacityError` —
        the exact failure of a real pre-allocated device pool running
        dry.  The original capacity is restored on exit (the simulated
        "bigger redeploy").
        """
        original = graph.pool_buckets
        graph.pool_buckets = min(
            original, graph.num_buckets_used + spare_buckets
        )
        try:
            yield graph
        finally:
            graph.pool_buckets = original

    @contextmanager
    def kernel_abort(
        self, graph: BucketListGraph, after_writes: int
    ) -> "Iterator[BucketListGraph]":
        """Raise :class:`InjectedAbort` once ``after_writes`` slot-write
        units have been logged inside the current batch.

        The abort fires from the graph's write probe, i.e. *between*
        slot writes of a partially applied batch — the worst case the
        undo log exists for.  One-shot: after firing (or a clean exit)
        the probe is removed.
        """
        if graph._write_probe is not None:
            raise ValueError("another write probe is already installed")
        fired = [False]

        def probe(total_writes: int) -> None:
            if not fired[0] and total_writes >= after_writes:
                fired[0] = True
                raise InjectedAbort(
                    f"injected device abort after {total_writes} "
                    f"slot writes (threshold {after_writes})"
                )

        graph._write_probe = probe
        try:
            yield graph
        finally:
            graph._write_probe = None

    def truncate(self, path: "str | Path", fraction: float = 0.5) -> int:
        """Chop a file down to ``fraction`` of its size (torn write).

        Returns the new size in bytes.  ``fraction=0`` empties the
        file; the file must exist.
        """
        if not 0 <= fraction < 1:
            raise ValueError("fraction must be in [0, 1)")
        path = Path(path)
        size = path.stat().st_size
        keep = int(size * fraction)
        with path.open("rb+") as handle:
            handle.truncate(keep)
        return keep


# -- serve-layer fault plan ------------------------------------------------------


@dataclass
class ServeFault:
    """One armed transport/worker fault.

    ``kind`` is one of :data:`SERVE_FAULT_KINDS`.  ``op`` restricts the
    fault to requests with that ``"op"`` field (None matches any).
    ``after_matches`` skips that many matching requests before firing,
    so a fault can target e.g. "the third submit".  ``delay`` is the
    response delay in seconds for ``delay_response``; ``keep_bytes``
    caps how much of the encoded response frame a ``torn_response``
    still sends (None → seeded choice strictly inside the frame).
    """

    kind: str
    op: Optional[str] = None
    after_matches: int = 0
    delay: float = 0.05
    keep_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SERVE_FAULT_KINDS:
            raise ValueError(f"unknown serve fault kind {self.kind!r}")


class ServeFaultPlan:
    """A seeded, one-shot schedule of serve-layer faults.

    The server consults the plan at two stages:

    * ``"execute"`` — before running a request on a device worker
      (``worker_abort`` fires here, simulating the device dying
      mid-request);
    * ``"response"`` — after the WAL write and state change, before the
      response frame goes out (``torn_response`` / ``drop_connection``
      / ``delay_response`` / ``crash_after_wal`` fire here — the
      request *executed*, only its acknowledgement is disturbed).

    Each armed fault fires at most once; fired faults move to
    :attr:`fired` so gates can assert the sweep actually exercised
    every planned fault.  All randomness (torn-frame cut points) comes
    from one seeded RNG, keeping chaos runs reproducible.
    """

    #: Fault kinds consumed at each stage.
    _STAGES = {
        "execute": ("worker_abort",),
        "response": (
            "torn_response",
            "drop_connection",
            "delay_response",
            "crash_after_wal",
        ),
    }

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.armed: list[ServeFault] = []
        self.fired: list[ServeFault] = []
        self._seen: dict[tuple[str, Optional[str]], int] = {}

    def arm(
        self,
        kind: str,
        op: Optional[str] = None,
        after_matches: int = 0,
        **kwargs,
    ) -> ServeFault:
        """Schedule one fault; returns it for later identity checks."""
        fault = ServeFault(
            kind=kind, op=op, after_matches=after_matches, **kwargs
        )
        self.armed.append(fault)
        return fault

    def take(self, stage: str, op: str) -> Optional[ServeFault]:
        """The fault to fire now for a ``stage``/``op`` pair, if any.

        Counts every matching request per (kind, op) filter so
        ``after_matches`` is honored, pops the fault from the armed
        list, and records it in :attr:`fired`.  At most one fault fires
        per call — a second armed fault on the same request waits for
        the next match.
        """
        if stage not in self._STAGES:
            raise ValueError(f"unknown serve fault stage {stage!r}")
        kinds = self._STAGES[stage]
        for fault in self.armed:
            if fault.kind not in kinds:
                continue
            if fault.op is not None and fault.op != op:
                continue
            key = (fault.kind, fault.op)
            seen = self._seen.get(key, 0)
            self._seen[key] = seen + 1
            if seen < fault.after_matches:
                continue
            self.armed.remove(fault)
            self.fired.append(fault)
            return fault
        return None

    def torn_length(self, fault: ServeFault, frame_len: int) -> int:
        """How many bytes of a ``frame_len``-byte response to send.

        Honors ``fault.keep_bytes`` when set (clamped strictly inside
        the frame); otherwise a seeded cut point in ``[0, frame_len)``
        — always short of a complete frame, so the client observes a
        mid-frame disconnect, never a clean reply.
        """
        if frame_len <= 0:
            return 0
        if fault.keep_bytes is not None:
            return max(0, min(fault.keep_bytes, frame_len - 1))
        return int(self.rng.integers(frame_len))
