"""Host-side phase timing — compatibility shim over :mod:`repro.obs`.

Historically this module owned the phase collector the perf harness
uses; since the observability PR it is a thin facade over the span
tracer (:mod:`repro.obs.tracer`): :func:`timed` *is* ``obs.span`` and
:func:`collect_phase_times` activates a ledger-less
:class:`~repro.obs.tracer.Tracer` and yields its accumulated
``{phase_name: seconds}`` dict.  Existing callers (the perf gate,
``benchmarks/bench_hotpath.py``) keep working unchanged, and any
``timed(...)`` bracket automatically shows up in full traces too.

**Threading contract**: the collector/tracer slot is one bare module
global in :mod:`repro.obs.tracer` with *no* locking — the hot paths
are single-threaded NumPy driving, and a per-bracket lock would cost
more than the phases being measured.  All brackets and collectors must
therefore run on one thread.  Nesting on that thread is fine (the
inner collector wins and the outer one is restored on exit), but
entering :func:`collect_phase_times` while a collector from a
*different* thread is active raises ``RuntimeError`` instead of
silently corrupting the active collector's timings.

Usage::

    with collect_phase_times() as times:
        partitioner.apply(batch)
    print(times["refine.find-moves"])
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from repro.obs.tracer import Tracer
from repro.obs.tracer import span as timed  # noqa: F401  (re-export)

__all__ = ["collect_phase_times", "timed"]


@contextmanager
def collect_phase_times() -> Iterator[Dict[str, float]]:
    """Collect phase wall-clock seconds for the enclosed block.

    Returns a dict accumulating ``{phase_name: seconds}``; nested
    :func:`timed` brackets with the same name add up.  Raises
    ``RuntimeError`` when a collector is already active on a different
    thread (see the module docstring's threading contract).
    """
    tracer = Tracer()
    with tracer.activate():
        yield tracer.phase_seconds
