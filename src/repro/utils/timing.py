"""Host-side phase timing for the perf-regression harness.

The simulated-GPU ledger answers "how long would the device take"; this
module answers "how long does the *host* take to drive it" — the number
the perf gate (``tools/perf_gate.py``) protects.  Hot-path code brackets
its phases with :func:`timed`; when no collector is active the bracket
is a no-op apart from one attribute check, so production runs pay
nothing measurable.

Usage::

    with collect_phase_times() as times:
        partitioner.apply(batch)
    print(times["refine.find-moves"])
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: The active collector (or None).  A plain module global — the hot
#: paths are single-threaded NumPy driving; nesting replaces the
#: innermost collector and restores it on exit.
_active: "Dict[str, float] | None" = None


@contextmanager
def collect_phase_times() -> Iterator[Dict[str, float]]:
    """Collect phase wall-clock seconds for the enclosed block.

    Returns a dict accumulating ``{phase_name: seconds}``; nested
    :func:`timed` brackets with the same name add up.
    """
    global _active
    previous = _active
    times: Dict[str, float] = {}
    _active = times
    try:
        yield times
    finally:
        _active = previous


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Accumulate the block's wall time under ``name`` (if collecting)."""
    if _active is None:
        yield
        return
    collector = _active
    start = time.perf_counter()
    try:
        yield
    finally:
        collector[name] = (
            collector.get(name, 0.0) + time.perf_counter() - start
        )
