"""Small shared utilities: seeds, errors, formatting helpers."""

from repro.utils.errors import (
    BucketListFullError,
    CapacityError,
    GraphConsistencyError,
    ModifierError,
    PartitionError,
    ReproError,
)
from repro.utils.seeding import derive_seed, make_rng

__all__ = [
    "ReproError",
    "GraphConsistencyError",
    "BucketListFullError",
    "CapacityError",
    "ModifierError",
    "PartitionError",
    "derive_seed",
    "make_rng",
]
