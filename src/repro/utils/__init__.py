"""Small shared utilities: seeds, errors, formatting helpers."""

from repro.utils.errors import (
    BackpressureError,
    BucketListFullError,
    CapacityError,
    GraphConsistencyError,
    JournalError,
    ModifierError,
    PartitionError,
    ReproError,
    ServeError,
    ServeTimeout,
    StreamError,
    TransactionError,
    WorkerFault,
)
from repro.utils.faultinject import (
    FAULT_CLASSES,
    SERVE_FAULT_KINDS,
    FaultInjector,
    InjectedAbort,
    ServeFault,
    ServeFaultPlan,
)
from repro.utils.seeding import derive_seed, make_rng
from repro.utils.timing import collect_phase_times, timed

__all__ = [
    "collect_phase_times",
    "timed",
    "ReproError",
    "GraphConsistencyError",
    "BucketListFullError",
    "CapacityError",
    "ModifierError",
    "PartitionError",
    "StreamError",
    "ServeError",
    "ServeTimeout",
    "WorkerFault",
    "BackpressureError",
    "JournalError",
    "TransactionError",
    "FAULT_CLASSES",
    "SERVE_FAULT_KINDS",
    "FaultInjector",
    "InjectedAbort",
    "ServeFault",
    "ServeFaultPlan",
    "derive_seed",
    "make_rng",
]
