"""Small shared utilities: seeds, errors, formatting helpers."""

from repro.utils.errors import (
    BackpressureError,
    BucketListFullError,
    CapacityError,
    GraphConsistencyError,
    JournalError,
    ModifierError,
    PartitionError,
    ReproError,
    ServeError,
    StreamError,
    TransactionError,
)
from repro.utils.faultinject import (
    FAULT_CLASSES,
    FaultInjector,
    InjectedAbort,
)
from repro.utils.seeding import derive_seed, make_rng
from repro.utils.timing import collect_phase_times, timed

__all__ = [
    "collect_phase_times",
    "timed",
    "ReproError",
    "GraphConsistencyError",
    "BucketListFullError",
    "CapacityError",
    "ModifierError",
    "PartitionError",
    "StreamError",
    "ServeError",
    "BackpressureError",
    "JournalError",
    "TransactionError",
    "FAULT_CLASSES",
    "FaultInjector",
    "InjectedAbort",
    "derive_seed",
    "make_rng",
]
