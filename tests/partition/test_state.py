"""PartitionState transitions and invariants."""

import numpy as np
import pytest

from repro.partition import UNASSIGNED, PartitionState
from repro.utils import PartitionError


@pytest.fixture
def state():
    partition = np.array([0, 0, 1, 1, UNASSIGNED])
    vwgt = np.array([1, 2, 3, 4, 5])
    return PartitionState(partition, vwgt, k=2, epsilon=0.03)


class TestConstruction:
    def test_weights_computed(self, state):
        assert state.part_weights.tolist() == [3, 7]

    def test_pseudo_label_is_k(self, state):
        assert state.pseudo_label == 2

    def test_unassigned_excluded(self, state):
        assert state.total_weight() == 10

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            PartitionState(np.zeros(3), np.ones(4), k=2, epsilon=0.03)

    def test_pseudo_weight_initialized(self):
        state = PartitionState(
            np.array([0, 2, 2]), np.array([1, 5, 7]), k=2, epsilon=0.03
        )
        assert state.pseudo_weight == 12


class TestMoves:
    def test_move_between_partitions(self, state):
        state.move(0, 1)
        assert state.part_weights.tolist() == [2, 8]
        assert state.partition[0] == 1

    def test_move_to_pseudo(self, state):
        state.move(3, state.pseudo_label)
        assert state.pseudo_weight == 4
        assert state.part_weights.tolist() == [3, 3]
        assert state.total_weight() == 10

    def test_move_from_pseudo(self, state):
        state.move(3, state.pseudo_label)
        state.move(3, 0)
        assert state.pseudo_weight == 0
        assert state.part_weights.tolist() == [7, 3]

    def test_move_to_unassigned(self, state):
        state.move(2, UNASSIGNED)
        assert state.part_weights.tolist() == [3, 4]
        assert state.total_weight() == 7

    def test_move_same_is_noop(self, state):
        state.move(0, 0)
        assert state.part_weights.tolist() == [3, 7]

    def test_move_invalid_target(self, state):
        with pytest.raises(PartitionError):
            state.move(0, 5)

    def test_move_many(self, state):
        state.move_many(np.array([0, 1]), 1)
        assert state.part_weights.tolist() == [0, 10]

    def test_move_unassigned_to_pseudo(self, state):
        state.move(4, state.pseudo_label)
        assert state.pseudo_weight == 5
        assert state.total_weight() == 15


class TestWeightsAndBalance:
    def test_set_vertex_weight(self, state):
        state.set_vertex_weight(0, 10)
        assert state.part_weights[0] == 12

    def test_set_weight_of_pseudo_vertex(self, state):
        state.move(0, state.pseudo_label)
        state.set_vertex_weight(0, 4)
        assert state.pseudo_weight == 4

    def test_w_pmax_tracks_total(self, state):
        before = state.w_pmax()
        state.move(3, UNASSIGNED)
        assert state.w_pmax() < before

    def test_balanced(self):
        state = PartitionState(
            np.array([0, 1]), np.array([1, 1]), k=2, epsilon=0.03
        )
        assert state.balanced()

    def test_unbalanced(self):
        state = PartitionState(
            np.array([0, 0, 0, 0, 0, 1]), np.ones(6, dtype=int), k=2,
            epsilon=0.03,
        )
        # W_pmax = ceil(1.03 * 6 / 2) = 4 < 5.
        assert not state.balanced()


class TestValidate:
    def test_valid_passes(self, state):
        state.validate()

    def test_detects_stale_weights(self, state):
        state.part_weights[0] += 1
        with pytest.raises(PartitionError):
            state.validate()

    def test_detects_stale_pseudo(self, state):
        state.partition[0] = state.pseudo_label
        with pytest.raises(PartitionError):
            state.validate()

    def test_detects_out_of_range_label(self, state):
        state.partition[0] = 9
        with pytest.raises(PartitionError):
            state.validate()

    def test_active_mask_enforced(self, state):
        active = np.array([True, True, True, True, True])
        with pytest.raises(PartitionError):
            state.validate(active_mask=active)  # vertex 4 is UNASSIGNED

    def test_recompute_fixes_caches(self, state):
        state.partition[0] = 1  # direct edit bypassing move()
        state.recompute()
        state.validate()

    def test_copy_independent(self, state):
        clone = state.copy()
        clone.move(0, 1)
        assert state.partition[0] == 0
        state.validate()
        clone.validate()
