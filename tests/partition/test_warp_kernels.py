"""Warp-faithful FGP kernels vs their vectorized twins (differential)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, circuit_graph
from repro.gpusim import GpuContext
from repro.partition.refine import connectivity_matrix
from repro.partition.unionfind import select_neighbors
from repro.partition.warp_kernels import (
    connectivity_matrix_warp,
    select_neighbors_warp,
)
from repro.utils.seeding import make_rng


class TestSelectNeighborsWarp:
    def test_matches_vectorized_on_weighted_graph(self):
        rng = make_rng(1)
        base = circuit_graph(150, 1.8, seed=1)
        edges, _ = base.edge_array()
        csr = CSRGraph.from_edges(
            150, edges, rng.integers(1, 9, edges.shape[0])
        )
        priorities = rng.integers(
            0, 1 << 20, size=csr.adjncy.size, dtype=np.int64
        )
        eligible = np.ones(150, dtype=bool)
        vec = select_neighbors(csr, priorities, eligible)
        warp = select_neighbors_warp(
            GpuContext(), csr, priorities, eligible
        )
        assert np.array_equal(vec, warp)

    def test_respects_eligibility(self):
        csr = circuit_graph(60, 1.5, seed=2)
        rng = make_rng(2)
        priorities = rng.integers(
            0, 1 << 20, size=csr.adjncy.size, dtype=np.int64
        )
        eligible = rng.random(60) < 0.5
        vec = select_neighbors(csr, priorities, eligible)
        warp = select_neighbors_warp(
            GpuContext(), csr, priorities, eligible
        )
        assert np.array_equal(vec, warp)
        assert np.all(warp[~eligible] == -1)

    def test_high_degree_vertex_spans_chunks(self):
        # Star hub with 70 neighbors -> 3 warp chunks.
        edges = np.array([[0, i] for i in range(1, 71)])
        csr = CSRGraph.from_edges(
            71, edges, edge_weights=np.arange(1, 71)
        )
        priorities = np.zeros(csr.adjncy.size, dtype=np.int64)
        eligible = np.ones(71, dtype=bool)
        warp = select_neighbors_warp(
            GpuContext(), csr, priorities, eligible
        )
        vec = select_neighbors(csr, priorities, eligible)
        assert np.array_equal(vec, warp)
        # The hub picks the heaviest edge (weight 70 -> neighbor 70).
        assert warp[0] == 70

    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_differential_property(self, seed):
        csr = circuit_graph(64, 1.7, seed=seed)
        rng = make_rng(seed, "prio")
        priorities = rng.integers(
            0, 1 << 20, size=csr.adjncy.size, dtype=np.int64
        )
        eligible = rng.random(64) < 0.8
        vec = select_neighbors(csr, priorities, eligible)
        warp = select_neighbors_warp(
            GpuContext(), csr, priorities, eligible
        )
        assert np.array_equal(vec, warp)


class TestConnectivityMatrixWarp:
    def test_matches_vectorized(self):
        csr = circuit_graph(120, 1.8, seed=3)
        rng = make_rng(3)
        partition = rng.integers(0, 4, 120)
        vec = connectivity_matrix(csr, partition, 4)
        warp = connectivity_matrix_warp(GpuContext(), csr, partition, 4)
        assert np.array_equal(vec, warp)

    def test_weighted_edges(self):
        rng = make_rng(4)
        base = circuit_graph(80, 1.6, seed=4)
        edges, _ = base.edge_array()
        csr = CSRGraph.from_edges(
            80, edges, rng.integers(1, 9, edges.shape[0])
        )
        partition = rng.integers(0, 3, 80)
        vec = connectivity_matrix(csr, partition, 3)
        warp = connectivity_matrix_warp(GpuContext(), csr, partition, 3)
        assert np.array_equal(vec, warp)

    def test_charges_context(self):
        csr = circuit_graph(60, 1.5, seed=5)
        ctx = GpuContext()
        ctx.ledger.enable_trace()
        connectivity_matrix_warp(
            ctx, csr, np.zeros(60, dtype=np.int64), 2
        )
        names = {r.name for r in ctx.ledger.kernel_trace}
        assert "refine-gains" in names
        assert ctx.ledger.total.warp_instructions > 0

    @given(st.integers(0, 5_000), st.sampled_from([2, 3, 5]))
    @settings(max_examples=15, deadline=None)
    def test_differential_property(self, seed, k):
        csr = circuit_graph(50, 1.8, seed=seed)
        rng = make_rng(seed, "part")
        partition = rng.integers(0, k, 50)
        vec = connectivity_matrix(csr, partition, k)
        warp = connectivity_matrix_warp(GpuContext(), csr, partition, k)
        assert np.array_equal(vec, warp)
