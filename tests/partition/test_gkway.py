"""End-to-end multilevel G-kway full partitioning."""

import numpy as np
import pytest

from repro.graph import circuit_graph, mesh_graph_2d
from repro.gpusim import GpuContext
from repro.partition import (
    GKwayPartitioner,
    PartitionConfig,
    cut_size_csr,
)
from repro.utils import PartitionError


class TestPartition:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_balanced_result(self, small_circuit, k):
        result = GKwayPartitioner(
            PartitionConfig(k=k, seed=3)
        ).partition(small_circuit)
        assert result.balanced
        assert result.partition.min() >= 0
        assert result.partition.max() < k

    def test_cut_matches_partition(self, small_circuit):
        result = GKwayPartitioner(
            PartitionConfig(k=2, seed=1)
        ).partition(small_circuit)
        assert result.cut == cut_size_csr(small_circuit, result.partition)

    def test_beats_random_partition(self, small_mesh):
        result = GKwayPartitioner(
            PartitionConfig(k=2, seed=1)
        ).partition(small_mesh)
        rng = np.random.default_rng(0)
        random_cut = cut_size_csr(
            small_mesh, rng.integers(0, 2, small_mesh.num_vertices)
        )
        assert result.cut < random_cut / 2

    def test_deterministic_for_seed(self, small_circuit):
        a = GKwayPartitioner(
            PartitionConfig(k=2, seed=5)
        ).partition(small_circuit)
        b = GKwayPartitioner(
            PartitionConfig(k=2, seed=5)
        ).partition(small_circuit)
        assert np.array_equal(a.partition, b.partition)
        assert a.cut == b.cut

    def test_seed_override(self, small_circuit):
        partitioner = GKwayPartitioner(PartitionConfig(k=2, seed=5))
        a = partitioner.partition(small_circuit, seed=1)
        b = partitioner.partition(small_circuit, seed=1)
        assert np.array_equal(a.partition, b.partition)

    def test_too_few_vertices_rejected(self, tiny_csr):
        with pytest.raises(PartitionError):
            GKwayPartitioner(PartitionConfig(k=8)).partition(tiny_csr)

    def test_levels_reported(self):
        g = circuit_graph(1000, 1.4, seed=2)
        result = GKwayPartitioner(PartitionConfig(k=2, seed=1)).partition(g)
        assert result.num_levels >= 1
        assert result.coarsest_vertices <= 1000

    def test_part_weights_sum_to_total(self, small_circuit):
        result = GKwayPartitioner(
            PartitionConfig(k=4, seed=2)
        ).partition(small_circuit)
        assert (
            result.part_weights.sum()
            == small_circuit.total_vertex_weight()
        )

    def test_weighted_vertices(self):
        import numpy as np

        from repro.graph import CSRGraph

        rng = np.random.default_rng(7)
        base = circuit_graph(400, 1.5, seed=4)
        weighted = CSRGraph(
            xadj=base.xadj,
            adjncy=base.adjncy,
            adjwgt=base.adjwgt,
            vwgt=rng.integers(1, 5, 400),
        )
        result = GKwayPartitioner(
            PartitionConfig(k=2, seed=1)
        ).partition(weighted)
        assert result.balanced

    def test_charges_context(self, small_circuit):
        ctx = GpuContext()
        GKwayPartitioner(
            PartitionConfig(k=2, seed=1), ctx=ctx
        ).partition(small_circuit)
        assert ctx.ledger.total.kernel_launches > 3
        assert ctx.ledger.total.warp_instructions > 0


class TestCoarseningStrategies:
    def test_unionfind_mode_works(self, small_mesh):
        result = GKwayPartitioner(
            PartitionConfig(k=2, seed=1, coarsening="unionfind")
        ).partition(small_mesh)
        assert result.cut >= 0
        assert result.partition.shape[0] == small_mesh.num_vertices

    def test_constrained_no_worse_balance(self, small_mesh):
        con = GKwayPartitioner(
            PartitionConfig(k=2, seed=1, coarsening="constrained")
        ).partition(small_mesh)
        assert con.balanced

    def test_fm_disabled_still_valid(self, small_mesh):
        result = GKwayPartitioner(
            PartitionConfig(k=2, seed=1, fm_passes=0)
        ).partition(small_mesh)
        assert result.balanced

    def test_fm_improves_cut(self, small_mesh):
        no_fm = GKwayPartitioner(
            PartitionConfig(k=2, seed=1, fm_passes=0)
        ).partition(small_mesh)
        with_fm = GKwayPartitioner(
            PartitionConfig(k=2, seed=1, fm_passes=2)
        ).partition(small_mesh)
        assert with_fm.cut <= no_fm.cut


class TestConfig:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PartitionConfig(k=1)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PartitionConfig(epsilon=0.0)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            PartitionConfig(group_size=1)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            PartitionConfig(coarsening="bogus")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PartitionConfig(mode="cuda")

    def test_coarsen_until(self):
        assert PartitionConfig(k=4).coarsen_until == 140

    def test_with_override(self):
        cfg = PartitionConfig(k=2).with_(k=8, epsilon=0.05)
        assert cfg.k == 8
        assert cfg.epsilon == 0.05
        assert cfg.group_size == 6
