"""Initial partitioning of the coarsest graph."""

import numpy as np
import pytest

from repro.graph import CSRGraph, mesh_graph_2d
from repro.partition import cut_size_csr, initial_partition
from repro.partition.initial import (
    bfs_order,
    is_feasible_initial,
    partition_by_order,
    random_balanced_partition,
)


class TestBfsOrder:
    def test_covers_all_vertices(self, small_circuit):
        order = bfs_order(small_circuit, start=0)
        assert sorted(order.tolist()) == list(
            range(small_circuit.num_vertices)
        )

    def test_starts_at_start(self, small_circuit):
        assert bfs_order(small_circuit, start=17)[0] == 17

    def test_handles_disconnected(self):
        csr = CSRGraph.from_edges(4, np.array([[0, 1]]))
        order = bfs_order(csr, start=0)
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_bfs_is_level_ordered(self):
        # Path graph: BFS from 0 must be 0,1,2,3.
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert bfs_order(csr, 0).tolist() == [0, 1, 2, 3]


class TestPartitionByOrder:
    def test_contiguous_chunks(self):
        csr = CSRGraph.from_edges(6, np.array([[i, i + 1] for i in range(5)]))
        part = partition_by_order(csr, np.arange(6), k=3)
        assert part.tolist() == [0, 0, 1, 1, 2, 2]

    def test_weight_aware_chunks(self):
        csr = CSRGraph.from_edges(
            3,
            np.array([[0, 1], [1, 2]]),
            vertex_weights=np.array([10, 1, 1]),
        )
        part = partition_by_order(csr, np.arange(3), k=2)
        # Vertex 0 alone already reaches half the total weight.
        assert part[0] == 0
        assert part[1] == part[2] == 1

    def test_every_label_used(self, small_mesh):
        part = partition_by_order(
            small_mesh, bfs_order(small_mesh, 0), k=4
        )
        assert np.unique(part).size == 4


class TestRandomBalanced:
    def test_weights_balanced(self, small_circuit):
        rng = np.random.default_rng(1)
        part = random_balanced_partition(small_circuit, 4, rng)
        weights = np.bincount(part, weights=small_circuit.vwgt)
        assert weights.max() - weights.min() <= small_circuit.vwgt.max()

    def test_all_labels_in_range(self, small_circuit):
        rng = np.random.default_rng(2)
        part = random_balanced_partition(small_circuit, 3, rng)
        assert part.min() >= 0 and part.max() <= 2


class TestInitialPartition:
    def test_feasible(self, small_mesh):
        part = initial_partition(small_mesh, k=2, epsilon=0.03, seed=5)
        assert is_feasible_initial(small_mesh, part, 2, 0.03)

    def test_beats_random(self, small_mesh):
        part = initial_partition(small_mesh, k=2, epsilon=0.03, seed=5)
        rng = np.random.default_rng(0)
        random_part = rng.integers(0, 2, small_mesh.num_vertices)
        assert cut_size_csr(small_mesh, part) < cut_size_csr(
            small_mesh, random_part
        )

    def test_deterministic(self, small_mesh):
        a = initial_partition(small_mesh, k=4, epsilon=0.03, seed=5)
        b = initial_partition(small_mesh, k=4, epsilon=0.03, seed=5)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_various_k(self, small_mesh, k):
        part = initial_partition(small_mesh, k=k, epsilon=0.03, seed=1)
        assert np.unique(part).size == k
