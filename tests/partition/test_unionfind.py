"""Parallel union-find grouping with join-iteration labels."""

import numpy as np
import pytest

from repro.graph import CSRGraph, circuit_graph, mesh_graph_2d
from repro.gpusim import GpuContext
from repro.partition import find_roots, group_vertices
from repro.partition.unionfind import select_neighbors


class TestFindRoots:
    def test_identity(self):
        parent = np.arange(5)
        assert np.array_equal(find_roots(parent), parent)

    def test_chain_compresses(self):
        parent = np.array([0, 0, 1, 2, 3])
        assert np.array_equal(find_roots(parent), np.zeros(5, dtype=int))

    def test_two_trees(self):
        parent = np.array([0, 0, 2, 2])
        assert find_roots(parent).tolist() == [0, 0, 2, 2]


class TestSelectNeighbors:
    def test_heaviest_edge_wins(self):
        csr = CSRGraph.from_edges(
            3,
            np.array([[0, 1], [0, 2]]),
            edge_weights=np.array([1, 10]),
        )
        priorities = np.zeros(csr.adjncy.size, dtype=np.int64)
        selected = select_neighbors(csr, priorities, np.ones(3, bool))
        assert selected[0] == 2

    def test_isolated_gets_sentinel(self):
        csr = CSRGraph.from_edges(3, np.array([[0, 1]]))
        priorities = np.zeros(csr.adjncy.size, dtype=np.int64)
        selected = select_neighbors(csr, priorities, np.ones(3, bool))
        assert selected[2] == -1

    def test_ineligible_excluded(self):
        csr = CSRGraph.from_edges(2, np.array([[0, 1]]))
        priorities = np.zeros(csr.adjncy.size, dtype=np.int64)
        eligible = np.array([False, True])
        selected = select_neighbors(csr, priorities, eligible)
        assert selected[0] == -1
        assert selected[1] == 0

    def test_priority_breaks_ties(self):
        csr = CSRGraph.from_edges(3, np.array([[0, 1], [0, 2]]))
        priorities = np.zeros(csr.adjncy.size, dtype=np.int64)
        # Give the arc 0->2 a higher tie-break priority.
        for i in range(csr.adjncy.size):
            if csr.adjncy[i] == 2:
                priorities[i] = 5
        selected = select_neighbors(csr, priorities, np.ones(3, bool))
        assert selected[0] == 2


class TestGroupVertices:
    def test_pairs_on_path(self):
        # Path 0-1-2-3: everything merges within a few iterations.
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
        roots, labels = group_vertices(csr, match_iterations=3, seed=1)
        assert np.unique(roots).size < 4

    def test_roots_are_fixed_points(self, small_circuit):
        roots, _ = group_vertices(small_circuit, seed=2)
        assert np.array_equal(roots[roots], roots)

    def test_labels_bounded_by_iterations(self, small_circuit):
        _, labels = group_vertices(small_circuit, match_iterations=3, seed=2)
        assert labels.max() <= 3
        assert labels.min() >= 0

    def test_singletons_have_label_zero(self):
        # A graph with an isolated vertex.
        csr = CSRGraph.from_edges(3, np.array([[0, 1]]))
        roots, labels = group_vertices(csr, seed=0)
        assert roots[2] == 2
        assert labels[2] == 0

    def test_grouped_vertices_get_positive_labels(self, small_mesh):
        roots, labels = group_vertices(small_mesh, seed=3)
        sizes = np.bincount(roots, minlength=roots.size)
        in_group = sizes[roots] > 1
        # Every grouped subset has at least one member labelled > 0
        # (members that joined) and labels only on grouped vertices.
        assert np.all(labels[~in_group] == 0)
        for root in np.unique(roots[in_group]):
            members = np.flatnonzero(roots == root)
            assert (labels[members] > 0).any()

    def test_deterministic_for_seed(self, small_circuit):
        a = group_vertices(small_circuit, seed=9)
        b = group_vertices(small_circuit, seed=9)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_seed_changes_grouping(self, small_mesh):
        a, _ = group_vertices(small_mesh, seed=1)
        b, _ = group_vertices(small_mesh, seed=2)
        assert not np.array_equal(a, b)

    def test_reduces_subset_count_substantially(self, small_mesh):
        roots, _ = group_vertices(small_mesh, match_iterations=3, seed=4)
        assert np.unique(roots).size <= small_mesh.num_vertices // 2

    def test_charges_context(self, small_circuit):
        ctx = GpuContext()
        group_vertices(small_circuit, seed=5, ctx=ctx)
        assert ctx.ledger.total.kernel_launches >= 1
        assert ctx.ledger.total.warp_instructions > 0

    def test_zero_iterations(self, small_circuit):
        roots, labels = group_vertices(
            small_circuit, match_iterations=0, seed=1
        )
        assert np.array_equal(roots, np.arange(small_circuit.num_vertices))
        assert labels.sum() == 0
