"""Coarsening: constrained vs union-find grouping, contraction (Section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, circuit_graph, mesh_graph_2d
from repro.partition import (
    build_groups_constrained,
    build_groups_unionfind,
    coarse_weight_imbalance,
    coarsen_once,
    coarsen_to_size,
    contract,
    cut_size_csr,
    group_vertices,
)


class TestBuildGroups:
    def test_unionfind_one_group_per_subset(self):
        roots = np.array([0, 0, 2, 2, 2])
        cmap = build_groups_unionfind(roots)
        assert np.unique(cmap).size == 2
        assert cmap[0] == cmap[1]
        assert cmap[2] == cmap[3] == cmap[4]

    def test_constrained_chops_large_subsets(self):
        # One subset of six vertices, group size two -> three groups.
        roots = np.zeros(6, dtype=np.int64)
        labels = np.array([0, 1, 1, 2, 2, 3])
        cmap = build_groups_constrained(roots, labels, group_size=2)
        assert np.unique(cmap).size == 3
        sizes = np.bincount(cmap)
        assert sizes.tolist() == [2, 2, 2]

    def test_constrained_sorts_by_join_iteration(self):
        """Vertices that joined early group together (Figure 3 b)."""
        roots = np.zeros(4, dtype=np.int64)
        labels = np.array([3, 1, 2, 1])  # v1, v3 joined first
        cmap = build_groups_constrained(roots, labels, group_size=2)
        assert cmap[1] == cmap[3]  # the two early joiners merge
        assert cmap[0] == cmap[2]  # the two late joiners merge

    def test_constrained_respects_subset_boundaries(self):
        roots = np.array([0, 0, 0, 5, 5, 5])
        labels = np.zeros(6, dtype=np.int64)
        cmap = build_groups_constrained(roots, labels, group_size=4)
        assert cmap[0] != cmap[3]  # never mixes subsets

    def test_constrained_group_size_cap(self):
        roots = np.zeros(13, dtype=np.int64)
        labels = np.arange(13)
        cmap = build_groups_constrained(roots, labels, group_size=6)
        sizes = np.bincount(cmap)
        assert sizes.max() <= 6
        assert sizes.sum() == 13

    def test_singletons_stay_alone(self):
        roots = np.array([0, 1, 2])
        labels = np.zeros(3, dtype=np.int64)
        cmap = build_groups_constrained(roots, labels, group_size=6)
        assert np.unique(cmap).size == 3


class TestContract:
    def test_total_vertex_weight_preserved(self, small_circuit):
        roots, labels = group_vertices(small_circuit, seed=1)
        cmap = build_groups_constrained(roots, labels, 6)
        coarse = contract(small_circuit, cmap)
        assert (
            coarse.total_vertex_weight()
            == small_circuit.total_vertex_weight()
        )

    def test_coarse_graph_validates(self, small_circuit):
        roots, labels = group_vertices(small_circuit, seed=1)
        coarse = contract(
            small_circuit, build_groups_constrained(roots, labels, 6)
        )
        coarse.validate()

    def test_parallel_edges_merge_weights(self):
        # Square 0-1-2-3-0; contract {0,1} and {2,3}: two fine edges
        # cross -> one coarse edge of weight 2.
        csr = CSRGraph.from_edges(
            4, np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        )
        cmap = np.array([0, 0, 1, 1])
        coarse = contract(csr, cmap)
        assert coarse.num_vertices == 2
        assert coarse.num_edges == 1
        assert coarse.total_edge_weight() == 2

    def test_intra_group_edges_vanish(self, tiny_csr):
        coarse = contract(tiny_csr, np.zeros(4, dtype=np.int64))
        assert coarse.num_vertices == 1
        assert coarse.num_edges == 0

    def test_cut_equivalence(self, small_mesh):
        """The coarse cut equals the fine cut of the projected partition —
        the invariant multilevel partitioning rests on."""
        roots, labels = group_vertices(small_mesh, seed=5)
        cmap = build_groups_constrained(roots, labels, 4)
        coarse = contract(small_mesh, cmap)
        rng = np.random.default_rng(0)
        coarse_part = rng.integers(0, 3, coarse.num_vertices)
        fine_part = coarse_part[cmap]
        assert cut_size_csr(coarse, coarse_part) == cut_size_csr(
            small_mesh, fine_part
        )


class TestCoarsenOnce:
    def test_shrinks_graph(self, small_mesh):
        level = coarsen_once(
            small_mesh, "constrained", group_size=6,
            match_iterations=3, seed=1,
        )
        assert level.coarse.num_vertices < small_mesh.num_vertices

    def test_unknown_strategy_rejected(self, small_mesh):
        with pytest.raises(ValueError):
            coarsen_once(small_mesh, "magic", 6, 3, 1)

    def test_cmap_covers_all_vertices(self, small_circuit):
        level = coarsen_once(small_circuit, "constrained", 6, 3, 2)
        assert level.cmap.shape[0] == small_circuit.num_vertices
        assert level.cmap.min() >= 0
        assert level.cmap.max() == level.coarse.num_vertices - 1


class TestConstrainedVsUnionfind:
    def test_constrained_is_more_balanced(self, small_mesh):
        """The paper's core claim for Section IV (Figure 3)."""
        roots, labels = group_vertices(small_mesh, match_iterations=3,
                                       seed=7)
        uf = build_groups_unionfind(roots)
        con = build_groups_constrained(roots, labels, group_size=6)
        imb_uf = coarse_weight_imbalance(uf, small_mesh.vwgt)
        imb_con = coarse_weight_imbalance(con, small_mesh.vwgt)
        assert imb_con <= imb_uf

    def test_constrained_bounded_by_group_size(self, small_circuit):
        roots, labels = group_vertices(small_circuit, seed=3)
        con = build_groups_constrained(roots, labels, group_size=6)
        sizes = np.bincount(con)
        assert sizes.max() <= 6


class TestCoarsenToSize:
    def test_stops_at_target(self, small_mesh):
        levels = coarsen_to_size(
            small_mesh, target_vertices=70, min_coarsen_rate=0.95,
            strategy="constrained", group_size=6, match_iterations=3,
            seed=1,
        )
        assert levels
        assert levels[-1].coarse.num_vertices <= max(
            70, int(levels[-2].coarse.num_vertices * 0.95)
            if len(levels) > 1 else 10**9,
        )

    def test_already_small_no_levels(self, tiny_csr):
        levels = coarsen_to_size(
            tiny_csr, target_vertices=10, min_coarsen_rate=0.9,
            strategy="constrained", group_size=6, match_iterations=3,
            seed=1,
        )
        assert levels == []

    def test_levels_chain(self, small_circuit):
        levels = coarsen_to_size(
            small_circuit, target_vertices=40, min_coarsen_rate=0.95,
            strategy="constrained", group_size=6, match_iterations=3,
            seed=2,
        )
        for a, b in zip(levels, levels[1:]):
            assert b.fine is a.coarse

    def test_weight_preserved_through_levels(self, small_circuit):
        levels = coarsen_to_size(
            small_circuit, target_vertices=40, min_coarsen_rate=0.95,
            strategy="constrained", group_size=6, match_iterations=3,
            seed=2,
        )
        if levels:
            assert (
                levels[-1].coarse.total_vertex_weight()
                == small_circuit.total_vertex_weight()
            )


@given(st.integers(0, 1000), st.integers(2, 4))
@settings(max_examples=15, deadline=None)
def test_multilevel_cut_equivalence_property(seed, k):
    """Projecting any coarse partition down a whole hierarchy preserves
    the cut at every level — the invariant that makes multilevel
    refinement sound."""
    g = circuit_graph(120, 1.8, seed=seed)
    levels = coarsen_to_size(
        g, target_vertices=20, min_coarsen_rate=0.95,
        strategy="constrained", group_size=4, match_iterations=3,
        seed=seed,
    )
    if not levels:
        return
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, levels[-1].coarse.num_vertices)
    coarse_cut = cut_size_csr(levels[-1].coarse, part)
    for level in reversed(levels):
        part = part[level.cmap]
        assert cut_size_csr(level.fine, part) == coarse_cut


@given(st.integers(2, 8), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_group_size_property(group_size, seed):
    """Constrained groups never exceed s, and contraction preserves the
    total vertex weight, for random circuit graphs."""
    g = circuit_graph(80, 1.6, seed=seed)
    roots, labels = group_vertices(g, seed=seed)
    cmap = build_groups_constrained(roots, labels, group_size)
    assert np.bincount(cmap).max() <= group_size
    coarse = contract(g, cmap)
    coarse.validate()
    assert coarse.total_vertex_weight() == g.total_vertex_weight()
