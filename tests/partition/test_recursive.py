"""Recursive bisection initial partitioning."""

import numpy as np
import pytest

from repro.graph import CSRGraph, circuit_graph, mesh_graph_2d
from repro.partition import cut_size_csr
from repro.partition.metrics import max_partition_weight
from repro.partition.recursive import recursive_bisection


class TestRecursiveBisection:
    @pytest.mark.parametrize("k", [2, 3, 4, 7, 8, 16])
    def test_all_labels_used(self, small_mesh, k):
        partition = recursive_bisection(small_mesh, k, 0.03, seed=1)
        assert np.unique(partition).size == k
        assert partition.min() == 0
        assert partition.max() == k - 1

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_roughly_balanced(self, small_mesh, k):
        partition = recursive_bisection(small_mesh, k, 0.03, seed=1)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=k
        )
        total = small_mesh.total_vertex_weight()
        # Recursive bisection compounds per-level slack; allow ~2 eps.
        cap = max_partition_weight(total, k, 0.10)
        assert weights.max() <= cap

    def test_k_one(self, small_mesh):
        partition = recursive_bisection(small_mesh, 1, 0.03, seed=1)
        assert np.all(partition == 0)

    def test_invalid_k(self, small_mesh):
        with pytest.raises(ValueError):
            recursive_bisection(small_mesh, 0, 0.03)

    def test_beats_random(self, small_mesh):
        partition = recursive_bisection(small_mesh, 4, 0.03, seed=2)
        rng = np.random.default_rng(0)
        random_cut = cut_size_csr(
            small_mesh, rng.integers(0, 4, small_mesh.num_vertices)
        )
        assert cut_size_csr(small_mesh, partition) < random_cut / 2

    def test_deterministic(self, small_circuit):
        a = recursive_bisection(small_circuit, 8, 0.03, seed=9)
        b = recursive_bisection(small_circuit, 8, 0.03, seed=9)
        assert np.array_equal(a, b)

    def test_odd_k_side_sizes(self):
        """k=3 sizes the sides 1:2, so the singleton side holds ~1/3."""
        csr = mesh_graph_2d(900)
        partition = recursive_bisection(csr, 3, 0.03, seed=3)
        weights = np.bincount(partition, minlength=3)
        total = csr.num_vertices
        for w in weights:
            assert total / 3 * 0.7 <= w <= total / 3 * 1.4

    def test_weighted_vertices(self):
        rng = np.random.default_rng(1)
        base = circuit_graph(400, 1.5, seed=4)
        weighted = CSRGraph(
            xadj=base.xadj,
            adjncy=base.adjncy,
            adjwgt=base.adjwgt,
            vwgt=rng.integers(1, 6, 400),
        )
        partition = recursive_bisection(weighted, 4, 0.03, seed=4)
        weights = np.bincount(
            partition, weights=weighted.vwgt, minlength=4
        )
        total = weighted.total_vertex_weight()
        assert weights.max() <= max_partition_weight(total, 4, 0.15)


class TestSubgraph:
    def test_induced_edges(self, tiny_csr):
        sub, mapping = tiny_csr.subgraph(np.array([0, 1, 2]))
        assert mapping.tolist() == [0, 1, 2]
        assert sub.num_edges == 3  # triangle; edge (2,3) dropped
        sub.validate()

    def test_vertex_weights_carried(self):
        csr = CSRGraph.from_edges(
            3, np.array([[0, 1]]), vertex_weights=np.array([5, 6, 7])
        )
        sub, _ = csr.subgraph(np.array([1, 2]))
        assert sub.vwgt.tolist() == [6, 7]

    def test_empty_subgraph(self, tiny_csr):
        sub, _ = tiny_csr.subgraph(np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_ids_remapped(self, small_circuit):
        picks = np.array([10, 20, 30, 40])
        sub, mapping = small_circuit.subgraph(picks)
        assert sub.num_vertices == 4
        assert np.array_equal(mapping, picks)
        sub.validate()
