"""FM hill-climbing refinement."""

import numpy as np
import pytest

from repro.graph import CSRGraph, mesh_graph_2d
from repro.partition.fm import fm_pass, fm_refine
from repro.partition.metrics import (
    cut_size_csr,
    is_balanced,
    max_partition_weight,
)


class TestFmPass:
    def test_returns_realized_improvement(self, small_mesh):
        rng = np.random.default_rng(2)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        before = cut_size_csr(small_mesh, partition)
        gain = fm_pass(small_mesh, partition, weights, 2, w_pmax)
        after = cut_size_csr(small_mesh, partition)
        assert before - after == gain
        assert gain >= 0

    def test_never_worsens(self, small_circuit):
        rng = np.random.default_rng(4)
        partition = rng.integers(0, 3, small_circuit.num_vertices)
        weights = np.bincount(
            partition, weights=small_circuit.vwgt, minlength=3
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_circuit.total_vertex_weight(), 3, 0.03
        )
        before = cut_size_csr(small_circuit, partition)
        fm_pass(small_circuit, partition, weights, 3, w_pmax)
        assert cut_size_csr(small_circuit, partition) <= before

    def test_weights_stay_consistent(self, small_mesh):
        rng = np.random.default_rng(2)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        fm_pass(small_mesh, partition, weights, 2, w_pmax)
        recomputed = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        assert np.array_equal(weights, recomputed)

    def test_respects_balance(self, small_mesh):
        # Alternating split: perfectly balanced by construction.
        partition = np.arange(small_mesh.num_vertices) % 2
        partition = partition.astype(np.int64)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        assert weights.max() <= w_pmax
        fm_pass(small_mesh, partition, weights, 2, w_pmax)
        assert weights.max() <= w_pmax

    def test_max_moves_cap(self, small_mesh):
        rng = np.random.default_rng(2)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        reference = partition.copy()
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        fm_pass(small_mesh, partition, weights, 2, w_pmax, max_moves=3)
        assert int((partition != reference).sum()) <= 3

    def test_escapes_plateau(self):
        """FM's hill climbing crosses a zero-gain plateau the greedy
        independent-set pass cannot."""
        # Path of 8: cut between 3|4 costs 1 but a random split costs more.
        edges = np.array([[i, i + 1] for i in range(7)])
        csr = CSRGraph.from_edges(8, edges)
        partition = np.array([0, 0, 1, 1, 0, 0, 1, 1])
        weights = np.array([4, 4], dtype=np.int64)
        # Loose balance (W_pmax = 6) so the plateau walk has headroom.
        w_pmax = 6
        total_gain = 0
        for _ in range(4):
            gain = fm_pass(csr, partition, weights, 2, w_pmax)
            total_gain += gain
            if gain == 0:
                break
        assert cut_size_csr(csr, partition) <= 2


class TestFmRefine:
    def test_improves_or_equal(self, small_mesh):
        rng = np.random.default_rng(6)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        before = cut_size_csr(small_mesh, partition)
        refined = fm_refine(small_mesh, partition, 2, 0.03)
        assert cut_size_csr(small_mesh, refined) <= before

    def test_input_not_mutated(self, small_mesh):
        rng = np.random.default_rng(6)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        copy = partition.copy()
        fm_refine(small_mesh, partition, 2, 0.03)
        assert np.array_equal(partition, copy)

    def test_result_balanced_if_input_balanced(self, small_mesh):
        rng = np.random.default_rng(6)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        refined = fm_refine(small_mesh, partition, 2, 0.03)
        weights = np.bincount(
            refined, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        assert is_balanced(
            weights, small_mesh.total_vertex_weight(), 2, 0.03
        )

    def test_ctx_charged(self, small_mesh):
        from repro.gpusim import GpuContext

        ctx = GpuContext()
        rng = np.random.default_rng(6)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        fm_refine(small_mesh, partition, 2, 0.03, ctx=ctx)
        assert ctx.ledger.total.kernel_launches >= 1
