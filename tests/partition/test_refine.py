"""Boundary refinement and rebalancing."""

import numpy as np
import pytest

from repro.graph import CSRGraph, mesh_graph_2d
from repro.gpusim import GpuContext
from repro.partition import (
    cut_size_csr,
    is_balanced,
    max_partition_weight,
    rebalance_csr,
    refine_csr,
)
from repro.partition.refine import connectivity_matrix, refine_pass


class TestConnectivityMatrix:
    def test_simple(self, tiny_csr):
        partition = np.array([0, 0, 1, 1])
        conn = connectivity_matrix(tiny_csr, partition, 2)
        # v2 has neighbors 0, 1 (partition 0) and 3 (partition 1).
        assert conn[2].tolist() == [2, 1]
        assert conn[0].tolist() == [1, 1]

    def test_weighted(self):
        csr = CSRGraph.from_edges(
            3, np.array([[0, 1], [0, 2]]), edge_weights=np.array([5, 7])
        )
        conn = connectivity_matrix(csr, np.array([0, 0, 1]), 2)
        assert conn[0].tolist() == [5, 7]

    def test_rows_sum_to_weighted_degree(self, small_circuit):
        rng = np.random.default_rng(1)
        partition = rng.integers(0, 3, small_circuit.num_vertices)
        conn = connectivity_matrix(small_circuit, partition, 3)
        for u in range(0, small_circuit.num_vertices, 23):
            assert conn[u].sum() == small_circuit.neighbor_weights(u).sum()


class TestRefinePass:
    def test_improves_bad_partition(self, small_mesh):
        rng = np.random.default_rng(0)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        before = cut_size_csr(small_mesh, partition)
        moved = refine_pass(small_mesh, partition, weights, 2, w_pmax)
        after = cut_size_csr(small_mesh, partition)
        assert moved > 0
        assert after < before

    def test_keeps_weights_consistent(self, small_mesh):
        rng = np.random.default_rng(0)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        refine_pass(small_mesh, partition, weights, 2, w_pmax)
        recomputed = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        assert np.array_equal(weights, recomputed)

    def test_respects_w_pmax(self, small_mesh):
        rng = np.random.default_rng(3)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        weights = np.bincount(
            partition, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        start_ok = weights.max() <= w_pmax
        for _ in range(4):
            refine_pass(small_mesh, partition, weights, 2, w_pmax)
        if start_ok:
            assert weights.max() <= w_pmax

    def test_no_moves_on_optimal(self):
        # Two disjoint cliques already separated: nothing to gain.
        edges = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]]
        csr = CSRGraph.from_edges(6, np.array(edges))
        partition = np.array([0, 0, 0, 1, 1, 1])
        weights = np.array([3, 3], dtype=np.int64)
        moved = refine_pass(csr, partition, weights, 2, w_pmax=4)
        assert moved == 0


class TestRefineCsr:
    def test_never_worsens_cut(self, small_mesh):
        rng = np.random.default_rng(5)
        partition = rng.integers(0, 4, small_mesh.num_vertices)
        before = cut_size_csr(small_mesh, partition)
        refined = refine_csr(small_mesh, partition, 4, 0.03, passes=4)
        assert cut_size_csr(small_mesh, refined) <= before

    def test_input_not_mutated(self, small_mesh):
        rng = np.random.default_rng(5)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        copy = partition.copy()
        refine_csr(small_mesh, partition, 2, 0.03)
        assert np.array_equal(partition, copy)

    def test_charges_context(self, small_mesh):
        ctx = GpuContext()
        rng = np.random.default_rng(5)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        refine_csr(small_mesh, partition, 2, 0.03, ctx=ctx)
        assert ctx.ledger.total.kernel_launches >= 1


class TestRebalance:
    def test_restores_balance(self, small_mesh):
        partition = np.zeros(small_mesh.num_vertices, dtype=np.int64)
        partition[:10] = 1  # partition 0 massively overweight
        balanced = rebalance_csr(small_mesh, partition, 2, 0.03)
        weights = np.bincount(
            balanced, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        assert is_balanced(
            weights, small_mesh.total_vertex_weight(), 2, 0.03
        )

    def test_noop_when_balanced(self, small_mesh):
        rng = np.random.default_rng(1)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        weights = np.bincount(partition, weights=small_mesh.vwgt,
                              minlength=2)
        w_pmax = max_partition_weight(
            small_mesh.total_vertex_weight(), 2, 0.03
        )
        if weights.max() <= w_pmax:
            out = rebalance_csr(small_mesh, partition, 2, 0.03)
            assert np.array_equal(out, partition)

    def test_prefers_cheap_evictions(self):
        # A path where vertex 5 (the end) is cheapest to move.
        edges = np.array([[i, i + 1] for i in range(5)])
        csr = CSRGraph.from_edges(6, edges)
        partition = np.array([0, 0, 0, 0, 0, 1])
        out = rebalance_csr(csr, partition, 2, 0.03)
        weights = np.bincount(out, weights=csr.vwgt, minlength=2)
        assert weights.max() <= max_partition_weight(6, 2, 0.03)
        # The moved vertices should come from the partition-1-adjacent
        # end of the path, keeping the cut small.
        assert cut_size_csr(csr, out) <= 2

    def test_multi_partition(self, small_mesh):
        partition = np.zeros(small_mesh.num_vertices, dtype=np.int64)
        balanced = rebalance_csr(small_mesh, partition, 4, 0.03)
        weights = np.bincount(
            balanced, weights=small_mesh.vwgt, minlength=4
        ).astype(np.int64)
        assert is_balanced(
            weights, small_mesh.total_vertex_weight(), 4, 0.03
        )
