"""Cut size, balance, and degree metrics (Section II definitions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BucketListGraph, CSRGraph, circuit_graph
from repro.partition import (
    boundary_vertices_csr,
    cut_size_bucketlist,
    cut_size_csr,
    external_internal_degrees,
    imbalance,
    is_balanced,
    max_partition_weight,
    partition_weights,
)


def brute_force_cut(csr: CSRGraph, partition: np.ndarray) -> int:
    total = 0
    edges, weights = csr.edge_array()
    for (u, v), w in zip(edges, weights):
        if partition[u] != partition[v]:
            total += int(w)
    return total


class TestCutSize:
    def test_all_same_partition_zero_cut(self, tiny_csr):
        assert cut_size_csr(tiny_csr, np.zeros(4, dtype=np.int64)) == 0

    def test_known_cut(self, tiny_csr):
        # Partition {0,1} | {2,3}: edges (0,2) and (1,2) cross -> cut 2.
        partition = np.array([0, 0, 1, 1])
        assert cut_size_csr(tiny_csr, partition) == 2

    def test_weighted_cut(self):
        csr = CSRGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), edge_weights=np.array([5, 7])
        )
        assert cut_size_csr(csr, np.array([0, 0, 1])) == 7

    def test_matches_brute_force(self, small_circuit):
        rng = np.random.default_rng(3)
        partition = rng.integers(0, 4, small_circuit.num_vertices)
        assert cut_size_csr(small_circuit, partition) == brute_force_cut(
            small_circuit, partition
        )

    def test_bucketlist_agrees_with_csr(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        rng = np.random.default_rng(4)
        partition = rng.integers(0, 3, graph.capacity)
        assert cut_size_bucketlist(
            graph, partition
        ) == cut_size_csr(small_circuit, partition[: graph.num_vertices])

    def test_bucketlist_empty(self, tiny_csr):
        graph = BucketListGraph.from_csr(tiny_csr)
        graph.vertex_status[:] = 0
        assert cut_size_bucketlist(graph, np.zeros(graph.capacity)) == 0

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_cut_csr_vs_bucketlist_property(self, seed):
        g = circuit_graph(60, 1.8, seed=seed)
        bl = BucketListGraph.from_csr(g)
        rng = np.random.default_rng(seed)
        partition = rng.integers(0, 3, bl.capacity)
        assert cut_size_csr(g, partition[:60]) == cut_size_bucketlist(
            bl, partition
        )


class TestBalance:
    def test_max_partition_weight_formula(self):
        # (1 + 0.03) * 100 / 2 = 51.5 -> 52.
        assert max_partition_weight(100, 2, 0.03) == 52

    def test_is_balanced(self):
        assert is_balanced(np.array([52, 48]), 100, 2, 0.03)
        assert not is_balanced(np.array([53, 47]), 100, 2, 0.03)

    def test_imbalance_zero_when_even(self):
        assert imbalance(np.array([50, 50]), 100, 2) == pytest.approx(0.0)

    def test_imbalance_positive(self):
        assert imbalance(np.array([60, 40]), 100, 2) == pytest.approx(0.2)

    def test_partition_weights_ignores_special_labels(self):
        vwgt = np.array([1, 2, 3, 4])
        partition = np.array([0, 1, -1, 2])  # -1 deleted, 2 pseudo (k=2)
        weights = partition_weights(vwgt, partition, 2)
        assert weights.tolist() == [1, 2]


class TestBoundaryAndDegrees:
    def test_boundary_vertices(self, tiny_csr):
        partition = np.array([0, 0, 1, 1])
        boundary = boundary_vertices_csr(tiny_csr, partition)
        assert boundary.tolist() == [0, 1, 2]  # 3 is interior

    def test_no_boundary_when_uncut(self, tiny_csr):
        assert boundary_vertices_csr(tiny_csr, np.zeros(4)).size == 0

    def test_external_internal_degrees(self, tiny_csr):
        graph = BucketListGraph.from_csr(tiny_csr)
        partition = np.zeros(graph.capacity, dtype=np.int64)
        partition[:4] = [0, 0, 1, 1]
        ext, internal = external_internal_degrees(
            graph, partition, np.arange(4)
        )
        # v0: nbrs 1 (int), 2 (ext); v2: nbrs 0,1 ext + 3 int.
        assert ext.tolist() == [1, 1, 2, 0]
        assert internal.tolist() == [1, 1, 1, 1]

    def test_degrees_against_brute_force(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        rng = np.random.default_rng(8)
        partition = rng.integers(0, 3, graph.capacity)
        vertices = np.arange(0, graph.num_vertices, 11)
        ext, internal = external_internal_degrees(
            graph, partition, vertices
        )
        for i, u in enumerate(vertices):
            nbrs = graph.neighbors(u)
            expected_ext = int(
                (partition[nbrs] != partition[u]).sum()
            )
            assert ext[i] == expected_ext
            assert internal[i] == nbrs.size - expected_ext

    def test_empty_vertex_set(self, tiny_bucketlist):
        ext, internal = external_internal_degrees(
            tiny_bucketlist,
            np.zeros(tiny_bucketlist.capacity),
            np.array([], dtype=np.int64),
        )
        assert ext.size == 0 and internal.size == 0
