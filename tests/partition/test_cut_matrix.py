"""Cut matrix, boundary sizes, and device-scaling sensitivity."""

import numpy as np
import pytest

from repro.graph import CSRGraph, circuit_graph
from repro.gpusim import A6000, GpuContext, scale_device
from repro.partition import cut_size_csr
from repro.partition.metrics import boundary_sizes, cut_matrix


class TestCutMatrix:
    def test_simple_square(self):
        csr = CSRGraph.from_edges(
            4, np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        )
        partition = np.array([0, 0, 1, 1])
        matrix = cut_matrix(csr, partition, 2)
        assert matrix[0, 0] == 1  # edge (0,1) internal
        assert matrix[1, 1] == 1  # edge (2,3) internal
        assert matrix[0, 1] == 2  # edges (1,2) and (3,0) cross
        assert matrix[1, 0] == 2

    def test_symmetric(self, small_circuit):
        rng = np.random.default_rng(1)
        partition = rng.integers(0, 4, small_circuit.num_vertices)
        matrix = cut_matrix(small_circuit, partition, 4)
        assert np.array_equal(matrix, matrix.T)

    def test_upper_triangle_equals_cut(self, small_circuit):
        rng = np.random.default_rng(2)
        partition = rng.integers(0, 3, small_circuit.num_vertices)
        matrix = cut_matrix(small_circuit, partition, 3)
        upper = int(np.triu(matrix, k=1).sum())
        assert upper == cut_size_csr(small_circuit, partition)

    def test_total_weight_conserved(self, small_circuit):
        rng = np.random.default_rng(3)
        partition = rng.integers(0, 3, small_circuit.num_vertices)
        matrix = cut_matrix(small_circuit, partition, 3)
        total = int(np.triu(matrix, k=1).sum() + np.diagonal(matrix).sum())
        assert total == small_circuit.total_edge_weight()

    def test_weighted_edges(self):
        csr = CSRGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), edge_weights=np.array([5, 7])
        )
        matrix = cut_matrix(csr, np.array([0, 0, 1]), 2)
        assert matrix[0, 0] == 5
        assert matrix[0, 1] == 7


class TestBoundarySizes:
    def test_square(self):
        csr = CSRGraph.from_edges(
            4, np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        )
        sizes = boundary_sizes(csr, np.array([0, 0, 1, 1]), 2)
        assert sizes.tolist() == [2, 2]  # every vertex is boundary

    def test_no_boundary(self, small_circuit):
        sizes = boundary_sizes(
            small_circuit,
            np.zeros(small_circuit.num_vertices, dtype=np.int64),
            2,
        )
        assert sizes.tolist() == [0, 0]


class TestDeviceScaling:
    def test_scaled_fields(self):
        fast = scale_device(A6000, memory=2.0, launch=4.0)
        assert fast.mem_bandwidth_gbps == A6000.mem_bandwidth_gbps * 2
        assert (
            fast.kernel_launch_overhead_s
            == A6000.kernel_launch_overhead_s / 4
        )
        assert fast.sm_count == A6000.sm_count

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_device(A6000, compute=0.0)

    def test_speedup_robust_to_device_scaling(self):
        """The paper's headline ratio is a property of the algorithms,
        not of the calibration: uniformly scaling the device changes
        absolute times but leaves the iG-kway/G-kway† ratio intact."""
        from repro import GKwayDagger, IGKway, PartitionConfig
        from repro.eval.workloads import TraceConfig, generate_trace

        csr = circuit_graph(800, 1.4, seed=4)
        trace = generate_trace(
            csr,
            TraceConfig(iterations=3, modifiers_per_iteration=30, seed=4),
        )
        ratios = []
        for factor in (1.0, 3.0):
            device = scale_device(
                A6000, compute=factor, memory=factor, pcie=factor,
                launch=factor,
            )
            config = PartitionConfig(k=2, seed=4)
            ig = IGKway(csr, config, ctx=GpuContext(device))
            bl = GKwayDagger(csr, config, ctx=GpuContext(device))
            ig.full_partition()
            bl.full_partition()
            ig_total = bl_total = 0.0
            for batch in trace:
                a = ig.apply(batch)
                b = bl.apply(batch)
                ig_total += a.partitioning_seconds
                bl_total += b.partitioning_seconds
            ratios.append(bl_total / ig_total)
        assert ratios[0] == pytest.approx(ratios[1], rel=0.05)


class TestRunTrace:
    def test_run_trace_equivalent_to_loop(self):
        from repro import IGKway, PartitionConfig
        from repro.eval.workloads import TraceConfig, generate_trace

        csr = circuit_graph(300, 1.4, seed=5)
        trace = generate_trace(
            csr,
            TraceConfig(iterations=4, modifiers_per_iteration=10, seed=5),
        )
        one = IGKway(csr, PartitionConfig(k=2, seed=5))
        one.full_partition()
        reports = one.run_trace(trace)
        assert len(reports) == 4

        two = IGKway(csr, PartitionConfig(k=2, seed=5))
        two.full_partition()
        for batch in trace:
            two.apply(batch)
        assert np.array_equal(one.partition, two.partition)
        assert reports[-1].cut == two.cut_size()
