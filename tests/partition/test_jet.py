"""Jet-style refinement (label propagation + afterburner)."""

import numpy as np
import pytest

from repro.graph import CSRGraph, circuit_graph, mesh_graph_2d
from repro.gpusim import GpuContext
from repro.partition import (
    GKwayPartitioner,
    PartitionConfig,
    cut_size_csr,
    is_balanced,
)
from repro.partition.jet import jet_lp_pass, jet_refine


class TestJetLpPass:
    def test_improves_bad_partition(self, small_mesh):
        rng = np.random.default_rng(1)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        before = cut_size_csr(small_mesh, partition)
        moved = jet_lp_pass(small_mesh, partition, 2)
        after = cut_size_csr(small_mesh, partition)
        assert moved > 0
        assert after < before

    def test_no_moves_on_separated_cliques(self):
        edges = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]]
        csr = CSRGraph.from_edges(6, np.array(edges))
        partition = np.array([0, 0, 0, 1, 1, 1])
        assert jet_lp_pass(csr, partition, 2) == 0

    def test_afterburner_prevents_pair_swaps(self):
        """Two adjacent vertices that would naively swap partitions
        (each seeing the other as its majority side) must not both
        move — the afterburner makes the lower-priority one re-evaluate
        under the assumption the other moves."""
        # 0-1 joined; 0 also tied to 2,3 (p1); 1 also tied to 4,5 (p0).
        edges = np.array(
            [[0, 1], [0, 2], [0, 3], [1, 4], [1, 5]]
        )
        csr = CSRGraph.from_edges(6, edges)
        partition = np.array([0, 1, 1, 1, 0, 0])
        before = cut_size_csr(csr, partition)
        jet_lp_pass(csr, partition, 2)
        after = cut_size_csr(csr, partition)
        assert after <= before  # a naive simultaneous swap would worsen

    def test_interior_vertices_never_move(self, small_mesh):
        partition = np.zeros(small_mesh.num_vertices, dtype=np.int64)
        partition[:3] = 1
        reference = partition.copy()
        jet_lp_pass(small_mesh, partition, 2)
        # Vertices far from the tiny island of 1s are interior and stay.
        assert np.array_equal(partition[100:], reference[100:])


class TestJetRefine:
    def test_never_worse_than_balanced_input(self, small_mesh):
        rng = np.random.default_rng(2)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        before = cut_size_csr(small_mesh, partition)
        refined = jet_refine(small_mesh, partition, 2, 0.03)
        assert cut_size_csr(small_mesh, refined) <= before

    def test_result_balanced(self, small_mesh):
        rng = np.random.default_rng(2)
        partition = rng.integers(0, 4, small_mesh.num_vertices)
        refined = jet_refine(small_mesh, partition, 4, 0.03)
        weights = np.bincount(
            refined, weights=small_mesh.vwgt, minlength=4
        ).astype(np.int64)
        assert is_balanced(
            weights, small_mesh.total_vertex_weight(), 4, 0.03
        )

    def test_repairs_unbalanced_input(self, small_mesh):
        partition = np.zeros(small_mesh.num_vertices, dtype=np.int64)
        partition[:5] = 1
        refined = jet_refine(small_mesh, partition, 2, 0.03)
        weights = np.bincount(
            refined, weights=small_mesh.vwgt, minlength=2
        ).astype(np.int64)
        assert is_balanced(
            weights, small_mesh.total_vertex_weight(), 2, 0.03
        )

    def test_input_not_mutated(self, small_mesh):
        rng = np.random.default_rng(3)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        copy = partition.copy()
        jet_refine(small_mesh, partition, 2, 0.03)
        assert np.array_equal(partition, copy)

    def test_charges_context(self, small_mesh):
        ctx = GpuContext()
        rng = np.random.default_rng(3)
        partition = rng.integers(0, 2, small_mesh.num_vertices)
        jet_refine(small_mesh, partition, 2, 0.03, ctx=ctx)
        names = {r.name for r in ctx.ledger.kernel_trace}
        assert ctx.ledger.total.kernel_launches >= 1


class TestJetInPartitioner:
    def test_jet_mode_produces_balanced_partition(self, small_mesh):
        result = GKwayPartitioner(
            PartitionConfig(k=4, seed=3, refinement="jet")
        ).partition(small_mesh)
        assert result.balanced

    def test_jet_quality_comparable(self):
        """Jet and G-kway refinement land in the same quality range."""
        csr = mesh_graph_2d(2500)
        cuts = {}
        for refinement in ("gkway", "jet"):
            result = GKwayPartitioner(
                PartitionConfig(k=2, seed=5, refinement=refinement)
            ).partition(csr)
            cuts[refinement] = result.cut
            assert result.balanced
        assert cuts["jet"] <= 2.5 * cuts["gkway"]
        assert cuts["gkway"] <= 2.5 * cuts["jet"]

    def test_invalid_refinement_rejected(self):
        with pytest.raises(ValueError):
            PartitionConfig(refinement="magic")
