"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import GpuContext
from repro.graph import (
    BucketListGraph,
    CSRGraph,
    HostGraph,
    circuit_graph,
    mesh_graph_2d,
)


@pytest.fixture
def ctx() -> GpuContext:
    """A fresh simulated-GPU context."""
    return GpuContext()


@pytest.fixture
def tiny_csr() -> CSRGraph:
    """The 4-vertex example graph of the paper's Figure 4 (a):

    v0 - v1, v0 - v2, v1 - v2, v2 - v3.
    """
    edges = np.array([[0, 1], [0, 2], [1, 2], [2, 3]])
    return CSRGraph.from_edges(4, edges)


@pytest.fixture
def tiny_bucketlist(tiny_csr: CSRGraph) -> BucketListGraph:
    return BucketListGraph.from_csr(tiny_csr, gamma=1)


@pytest.fixture
def small_circuit() -> CSRGraph:
    """A 300-vertex circuit-like graph (fast, deterministic)."""
    return circuit_graph(300, edge_ratio=1.4, seed=11)


@pytest.fixture
def small_mesh() -> CSRGraph:
    """A 16x16 grid mesh."""
    return mesh_graph_2d(256)


@pytest.fixture
def small_host(small_circuit: CSRGraph) -> HostGraph:
    return HostGraph.from_csr(small_circuit)


def random_csr(
    rng: np.random.Generator, n: int, density: float = 2.0
) -> CSRGraph:
    """Random graph helper for property-style tests."""
    m = int(n * density)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    mask = src != dst
    lo = np.minimum(src[mask], dst[mask])
    hi = np.maximum(src[mask], dst[mask])
    edges = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return CSRGraph.from_edges(n, edges)
