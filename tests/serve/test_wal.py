"""Serve WAL (session manifest): durability, torn tails, compaction."""

import json

import pytest

from repro.serve.wal import MANIFEST_NAME, ManifestState, ServeWAL
from repro.utils.errors import JournalError

PARAMS = {"graph": {"generator": "circuit", "args": {}}, "k": 3}


def _lines(wal):
    return [
        json.loads(line)
        for line in wal.path.read_text().splitlines()
        if line.strip()
    ]


class TestAppendAndLoad:
    def test_empty_manifest(self, tmp_path):
        state = ServeWAL(tmp_path).load()
        assert state == ManifestState()

    def test_create_settle_roundtrip(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        wal.append_settle("t", "s0", 12.5)
        wal.append_settle("t", "s0", 99.0)
        wal.close()

        state = ServeWAL(tmp_path).load()
        assert state.creates == [("t", "s0", PARAMS)]
        # Latest settle wins: it corresponds to the newest checkpoint.
        assert state.settled_cycles == {("t", "s0"): 99.0}

    def test_creation_order_preserved(self, tmp_path):
        wal = ServeWAL(tmp_path)
        for name in ("b", "a", "c"):
            wal.append_create("t", name, PARAMS)
        wal.close()
        names = [n for _, n, _ in ServeWAL(tmp_path).load().creates]
        # Manifest order IS creation order — recovery's round-robin
        # worker assignment depends on it, not on any sort.
        assert names == ["b", "a", "c"]

    def test_duplicate_create_first_wins(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        wal.append_create("t", "s0", {"k": 99})
        wal.close()
        state = ServeWAL(tmp_path).load()
        assert state.creates == [("t", "s0", PARAMS)]

    def test_unknown_record_kind_raises(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        wal.close()
        with wal.path.open("a") as handle:
            handle.write('{"r":"x","t":"t"}\n')
        with pytest.raises(JournalError, match="unknown manifest"):
            ServeWAL(tmp_path).load()

    def test_non_object_params_raises(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.path.write_text('{"r":"c","t":"t","n":"s","p":[1]}\n')
        with pytest.raises(JournalError, match="non-object params"):
            wal.load()


class TestTornTail:
    def test_torn_final_line_discarded_on_load(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        wal.append_settle("t", "s0", 5.0)
        wal.close()
        with wal.path.open("a") as handle:
            handle.write('{"r":"s","t":"t","n":"s0","c":9')  # no \n

        state = ServeWAL(tmp_path).load()
        assert state.settled_cycles == {("t", "s0"): 5.0}

    def test_append_after_torn_tail_does_not_merge(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        wal.close()
        with wal.path.open("a") as handle:
            handle.write('{"r":"c","t":"t","n":"s1"')  # crash mid-append

        # A new process appends more records; the torn line must be
        # truncated first or the new record glues onto it.
        fresh = ServeWAL(tmp_path)
        fresh.append_settle("t", "s0", 7.0)
        fresh.close()
        records = _lines(fresh)
        assert [r["r"] for r in records] == ["c", "s"]
        assert fresh.load().settled_cycles == {("t", "s0"): 7.0}


class TestCompaction:
    def test_compact_collapses_settles(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        for cycles in (1.0, 2.0, 3.0):
            wal.append_settle("t", "s0", cycles)
        wal.append_create("u", "s0", PARAMS)
        wal.compact()

        records = _lines(wal)
        # One create per session (order kept) + one settle where known.
        assert [(r["r"], r["t"]) for r in records] == [
            ("c", "t"),
            ("s", "t"),
            ("c", "u"),
        ]
        state = ServeWAL(tmp_path).load()
        assert state.settled_cycles == {("t", "s0"): 3.0}
        assert [t for t, _, _ in state.creates] == ["t", "u"]

    def test_compact_leaves_no_temp_file(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create("t", "s0", PARAMS)
        wal.compact()
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            MANIFEST_NAME
        ]
