"""Wire-protocol contracts: framing, typed errors, size caps."""

import socket
import struct

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME,
    RETRYABLE_CODES,
    E_BAD_REQUEST,
    E_SHED_OVERLOAD,
    encode_frame,
    error_response,
    ok_response,
    raise_for_response,
    read_frame,
    write_frame,
)
from repro.utils.errors import ServeError


def _socketpair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_round_trip(self):
        a, b = _socketpair()
        try:
            payload = {"op": "hello", "n": 3, "nested": {"x": [1, 2]}}
            write_frame(a, payload)
            assert read_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_frame_is_length_prefixed_json(self):
        frame = encode_frame({"b": 1, "a": 2})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        # sort_keys: the wire bytes are canonical.
        assert frame[4:] == b'{"a":2,"b":1}'

    def test_eof_at_boundary_is_none(self):
        a, b = _socketpair()
        a.close()
        try:
            assert read_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = _socketpair()
        try:
            frame = encode_frame({"op": "hello"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(ServeError, match="mid-frame"):
                read_frame(b)
        finally:
            b.close()

    def test_oversized_announced_frame_rejected(self):
        a, b = _socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(ServeError) as exc:
                read_frame(b)
            assert exc.value.code == E_BAD_REQUEST
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = _socketpair()
        try:
            body = b"[1,2,3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ServeError, match="JSON object"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_garbage_payload_rejected(self):
        a, b = _socketpair()
        try:
            body = b"\xff\xfe{"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ServeError, match="not valid JSON"):
                read_frame(b)
        finally:
            a.close()
            b.close()


class TestTypedErrors:
    def test_error_response_requires_known_code(self):
        with pytest.raises(ValueError, match="unknown serve error code"):
            error_response("made-up-code", "nope")

    def test_retryable_derived_from_code(self):
        for code in ERROR_CODES:
            response = error_response(code, "msg")
            assert response["error"]["retryable"] == (
                code in RETRYABLE_CODES
            )

    def test_raise_for_response_carries_code_and_retryable(self):
        response = error_response(E_SHED_OVERLOAD, "busy")
        with pytest.raises(ServeError) as exc:
            raise_for_response(response)
        assert exc.value.code == E_SHED_OVERLOAD
        assert exc.value.retryable is True

    def test_ok_response_passes_through(self):
        response = ok_response(cut=7)
        assert raise_for_response(response) is response
