"""Admission control: typed codes, window rolls, validation."""

import pytest

from repro.serve.protocol import (
    E_QUOTA_CYCLES,
    E_QUOTA_QUEUE,
    E_QUOTA_SESSIONS,
)
from repro.serve.quotas import TenantAccount, TenantQuota
from repro.serve.shedding import LoadShedder, ShedPolicy
from repro.obs.metrics import MetricsRegistry


class TestQuotaValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"max_queued_modifiers": 0},
            {"window_cycles": 0.0},
            {"cycle_budget_per_window": -1.0},
        ],
    )
    def test_bad_quota_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmission:
    def test_session_quota_returns_typed_code(self):
        account = TenantAccount("t", TenantQuota(max_sessions=2))
        assert account.admit_session(1) is None
        assert account.admit_session(2) == E_QUOTA_SESSIONS

    def test_queue_quota_counts_incoming(self):
        account = TenantAccount(
            "t", TenantQuota(max_queued_modifiers=10)
        )
        assert account.admit_submit(8, 2, worker_cycles=0.0) is None
        assert (
            account.admit_submit(8, 3, worker_cycles=0.0)
            == E_QUOTA_QUEUE
        )

    def test_cycle_budget_exhausts_and_rolls(self):
        quota = TenantQuota(
            cycle_budget_per_window=100.0, window_cycles=1000.0
        )
        account = TenantAccount("t", quota)
        assert account.admit_submit(0, 1, worker_cycles=0.0) is None
        account.charge_cycles(150.0)
        assert (
            account.admit_submit(0, 1, worker_cycles=500.0)
            == E_QUOTA_CYCLES
        )
        # Crossing the window boundary resets the spent budget.
        assert account.admit_submit(0, 1, worker_cycles=1500.0) is None
        assert account.window_cycles_used == 0.0

    def test_no_budget_means_no_cycle_rejections(self):
        account = TenantAccount("t", TenantQuota())
        account.charge_cycles(1e18)
        assert account.admit_submit(0, 1, worker_cycles=1e18) is None

    def test_negative_charge_rejected(self):
        account = TenantAccount("t", TenantQuota())
        with pytest.raises(ValueError):
            account.charge_cycles(-1.0)

    def test_metrics_registry_tracks_usage(self):
        account = TenantAccount("t", TenantQuota())
        account.record_request()
        account.record_reject()
        account.record_shed()
        account.charge_cycles(12.5)
        account.publish_usage(live_sessions=2, queued=7)
        snapshot = account.registry.as_dict()
        assert snapshot["serve_tenant_requests_total"] == 1
        assert snapshot["serve_tenant_rejected_total"] == 1
        assert snapshot["serve_tenant_shed_total"] == 1
        assert snapshot["serve_tenant_device_cycles_total"] == 12.5
        assert snapshot["serve_tenant_sessions_live"] == 2
        assert snapshot["serve_tenant_queued_modifiers"] == 7


class TestShedding:
    def _shedder(self, high=10, low=4):
        return LoadShedder(
            ShedPolicy(high_watermark=high, low_watermark=low),
            MetricsRegistry(),
        )

    def test_hysteresis_enters_high_exits_low(self):
        shedder = self._shedder()
        assert shedder.should_shed_submit(9) is False
        assert shedder.should_shed_submit(10) is True
        # Between low and high: still shedding (hysteresis).
        assert shedder.should_shed_submit(7) is True
        assert shedder.should_shed_submit(4) is False
        assert shedder.should_shed_submit(9) is False

    def test_default_low_watermark_is_half(self):
        policy = ShedPolicy(high_watermark=100)
        assert policy.resolved_low_watermark == 50

    def test_low_above_high_rejected(self):
        with pytest.raises(ValueError):
            ShedPolicy(high_watermark=10, low_watermark=11)

    def test_shed_rate_and_counter(self):
        registry = MetricsRegistry()
        shedder = LoadShedder(
            ShedPolicy(
                high_watermark=10, low_watermark=0, rate_window=4
            ),
            registry,
        )
        for backlog in (10, 10, 10, 10):
            shedder.should_shed_submit(backlog)
        snapshot = registry.as_dict()
        assert snapshot["serve_shed_total"] == 4
        assert snapshot["serve_shed_rate"] == 1.0
        assert snapshot["serve_shedding"] == 1
        shedder.should_shed_submit(0)
        snapshot = registry.as_dict()
        assert snapshot["serve_shedding"] == 0
        assert snapshot["serve_shed_rate"] == 0.75
