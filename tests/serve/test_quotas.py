"""Admission control: typed codes, window rolls, validation."""

import pytest

from repro.serve.protocol import (
    E_QUOTA_CYCLES,
    E_QUOTA_QUEUE,
    E_QUOTA_SESSIONS,
)
from repro.serve.quotas import (
    SERVE_LATENCY_BUCKETS,
    SERVE_LATENCY_OPS,
    SERVE_LATENCY_SLO_SECONDS,
    TenantAccount,
    TenantQuota,
)
from repro.serve.shedding import LoadShedder, ShedPolicy
from repro.obs.metrics import MetricsRegistry, to_prometheus_labeled


class TestQuotaValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"max_queued_modifiers": 0},
            {"window_cycles": 0.0},
            {"cycle_budget_per_window": -1.0},
        ],
    )
    def test_bad_quota_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmission:
    def test_session_quota_returns_typed_code(self):
        account = TenantAccount("t", TenantQuota(max_sessions=2))
        assert account.admit_session(1) is None
        assert account.admit_session(2) == E_QUOTA_SESSIONS

    def test_queue_quota_counts_incoming(self):
        account = TenantAccount(
            "t", TenantQuota(max_queued_modifiers=10)
        )
        assert account.admit_submit(8, 2, worker_cycles=0.0) is None
        assert (
            account.admit_submit(8, 3, worker_cycles=0.0)
            == E_QUOTA_QUEUE
        )

    def test_cycle_budget_exhausts_and_rolls(self):
        quota = TenantQuota(
            cycle_budget_per_window=100.0, window_cycles=1000.0
        )
        account = TenantAccount("t", quota)
        assert account.admit_submit(0, 1, worker_cycles=0.0) is None
        account.charge_cycles(150.0)
        assert (
            account.admit_submit(0, 1, worker_cycles=500.0)
            == E_QUOTA_CYCLES
        )
        # Crossing the window boundary resets the spent budget.
        assert account.admit_submit(0, 1, worker_cycles=1500.0) is None
        assert account.window_cycles_used == 0.0

    def test_no_budget_means_no_cycle_rejections(self):
        account = TenantAccount("t", TenantQuota())
        account.charge_cycles(1e18)
        assert account.admit_submit(0, 1, worker_cycles=1e18) is None

    def test_negative_charge_rejected(self):
        account = TenantAccount("t", TenantQuota())
        with pytest.raises(ValueError):
            account.charge_cycles(-1.0)

    def test_metrics_registry_tracks_usage(self):
        account = TenantAccount("t", TenantQuota())
        account.record_request()
        account.record_reject()
        account.record_shed()
        account.charge_cycles(12.5)
        account.publish_usage(live_sessions=2, queued=7)
        snapshot = account.registry.as_dict()
        assert snapshot["serve_tenant_requests_total"] == 1
        assert snapshot["serve_tenant_rejected_total"] == 1
        assert snapshot["serve_tenant_shed_total"] == 1
        assert snapshot["serve_tenant_device_cycles_total"] == 12.5
        assert snapshot["serve_tenant_sessions_live"] == 2
        assert snapshot["serve_tenant_queued_modifiers"] == 7


class TestOpLatencyHistograms:
    def test_every_latency_op_registered(self):
        account = TenantAccount("t", TenantQuota())
        for op in SERVE_LATENCY_OPS:
            metric = account.registry.get(
                f"serve_tenant_op_latency_seconds_{op}"
            )
            assert metric is not None
            assert metric.buckets == SERVE_LATENCY_BUCKETS

    def test_slo_is_an_exact_bucket_bound(self):
        # The dashboard reads "within SLO" straight off one cumulative
        # bucket; that only works while the SLO is a bound.
        assert SERVE_LATENCY_SLO_SECONDS in SERVE_LATENCY_BUCKETS

    def test_observations_are_cumulative(self):
        account = TenantAccount("t", TenantQuota())
        account.observe_op_latency("submit", 0.0004)
        account.observe_op_latency("submit", 0.003)
        account.observe_op_latency("submit", 0.02)
        account.observe_op_latency("submit", 0.4)
        snapshot = account.registry.as_dict()
        base = "serve_tenant_op_latency_seconds_submit"
        assert snapshot[f"{base}_count"] == 4
        assert snapshot[f"{base}_sum"] == pytest.approx(0.4234)
        # Cumulative: each bound counts everything at or below it.
        assert snapshot[f"{base}_bucket_0.0005"] == 1
        assert snapshot[f"{base}_bucket_0.005"] == 2
        assert snapshot[f"{base}_bucket_0.025"] == 3
        assert snapshot[f"{base}_bucket_1.0"] == 4
        assert snapshot[f"{base}_bucket_+Inf"] == 4

    def test_unknown_op_is_a_noop(self):
        account = TenantAccount("t", TenantQuota())
        account.observe_op_latency("hello", 1.0)
        snapshot = account.registry.as_dict()
        assert all(
            snapshot[f"serve_tenant_op_latency_seconds_{op}_count"] == 0
            for op in SERVE_LATENCY_OPS
        )

    def test_labeled_export_carries_tenant_and_le(self):
        acme = TenantAccount("acme", TenantQuota())
        bravo = TenantAccount("bravo", TenantQuota())
        acme.observe_op_latency("flush", 0.01)
        bravo.observe_op_latency("flush", 0.3)
        text = to_prometheus_labeled(
            {"acme": acme.registry, "bravo": bravo.registry},
            label="tenant",
        )
        base = "serve_tenant_op_latency_seconds_flush"
        assert f'{base}_bucket{{tenant="acme",le="0.01"}} 1' in text
        assert f'{base}_bucket{{tenant="acme",le="0.025"}} 1' in text
        assert f'{base}_bucket{{tenant="bravo",le="0.025"}} 0' in text
        assert f'{base}_bucket{{tenant="bravo",le="+Inf"}} 1' in text
        assert f'{base}_count{{tenant="acme"}} 1' in text
        assert f'{base}_sum{{tenant="bravo"}} 0.3' in text
        # One TYPE header for the family, ahead of every sample.
        assert text.count(f"# TYPE {base} histogram") == 1


class TestShedding:
    def _shedder(self, high=10, low=4):
        return LoadShedder(
            ShedPolicy(high_watermark=high, low_watermark=low),
            MetricsRegistry(),
        )

    def test_hysteresis_enters_high_exits_low(self):
        shedder = self._shedder()
        assert shedder.should_shed_submit(9) is False
        assert shedder.should_shed_submit(10) is True
        # Between low and high: still shedding (hysteresis).
        assert shedder.should_shed_submit(7) is True
        assert shedder.should_shed_submit(4) is False
        assert shedder.should_shed_submit(9) is False

    def test_default_low_watermark_is_half(self):
        policy = ShedPolicy(high_watermark=100)
        assert policy.resolved_low_watermark == 50

    def test_low_above_high_rejected(self):
        with pytest.raises(ValueError):
            ShedPolicy(high_watermark=10, low_watermark=11)

    def test_shed_rate_and_counter(self):
        registry = MetricsRegistry()
        shedder = LoadShedder(
            ShedPolicy(
                high_watermark=10, low_watermark=0, rate_window=4
            ),
            registry,
        )
        for backlog in (10, 10, 10, 10):
            shedder.should_shed_submit(backlog)
        snapshot = registry.as_dict()
        assert snapshot["serve_shed_total"] == 4
        assert snapshot["serve_shed_rate"] == 1.0
        assert snapshot["serve_shedding"] == 1
        shedder.should_shed_submit(0)
        snapshot = registry.as_dict()
        assert snapshot["serve_shedding"] == 0
        assert snapshot["serve_shed_rate"] == 0.75
