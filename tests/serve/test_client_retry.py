"""Client retry loop: seeded backoff, timeouts, next_seq resync."""

import socket

import pytest

from repro.graph.modifiers import EdgeInsert
from repro.serve.client import ServeClient
from repro.utils.errors import ServeError, ServeTimeout


@pytest.fixture
def silent_port():
    """A listener that accepts connections but never answers."""
    listener = socket.create_server(("127.0.0.1", 0))
    yield listener.getsockname()[1]
    listener.close()


def _client(port, **kwargs):
    kwargs.setdefault("retry_seed", 3)
    kwargs.setdefault("sleep", lambda _d: None)
    return ServeClient("127.0.0.1", port, tenant="t", **kwargs)


def _mods(n):
    return [EdgeInsert(u=i, v=i + 1) for i in range(n)]


class TestBackoff:
    def test_schedule_is_seeded_and_bounded(self, silent_port):
        schedules = []
        for _ in range(2):
            slept = []
            client = _client(
                silent_port,
                retry_seed=11,
                sleep=slept.append,
                backoff_base=0.01,
                backoff_max=0.04,
            )
            for attempt in range(6):
                client._backoff(attempt)
            client.close()
            schedules.append(slept)
        # Same seed -> identical jitter; different delays per attempt.
        assert schedules[0] == schedules[1]
        assert len(set(schedules[0])) == len(schedules[0])
        for attempt, delay in enumerate(schedules[0]):
            ceiling = min(0.04, 0.01 * 2**attempt)
            assert ceiling * 0.5 <= delay <= ceiling
        # The envelope caps: late attempts never exceed backoff_max.
        assert max(schedules[0]) <= 0.04

    def test_different_seeds_decorrelate(self, silent_port):
        slept = {}
        for seed in (1, 2):
            record = []
            client = _client(
                silent_port, retry_seed=seed, sleep=record.append
            )
            for attempt in range(4):
                client._backoff(attempt)
            client.close()
            slept[seed] = record
        assert slept[1] != slept[2]

    def test_invalid_envelope_rejected(self, silent_port):
        with pytest.raises(ValueError, match="envelope"):
            _client(silent_port, backoff_base=0.0)


class TestCallFailures:
    def test_timeout_is_typed_and_poisons_socket(self, silent_port):
        client = _client(silent_port, timeout=0.2)
        with pytest.raises(ServeTimeout) as exc:
            client.call("hello")
        assert exc.value.code == "timeout"
        assert exc.value.retryable
        # The socket is gone: a late response must not desync framing.
        assert client._sock is None
        with pytest.raises(ServeError, match="closed"):
            client.call("hello")

    def test_per_call_timeout_overrides_default(self, silent_port):
        client = _client(silent_port, timeout=None)
        with pytest.raises(ServeTimeout):
            client.call("hello", timeout=0.2)
        client.close()

    def test_server_eof_is_retryable(self, silent_port):
        listener = socket.create_server(("127.0.0.1", 0))
        client = _client(listener.getsockname()[1], timeout=2.0)
        conn, _ = listener.accept()
        conn.close()  # server "drops" the connection
        with pytest.raises(ServeError) as exc:
            client.call("hello")
        assert exc.value.retryable
        listener.close()


class _Scripted:
    """Drives submit_with_retry against scripted submit outcomes."""

    def __init__(self, client, outcomes, next_seqs):
        self.submits = []
        self.flushes = 0
        self._outcomes = list(outcomes)
        self._next_seqs = list(next_seqs)
        self._seq = next_seqs[0] if next_seqs else 0
        client.submit = self._submit
        client.attach = self._attach
        client.flush = self._flush
        client.reconnect = lambda: None

    def _submit(self, session, modifiers, timeout=None):
        self.submits.append(list(modifiers))
        outcome = self._outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        first = self._seq
        self._seq += len(modifiers)
        return {
            "ok": True,
            "accepted": len(modifiers),
            "first_seq": first,
            "last_seq": self._seq - 1,
        }

    def _attach(self, session):
        # The reported cursor is the truth: landed-but-unacked
        # modifiers moved it, so future accepts start there.
        self._seq = self._next_seqs.pop(0)
        return {"next_seq": self._seq}

    def _flush(self, session, drain=True):
        self.flushes += 1
        return {"ok": True}


class TestSubmitWithRetry:
    def test_typed_reject_flushes_then_resubmits(self, silent_port):
        client = _client(silent_port)
        shed = ServeError("busy", code="shed-overload", retryable=True)
        script = _Scripted(
            client, [shed, shed, None], next_seqs=[7]
        )
        responses = client.submit_with_retry("s", _mods(4))
        assert [len(b) for b in script.submits] == [4, 4, 4]
        assert script.flushes == 2  # drain is what clears backlog
        assert [r["accepted"] for r in responses] == [4]
        assert responses[0]["first_seq"] == 7
        client.close()

    def test_non_retryable_raises_immediately(self, silent_port):
        client = _client(silent_port)
        script = _Scripted(
            client,
            [ServeError("bad", code="bad-request")],
            next_seqs=[0],
        )
        with pytest.raises(ServeError, match="bad"):
            client.submit_with_retry("s", _mods(3))
        assert len(script.submits) == 1
        client.close()

    def test_bounded_attempts(self, silent_port):
        client = _client(silent_port)
        shed = ServeError("busy", code="shed-overload", retryable=True)
        script = _Scripted(client, [shed] * 3, next_seqs=[0])
        with pytest.raises(ServeError, match="busy"):
            client.submit_with_retry("s", _mods(2), max_attempts=3)
        assert len(script.submits) == 3
        client.close()

    def test_ambiguous_fully_landed_synthesizes(self, silent_port):
        client = _client(silent_port)
        lost = ServeTimeout("fate unknown")
        # Baseline next_seq 10; after the "lost" submit the server
        # reports 15: all five landed, nothing to resubmit.
        script = _Scripted(client, [lost], next_seqs=[10, 15])
        responses = client.submit_with_retry("s", _mods(5))
        assert len(script.submits) == 1
        assert script.flushes == 0  # resync, not drain
        assert responses == [
            {
                "ok": True,
                "accepted": 5,
                "first_seq": 10,
                "last_seq": 14,
                "resynced": True,
            }
        ]
        client.close()

    def test_ambiguous_partial_resubmits_suffix(self, silent_port):
        client = _client(silent_port)
        lost = ServeTimeout("fate unknown")
        # Baseline 10; only 2 of 5 landed before the loss.
        script = _Scripted(client, [lost, None], next_seqs=[10, 12])
        responses = client.submit_with_retry("s", _mods(5))
        assert [len(b) for b in script.submits] == [5, 3]
        assert sum(r["accepted"] for r in responses) == 5
        # The synthesized prefix and the real suffix are contiguous.
        assert responses[0]["last_seq"] + 1 == responses[1]["first_seq"]
        client.close()

    def test_ambiguous_nothing_landed_resubmits_all(self, silent_port):
        client = _client(silent_port)
        lost = ServeError(
            "conn lost", code="internal", retryable=True
        )
        script = _Scripted(client, [lost, None], next_seqs=[10, 10])
        responses = client.submit_with_retry("s", _mods(4))
        assert [len(b) for b in script.submits] == [4, 4]
        assert [r["accepted"] for r in responses] == [4]
        client.close()

    def test_chunking_splits_batches(self, silent_port):
        client = _client(silent_port)
        script = _Scripted(client, [None, None, None], next_seqs=[0])
        responses = client.submit_with_retry("s", _mods(7), chunk=3)
        assert [len(b) for b in script.submits] == [3, 3, 1]
        assert sum(r["accepted"] for r in responses) == 7
        client.close()

    def test_empty_batch_is_noop(self, silent_port):
        client = _client(silent_port)
        script = _Scripted(client, [], next_seqs=[])
        assert client.submit_with_retry("s", []) == []
        assert script.submits == []
        client.close()

    def test_bad_chunk_rejected(self, silent_port):
        client = _client(silent_port)
        with pytest.raises(ValueError, match="chunk"):
            client.submit_with_retry("s", _mods(2), chunk=0)
        client.close()
