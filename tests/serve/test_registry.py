"""Session registry: lifecycle, idle eviction, cycle attribution."""

import math

import pytest

from repro.graph.modifiers import EdgeInsert
from repro.serve.protocol import E_SESSION_EXISTS, E_UNKNOWN_SESSION
from repro.serve.registry import (
    SessionRegistry,
    build_graph,
    partition_sha256,
)
from repro.utils.errors import ServeError, StreamError

SPEC = {
    "generator": "circuit",
    "args": {"num_vertices": 120, "edge_ratio": 1.3, "seed": 7},
}


def _registry(tmp_path, **kwargs):
    return SessionRegistry(tmp_path / "data", **kwargs)


def _mods(n, nv=120, start=0):
    return [
        EdgeInsert(u=(start + i) % nv, v=(start + i * 3 + 1) % nv)
        for i in range(n)
    ]


class TestBuildGraph:
    def test_known_generator(self):
        csr = build_graph(SPEC)
        assert csr.num_vertices == 120

    def test_unknown_generator_typed(self):
        with pytest.raises(ServeError) as exc:
            build_graph({"generator": "nope", "args": {}})
        assert exc.value.code == "bad-request"

    def test_bad_args_typed(self):
        with pytest.raises(ServeError, match="rejected args"):
            build_graph({"generator": "circuit", "args": {"n": 5}})

    def test_non_dict_spec_typed(self):
        with pytest.raises(ServeError, match="must be an object"):
            build_graph([1, 2])


class TestLifecycle:
    def test_create_duplicate_rejected(self, tmp_path):
        registry = _registry(tmp_path)
        registry.create("t", "s", SPEC, k=2)
        with pytest.raises(ServeError) as exc:
            registry.create("t", "s", SPEC, k=2)
        assert exc.value.code == E_SESSION_EXISTS
        registry.close()

    def test_same_name_different_tenants_isolated(self, tmp_path):
        registry = _registry(tmp_path)
        a = registry.create("t1", "s", SPEC, k=2)
        b = registry.create("t2", "s", SPEC, k=2)
        assert a.session is not b.session
        assert a.journal_dir != b.journal_dir
        registry.close()

    def test_get_unknown_typed(self, tmp_path):
        registry = _registry(tmp_path)
        with pytest.raises(ServeError) as exc:
            registry.get("t", "missing")
        assert exc.value.code == E_UNKNOWN_SESSION

    def test_evict_then_attach_bit_identical(self, tmp_path):
        registry = _registry(tmp_path)
        entry = registry.create("t", "s", SPEC, k=2, seed=4)
        for mod in _mods(30):
            entry.session.submit(mod)
        entry.session.drain()
        before = partition_sha256(entry.session.partition)

        registry.evict("t", "s")
        assert not entry.live
        # The suspended object refuses further streaming calls.
        revived = registry.attach("t", "s")
        assert revived.live and revived.evictions == 1
        assert partition_sha256(revived.session.partition) == before

        # An evicted session with a queued (journaled) suffix recovers
        # that suffix too: same final state as never evicting.
        for mod in _mods(10, start=50):
            revived.session.submit(mod)
        registry.evict("t", "s")
        again = registry.attach("t", "s")
        again.session.drain()
        final_evicted = partition_sha256(again.session.partition)
        registry.close()

        other = _registry(tmp_path / "ref")
        ref = other.create("t", "s", SPEC, k=2, seed=4)
        for mod in _mods(30):
            ref.session.submit(mod)
        ref.session.drain()
        for mod in _mods(10, start=50):
            ref.session.submit(mod)
        ref.session.drain()
        assert partition_sha256(ref.session.partition) == final_evicted
        other.close()

    def test_suspended_session_object_rejects_use(self, tmp_path):
        registry = _registry(tmp_path)
        entry = registry.create("t", "s", SPEC, k=2)
        stale = entry.session
        registry.evict("t", "s")
        with pytest.raises(StreamError, match="suspended"):
            stale.submit(EdgeInsert(u=0, v=1))
        registry.close()


class TestIdleEviction:
    def test_sweep_evicts_only_idle_sessions(self, tmp_path):
        registry = _registry(tmp_path, idle_evict_after_ops=3)
        busy = registry.create("t", "busy", SPEC, k=2)
        idle = registry.create("t", "idle", SPEC, k=2)
        for _ in range(5):
            registry.touch(busy)
        evicted = registry.sweep_idle()
        assert [e.name for e in evicted] == ["idle"]
        assert busy.live and not idle.live
        registry.close()

    def test_disabled_by_default(self, tmp_path):
        registry = _registry(tmp_path)
        entry = registry.create("t", "s", SPEC, k=2)
        for _ in range(100):
            registry.touch(entry)
        assert registry.sweep_idle() == []
        registry.close()


class TestAttribution:
    def test_cycles_split_across_tenants_sum_to_worker_total(
        self, tmp_path
    ):
        registry = _registry(tmp_path, workers=1)
        entries = {
            name: registry.create(name, "s", SPEC, k=2, seed=i)
            for i, name in enumerate(("a", "b"))
        }
        for entry in entries.values():
            registry.settle_cycles(entry)
        for name, entry in entries.items():
            for mod in _mods(20):
                entry.session.submit(mod)
            entry.session.drain()
            registry.settle_cycles(entry)
        worker = registry.workers[0]
        assert set(worker.cycles_by_tenant) == {"a", "b"}
        assert all(c > 0 for c in worker.cycles_by_tenant.values())
        assert math.isclose(
            sum(worker.cycles_by_tenant.values()),
            worker.total_cycles,
            rel_tol=1e-9,
        )
        registry.close()

    def test_settle_is_idempotent(self, tmp_path):
        registry = _registry(tmp_path)
        entry = registry.create("t", "s", SPEC, k=2)
        first = registry.settle_cycles(entry)
        assert first > 0  # the initial full partition costs cycles
        assert registry.settle_cycles(entry) == 0.0
        registry.close()

    def test_round_robin_worker_assignment(self, tmp_path):
        registry = _registry(tmp_path, workers=2)
        workers = [
            registry.create("t", f"s{i}", SPEC, k=2).worker.index
            for i in range(4)
        ]
        assert workers == [0, 1, 0, 1]
        registry.close()
