"""Worker supervision: failover, degradation, watermark tightening."""

import math

import pytest

from repro.graph.modifiers import EdgeInsert
from repro.obs.metrics import MetricsRegistry
from repro.serve.registry import (
    SessionRegistry,
    build_graph,
    partition_sha256,
)
from repro.serve.shedding import LoadShedder, ShedPolicy
from repro.serve.supervision import WorkerSupervisor
from repro.utils.errors import ServeError

SPEC = {
    "generator": "circuit",
    "args": {"num_vertices": 120, "edge_ratio": 1.3, "seed": 7},
}


def _clean_mods(n, nv=120):
    """Insert-only edges absent from SPEC's graph: replay-exact cycle
    parity holds only for poison-free streams (a quarantined modifier
    is real work failover intentionally does not replay)."""
    graph = build_graph(SPEC)
    out, seen, candidate = [], set(), 0
    while len(out) < n:
        u = candidate % nv
        v = (u + 17 + candidate // nv) % nv
        candidate += 1
        key = (min(u, v), max(u, v))
        if u == v or key in seen or graph.has_edge(u, v):
            continue
        seen.add(key)
        out.append(EdgeInsert(u=u, v=v))
    return out


@pytest.fixture
def pool(tmp_path):
    registry = SessionRegistry(tmp_path / "data", workers=3)
    metrics = MetricsRegistry()
    shedder = LoadShedder(ShedPolicy(high_watermark=90), metrics)
    supervisor = WorkerSupervisor(registry, metrics, shedder=shedder)
    yield registry, metrics, shedder, supervisor
    registry.close()


class TestHealth:
    def test_healthy_pool_status(self, pool):
        _, metrics, _, supervisor = pool
        assert not supervisor.degraded
        assert supervisor.status() == {
            "degraded": False,
            "workers_alive": 3,
            "workers_dead": 0,
            "dead": [],
        }
        snapshot = metrics.as_dict()
        assert snapshot["serve_workers_alive"] == 3
        assert snapshot["serve_workers_dead"] == 0

    def test_fail_worker_out_of_range_typed(self, pool):
        _, _, _, supervisor = pool
        with pytest.raises(ServeError) as exc:
            supervisor.fail_worker(7, "nope")
        assert exc.value.code == "worker-failed"

    def test_sweep_noop_while_healthy(self, pool):
        _, _, _, supervisor = pool
        assert supervisor.sweep() == []


class TestFailover:
    def test_sessions_restored_onto_survivor(self, pool):
        registry, metrics, _, supervisor = pool
        entry = registry.create("t", "s", SPEC, k=3, seed=4)
        for mod in _clean_mods(25):
            entry.session.submit(mod)
        entry.session.drain()
        registry.settle_cycles(entry)
        assert entry.quarantined == 0
        victim = entry.worker
        before = partition_sha256(entry.session.partition)
        lifetime = entry.lifetime_cycles

        restored = supervisor.fail_worker(victim.index, "injected")

        assert restored == [entry]
        assert supervisor.degraded
        assert entry.worker is not victim and entry.worker.alive
        assert entry.recoveries == 1
        # Bit-identical state on the survivor.
        assert partition_sha256(entry.session.partition) == before
        snapshot = metrics.as_dict()
        assert snapshot["serve_worker_failures_total"] == 1
        assert snapshot["serve_recovery_sessions_total"] == 1
        replay = snapshot["serve_recovery_replay_cycles_total"]
        # Unlike a process restart (where the dead pool's counters
        # vanish), in-process failover replays the journal on a live
        # pool: the replay is extra real work, charged on top of the
        # session's prior lifetime and all of it on the survivor.
        assert replay > 0
        assert math.isclose(
            entry.lifetime_cycles, lifetime + replay, rel_tol=1e-6
        )

    def test_fail_worker_idempotent(self, pool):
        registry, metrics, _, supervisor = pool
        entry = registry.create("t", "s", SPEC, k=2)
        index = entry.worker.index
        first = supervisor.fail_worker(index, "one")
        assert first == [entry]
        # A second declaration (and any later sweep) must not re-drain.
        assert supervisor.fail_worker(index, "two") == []
        assert supervisor.sweep() == []
        assert metrics.as_dict()["serve_worker_failures_total"] == 1
        assert entry.recoveries == 1

    def test_dead_workers_skipped_for_new_sessions(self, pool):
        registry, _, _, supervisor = pool
        supervisor.fail_worker(0, "dead")
        for i in range(4):
            entry = registry.create("t", f"s{i}", SPEC, k=2)
            assert entry.worker.alive

    def test_last_worker_unrecoverable(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=1)
        metrics = MetricsRegistry()
        supervisor = WorkerSupervisor(registry, metrics)
        registry.create("t", "s", SPEC, k=2)
        with pytest.raises(ServeError, match="every device worker"):
            supervisor.fail_worker(0, "the only one")

    def test_evicted_session_not_revived_by_failover(self, pool):
        registry, _, _, supervisor = pool
        entry = registry.create("t", "s", SPEC, k=2)
        victim = entry.worker.index
        registry.evict("t", "s")
        restored = supervisor.fail_worker(victim, "dead")
        # Evicted sessions hold no device state to restore; attach
        # revives them lazily, onto an alive worker.
        assert restored == []
        revived = registry.attach("t", "s")
        assert revived.worker.alive


class TestBrownout:
    def test_watermarks_tighten_with_pool(self, pool):
        _, metrics, shedder, supervisor = pool
        assert shedder.effective_high_watermark == 90
        supervisor.fail_worker(0, "one down")
        assert shedder.capacity_fraction == pytest.approx(2 / 3)
        assert shedder.effective_high_watermark == 60
        assert (
            metrics.as_dict()["serve_capacity_fraction"]
            == pytest.approx(2 / 3)
        )

    def test_shedding_starts_earlier_when_degraded(self, pool):
        _, _, shedder, supervisor = pool
        supervisor.fail_worker(0, "down")
        shedder.observe_backlog(60)
        assert shedder.shedding  # would need 90 on a healthy pool
