"""Registry crash recovery: manifest replay re-materializes sessions."""

import math

import pytest

from repro.graph.modifiers import EdgeInsert
from repro.serve.registry import (
    SessionRegistry,
    build_graph,
    partition_sha256,
)
from repro.serve.wal import ServeWAL

SPEC = {
    "generator": "circuit",
    "args": {"num_vertices": 120, "edge_ratio": 1.3, "seed": 7},
}
SPEC_B = {
    "generator": "community",
    "args": {"num_vertices": 90, "edges_per_vertex": 4, "seed": 3},
}


def _clean_mods(n, spec=SPEC, start=0):
    """Insert-only edges absent from ``spec``'s graph (no poison):
    the exact cycle-parity contract holds only for clean streams."""
    nv = spec["args"]["num_vertices"]
    graph = build_graph(spec)
    out, seen, candidate = [], set(), start
    while len(out) < n:
        u = candidate % nv
        v = (u + 17 + candidate // nv) % nv
        candidate += 1
        key = (min(u, v), max(u, v))
        if u == v or key in seen or graph.has_edge(u, v):
            continue
        seen.add(key)
        out.append(EdgeInsert(u=u, v=v))
    return out


def _fingerprint(entry):
    return (
        partition_sha256(entry.session.partition),
        entry.session.queue.next_seq,
        entry.session.applied_seq,
    )


class TestRecoverEntries:
    def test_round_trip_digest_and_cycles(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=2)
        entry = registry.create("t", "s", SPEC, k=3, seed=4)
        stream = _clean_mods(40)
        for mod in stream[:30]:
            entry.session.submit(mod)
        entry.session.drain()
        entry.session.checkpoint()
        # More traffic after the checkpoint: recovery must replay it.
        for mod in stream[30:]:
            entry.session.submit(mod)
        entry.session.drain()
        registry.settle_cycles(entry)
        assert entry.quarantined == 0
        expected = _fingerprint(entry)
        lifetime = entry.lifetime_cycles
        # No close(): the process "dies" with handles open.

        fresh = SessionRegistry(tmp_path / "d", workers=2)
        recovered = fresh.recover_entries()
        assert [e.key for e in recovered] == [("t", "s")]
        got = fresh.get("t", "s")
        assert got.recoveries == 1
        assert _fingerprint(got) == expected
        assert math.isclose(
            got.lifetime_cycles, lifetime, rel_tol=1e-6
        )

    def test_worker_assignment_reproduced(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=3)
        original = {}
        for i in range(5):
            entry = registry.create("t", f"s{i}", SPEC, k=2)
            original[entry.name] = entry.worker.index

        fresh = SessionRegistry(tmp_path / "d", workers=3)
        fresh.recover_entries()
        for name, index in original.items():
            assert fresh.get("t", name).worker.index == index

    def test_multi_tenant_attribution_restored(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=2)
        for tenant, spec in (("acme", SPEC), ("bravo", SPEC_B)):
            entry = registry.create(tenant, "s", spec, k=3)
            for mod in _clean_mods(20, spec=spec):
                entry.session.submit(mod)
            entry.session.drain()
            registry.settle_cycles(entry)
        charged = {
            tenant: sum(
                w.cycles_by_tenant.get(tenant, 0.0)
                for w in registry.workers
            )
            for tenant in ("acme", "bravo")
        }

        fresh = SessionRegistry(tmp_path / "d", workers=2)
        fresh.recover_entries()
        for tenant, expected in charged.items():
            got = sum(
                w.cycles_by_tenant.get(tenant, 0.0)
                for w in fresh.workers
            )
            assert math.isclose(got, expected, rel_tol=1e-6)

    def test_create_without_checkpoint_recreated(self, tmp_path):
        # Crash between the WAL append and session construction: the
        # manifest names a session whose journal dir never appeared.
        registry = SessionRegistry(tmp_path / "d", workers=1)
        params = {"graph": SPEC, "k": 3, "seed": 4}
        registry.wal.append_create("t", "ghost", params)

        fresh = SessionRegistry(tmp_path / "d", workers=1)
        recovered = fresh.recover_entries()
        assert [e.key for e in recovered] == [("t", "ghost")]
        ghost = fresh.get("t", "ghost")
        assert ghost.live and ghost.recoveries == 0
        # Identical to the session the acked create would have made.
        reference = SessionRegistry(tmp_path / "ref", workers=1)
        ref = reference.create("t", "ghost", SPEC, k=3, seed=4)
        assert _fingerprint(ghost) == _fingerprint(ref)
        reference.close()

    def test_existing_entries_skipped(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=1)
        registry.create("t", "s", SPEC, k=2)
        registry.close()

        fresh = SessionRegistry(tmp_path / "d", workers=1)
        fresh.create("t", "s", SPEC, k=2)
        assert fresh.recover_entries() == []

    def test_recovery_idempotent(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=2)
        registry.create("t", "s", SPEC, k=2)

        fresh = SessionRegistry(tmp_path / "d", workers=2)
        assert len(fresh.recover_entries()) == 1
        assert fresh.recover_entries() == []
        assert len(fresh) == 1

    def test_clean_shutdown_compacts_manifest(self, tmp_path):
        registry = SessionRegistry(tmp_path / "d", workers=1)
        entry = registry.create("t", "s", SPEC, k=2)
        for mod in _clean_mods(8):
            entry.session.submit(mod)
        entry.session.drain()
        entry.session.checkpoint()
        entry.session.checkpoint()
        registry.close()
        # close() compacts: one create, one settle.
        state = ServeWAL(tmp_path / "d").load()
        assert [n for _, n, _ in state.creates] == ["s"]
        assert ("t", "s") in state.settled_cycles
