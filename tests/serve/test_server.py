"""End-to-end server tests: typed rejects, shedding safety, metrics."""

import urllib.request

import pytest

from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    ShedPolicy,
    TenantQuota,
)
from repro.graph.modifiers import EdgeInsert
from repro.utils.errors import ServeError

SPEC = {
    "generator": "circuit",
    "args": {"num_vertices": 150, "edge_ratio": 1.3, "seed": 7},
}


def _mods(n, nv=150, start=0):
    return [
        EdgeInsert(u=(start + i) % nv, v=(start + i * 3 + 1) % nv)
        for i in range(n)
    ]


@pytest.fixture
def server():
    with ServerThread(ServerConfig(workers=1)) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServeClient(
        "127.0.0.1", server.tcp_port, tenant="t"
    ) as c:
        yield c


class TestOps:
    def test_hello_reports_protocol(self, client):
        response = client.hello()
        assert response["protocol"] == 1
        assert response["workers"] == 1

    def test_unknown_op_typed(self, client):
        with pytest.raises(ServeError) as exc:
            client.call("frobnicate")
        assert exc.value.code == "unknown-op"

    def test_create_submit_flush_digest(self, client):
        client.create("s", SPEC, k=3, seed=2)
        submitted = client.submit("s", _mods(20))
        assert submitted["accepted"] == 20
        flushed = client.flush("s")
        assert flushed["queue_depth"] == 0
        digest = client.digest("s")
        assert len(digest["sha256"]) == 64
        assert digest["applied_seq"] == 19

    def test_submit_unknown_session_typed(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit("ghost", _mods(1))
        assert exc.value.code == "unknown-session"

    def test_malformed_requests_typed(self, client):
        with pytest.raises(ServeError) as exc:
            client.call("create", session="s", graph=SPEC, k=1)
        assert exc.value.code == "bad-request"
        with pytest.raises(ServeError) as exc:
            client.call("submit", session="s", modifiers=[])
        assert exc.value.code == "bad-request"
        with pytest.raises(ServeError) as exc:
            client.call(
                "submit",
                session="s",
                modifiers=[{"t": "??", "u": 1}],
            )
        assert exc.value.code == "bad-request"

    def test_errors_do_not_poison_the_connection(self, client):
        with pytest.raises(ServeError):
            client.call("frobnicate")
        assert client.hello()["ok"] is True


class TestQuotaRejects:
    def test_session_quota_carries_typed_code(self):
        config = ServerConfig(
            default_quota=TenantQuota(max_sessions=1)
        )
        with ServerThread(config) as thread:
            with ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="t"
            ) as c:
                c.create("s0", SPEC, k=2)
                with pytest.raises(ServeError) as exc:
                    c.create("s1", SPEC, k=2)
                assert exc.value.code == "quota-sessions"
                assert exc.value.retryable is False
                # Evicting the live session frees the quota slot.
                c.evict("s0")
                c.create("s1", SPEC, k=2)

    def test_queue_quota_carries_typed_code(self):
        config = ServerConfig(
            default_quota=TenantQuota(max_queued_modifiers=8),
        )
        with ServerThread(config) as thread:
            with ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="t"
            ) as c:
                # A large target keeps modifiers queued (no size
                # trigger), so the quota check sees real depth.
                c.create("s", SPEC, k=2, target_batch_size=64)
                c.submit("s", _mods(6))
                with pytest.raises(ServeError) as exc:
                    c.submit("s", _mods(6, start=20))
                assert exc.value.code == "quota-queue"
                assert exc.value.retryable is True
                # Draining clears the quota; the retried submit lands.
                c.flush("s")
                c.submit("s", _mods(6, start=20))

    def test_quotas_are_per_tenant(self):
        config = ServerConfig(
            default_quota=TenantQuota(max_sessions=1)
        )
        with ServerThread(config) as thread:
            with ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="a"
            ) as a, ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="b"
            ) as b:
                a.create("s", SPEC, k=2)
                b.create("s", SPEC, k=2)  # b's quota, not a's


class TestShedding:
    def _overloaded(self):
        return ServerThread(
            ServerConfig(
                shed=ShedPolicy(high_watermark=8, low_watermark=0),
            )
        )

    def test_shed_is_typed_and_state_safe(self):
        with self._overloaded() as thread:
            with ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="t"
            ) as c:
                c.create("s", SPEC, k=2, target_batch_size=64)
                c.submit("s", _mods(10))
                before = c.digest("s")
                with pytest.raises(ServeError) as exc:
                    c.submit("s", _mods(5, start=30))
                assert exc.value.code == "shed-overload"
                assert exc.value.retryable is True
                # The shed request touched nothing: same digest, same
                # applied sequence, same queue depth.
                after = c.digest("s")
                assert after["sha256"] == before["sha256"]
                assert after["applied_seq"] == before["applied_seq"]

    def test_resubmit_after_shed_converges(self):
        mods = _mods(30)

        def run_once():
            with self._overloaded() as thread:
                with ServeClient(
                    "127.0.0.1", thread.tcp_port, tenant="t"
                ) as c:
                    c.create(
                        "s", SPEC, k=2, seed=5, target_batch_size=64
                    )
                    responses = c.submit_with_retry(
                        "s", mods, chunk=5
                    )
                    accepted = sum(r["accepted"] for r in responses)
                    c.flush("s")
                    digest = c.digest("s")["sha256"]
                    sheds = c.stats()["server_metrics"][
                        "serve_shed_total"
                    ]
                    return accepted, digest, sheds

        first = run_once()
        second = run_once()
        # Every modifier landed despite sheds, sheds really happened,
        # and the shed/retry dance is deterministic: two identical
        # overload runs converge on the same partition.
        assert first[0] == second[0] == 30
        assert first[2] > 0
        assert first[1] == second[1]

    def test_drains_always_pass_while_shedding(self):
        with self._overloaded() as thread:
            with ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="t"
            ) as c:
                c.create("s", SPEC, k=2, target_batch_size=64)
                c.submit("s", _mods(10))
                with pytest.raises(ServeError):
                    c.submit("s", _mods(2, start=40))
                # flush/checkpoint/evict are never shed.
                c.checkpoint("s")
                flushed = c.flush("s")
                assert flushed["queue_depth"] == 0
                c.evict("s")


class TestEvictReattach:
    def test_round_trip_bit_identical(self, client):
        client.create("s", SPEC, k=3, seed=8)
        client.submit("s", _mods(25))
        client.flush("s")
        before = client.digest("s")["sha256"]
        assert client.evict("s")["evicted"] is True
        # Any op on the evicted session transparently re-attaches.
        after = client.digest("s")["sha256"]
        assert after == before
        assert client.attach("s")["evictions"] == 1

    def test_idle_eviction_checkpoints_on_evict(self):
        config = ServerConfig(idle_evict_after_ops=3)
        with ServerThread(config) as thread:
            with ServeClient(
                "127.0.0.1", thread.tcp_port, tenant="t"
            ) as c:
                c.create("idle", SPEC, k=2, seed=1)
                c.submit("idle", _mods(10))
                c.flush("idle")
                before = c.digest("idle")["sha256"]
                c.create("busy", SPEC, k=2, seed=2)
                for i in range(4):
                    c.attach("busy")
                info = c.call("stats")
                # 'idle' went idle past the horizon and was swept.
                assert c.attach("idle")["evictions"] >= 1
                assert c.digest("idle")["sha256"] == before
                assert info["op_counter"] > 0


class TestMetricsEndpoint:
    def test_scrape_has_tenant_labels_and_version(self, server):
        with ServeClient(
            "127.0.0.1", server.tcp_port, tenant="alpha"
        ) as a, ServeClient(
            "127.0.0.1", server.tcp_port, tenant="beta"
        ) as b:
            a.create("s", SPEC, k=2)
            b.create("s", SPEC, k=2)
            a.submit("s", _mods(5))
        response = urllib.request.urlopen(
            f"http://127.0.0.1:{server.http_port}/metrics", timeout=30
        )
        assert "version=0.0.4" in response.headers["Content-Type"]
        body = response.read().decode()
        assert (
            'serve_tenant_requests_total{tenant="alpha"}' in body
        )
        assert 'serve_tenant_requests_total{tenant="beta"}' in body
        # Stream-layer metrics are merged per tenant under the label.
        assert 'stream_ingested_total{tenant="alpha"}' in body
        # Server-level series are unlabeled.
        assert "\nserve_requests_total " in body

    def test_healthz_and_404(self, server):
        ok = urllib.request.urlopen(
            f"http://127.0.0.1:{server.http_port}/healthz", timeout=30
        )
        assert ok.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.http_port}/nope", timeout=30
            )
        assert exc.value.code == 404
