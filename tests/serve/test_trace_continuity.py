"""Trace continuity across restarts and failover.

A session's *originating* trace id (the ``client.create`` trace) is
persisted in the serve WAL, so every journal replay the session ever
undergoes — boot recovery after a crash, failover off a dead worker —
re-attaches to that trace.  Querying the create's trace id therefore
shows the session's whole afterlife.
"""

import pytest

from repro.graph.modifiers import EdgeInsert
from repro.obs.distrib import TraceRecorder, make_trace_id
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.serve.registry import SessionRegistry, build_graph
from repro.serve.wal import ServeWAL

SPEC = {
    "generator": "circuit",
    "args": {"num_vertices": 96, "edge_ratio": 1.3, "seed": 11},
}


def _clean_mods(n, spec=SPEC, start=0):
    """Insert-only edges absent from ``spec``'s graph, so replay
    cost accounting is exact (no poisoned modifiers)."""
    nv = spec["args"]["num_vertices"]
    graph = build_graph(spec)
    out, seen, candidate = [], set(), start
    while len(out) < n:
        u = candidate % nv
        v = (u + 17 + candidate // nv) % nv
        candidate += 1
        key = (min(u, v), max(u, v))
        if u == v or key in seen or graph.has_edge(u, v):
            continue
        seen.add(key)
        out.append(EdgeInsert(u=u, v=v))
    return out


def _create_trace_ids(recorder):
    """Trace id of every ``client.create`` root span, by session."""
    return {
        event.trace["id"]
        for event in recorder.events
        if event.name == "client.create"
    }


def _replay_spans(recorder, name):
    return [e for e in recorder.events if e.name == name]


class TestRecoveryReplayTrace:
    def test_boot_recovery_reattaches_origin_trace(self, tmp_path):
        data_dir = str(tmp_path / "d")
        first = TraceRecorder(session="run-1")
        with ServerThread(
            ServerConfig(
                workers=2, data_dir=data_dir, trace_recorder=first
            )
        ) as thread:
            with ServeClient(
                "127.0.0.1",
                thread.tcp_port,
                tenant="acme",
                trace_recorder=first,
            ) as client:
                client.create("s", SPEC, k=3, seed=4)
                client.submit("s", _clean_mods(12))
                client.flush("s")
        origins = _create_trace_ids(first)
        assert len(origins) == 1

        second = TraceRecorder(session="run-2")
        with ServerThread(
            ServerConfig(
                workers=2,
                data_dir=data_dir,
                recover=True,
                trace_recorder=second,
            )
        ):
            pass
        replays = _replay_spans(second, "serve.recover.replay")
        assert len(replays) == 1
        (replay,) = replays
        # The replay joins the create's trace, on a fresh recorder
        # that never saw the original run.
        assert replay.trace["id"] in origins
        assert replay.trace["tenant"] == "acme"
        assert replay.trace["op"] == "replay"
        assert "worker" in replay.trace

    def test_recovered_session_groups_with_its_create(self, tmp_path):
        """With ONE recorder across both runs, traces() puts the
        create and its recovery replay in the same group."""
        data_dir = str(tmp_path / "d")
        recorder = TraceRecorder(session="both-runs")
        with ServerThread(
            ServerConfig(
                workers=1, data_dir=data_dir, trace_recorder=recorder
            )
        ) as thread:
            with ServeClient(
                "127.0.0.1",
                thread.tcp_port,
                tenant="acme",
                trace_recorder=recorder,
            ) as client:
                client.create("s", SPEC, k=2, seed=9)
                client.submit("s", _clean_mods(8))
                client.flush("s")
        with ServerThread(
            ServerConfig(
                workers=1,
                data_dir=data_dir,
                recover=True,
                trace_recorder=recorder,
            )
        ):
            pass
        (origin,) = _create_trace_ids(recorder)
        group = recorder.traces()[origin]
        names = [event.name for event in group]
        assert "client.create" in names
        assert "serve.recover.replay" in names


class TestFailoverReplayTrace:
    def test_failover_replays_under_origin_traces(self, tmp_path):
        recorder = TraceRecorder(session="failover")
        config = ServerConfig(
            workers=2,
            data_dir=str(tmp_path / "d"),
            enable_chaos=True,
            trace_recorder=recorder,
        )
        with ServerThread(config) as thread:
            with ServeClient(
                "127.0.0.1",
                thread.tcp_port,
                tenant="acme",
                trace_recorder=recorder,
            ) as client:
                # Two sessions; with two workers at least one lives
                # on worker 0.
                client.create("a", SPEC, k=3, seed=1)
                client.create("b", SPEC, k=3, seed=2)
                client.submit("a", _clean_mods(10))
                client.submit("b", _clean_mods(10, start=40))
                client.flush("a")
                client.flush("b")
                before_a = client.digest("a")["sha256"]
                before_b = client.digest("b")["sha256"]
                client.kill_worker(0, reason="trace continuity")
                # Failover is synchronous with the kill ack: the
                # replay spans already exist.
                replays = _replay_spans(
                    recorder, "serve.failover.replay"
                )
                origins = _create_trace_ids(recorder)
                assert len(replays) >= 1
                assert all(
                    r.trace["id"] in origins for r in replays
                )
                assert all(
                    r.trace["op"] == "replay" for r in replays
                )
                # State survives the failover bit-exactly.
                assert client.digest("a")["sha256"] == before_a
                assert client.digest("b")["sha256"] == before_b


class TestOriginTracePersistence:
    def test_wal_compaction_keeps_origin_trace(self, tmp_path):
        wal = ServeWAL(tmp_path)
        wal.append_create(
            "acme", "s", {"k": 3}, trace="acme/create#0"
        )
        wal.append_create("acme", "untr", {"k": 2})
        wal.compact()
        state = ServeWAL(tmp_path).load()
        assert state.origin_traces[("acme", "s")] == "acme/create#0"
        assert ("acme", "untr") not in state.origin_traces

    def test_untraced_create_falls_back_to_counter_zero(
        self, tmp_path
    ):
        """Sessions created without a client trace (pre-tracing WALs,
        untraced clients) still replay under a deterministic id."""
        data_dir = tmp_path / "d"
        registry = SessionRegistry(data_dir, workers=1)
        entry = registry.create("acme", "s", SPEC, k=2, seed=3)
        for mod in _clean_mods(6):
            entry.session.submit(mod)
        entry.session.drain()
        registry.settle_cycles(entry)
        assert entry.origin_trace is None

        recorder = TraceRecorder(session="fallback")
        with ServerThread(
            ServerConfig(
                workers=1,
                data_dir=str(data_dir),
                recover=True,
                trace_recorder=recorder,
            )
        ):
            pass
        (replay,) = _replay_spans(recorder, "serve.recover.replay")
        assert replay.trace["id"] == make_trace_id("acme", "s", 0)
