"""Crash matrix: kill the server around every durable write.

Property: for each serve op, a crash at {pre-WAL, post-WAL/pre-ack,
post-ack} recovers to *either* the pre-op state or the post-op state —
never a third value.  The durable prefix on disk at the kill point is
captured with a directory snapshot (exactly what a dead process leaves
behind), then recovered by a fresh registry.

The matrix crosses the kill points with {submit, flush, evict}: each
op's first durable append is instrumented so snapshots land immediately
before and after the write-ahead record, plus after the op acks.
"""

import shutil
from pathlib import Path

import pytest

from repro.graph.modifiers import EdgeInsert
from repro.obs.distrib import load_flight, validate_flight
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.serve.registry import SessionRegistry, partition_sha256
from repro.utils.errors import ServeError
from repro.utils.faultinject import ServeFaultPlan

SPEC = {
    "generator": "circuit",
    "args": {"num_vertices": 120, "edge_ratio": 1.3, "seed": 7},
}


def _mods(n, nv=120, start=0):
    return [
        EdgeInsert(u=(start + i) % nv, v=(start + i * 3 + 1) % nv)
        for i in range(n)
    ]


def _fingerprint(entry):
    return (
        partition_sha256(entry.session.partition),
        entry.session.queue.next_seq,
        entry.session.applied_seq,
    )


def _recover_fingerprint(snapshot_dir):
    registry = SessionRegistry(snapshot_dir, workers=1)
    registry.recover_entries()
    return _fingerprint(registry.get("t", "s"))


def _instrument_first(obj, method_name, before, after):
    """Snapshot around the first call of ``obj.method_name``."""
    original = getattr(obj, method_name)
    fired = []

    def wrapper(*args, **kwargs):
        if fired:
            return original(*args, **kwargs)
        fired.append(True)
        before()
        result = original(*args, **kwargs)
        after()
        return result

    setattr(obj, method_name, wrapper)
    return fired


#: op name -> (journal method carrying its first durable write, action).
CASES = {
    "submit": (
        "log_modifier",
        lambda entry: entry.session.submit(
            EdgeInsert(u=3, v=77)
        ),
    ),
    "flush": (
        "log_flush",
        lambda entry: entry.session.drain(),
    ),
    "evict": (
        "write_checkpoint",
        None,  # registry-level op, filled in per test
    ),
}


class TestCrashMatrix:
    @pytest.mark.parametrize("op", sorted(CASES))
    def test_recovery_is_pre_or_post_op(self, tmp_path, op):
        live = tmp_path / "live"
        registry = SessionRegistry(live, workers=1)
        entry = registry.create("t", "s", SPEC, k=3, seed=4)
        # Durable history first: a checkpoint plus a journaled,
        # partially-drained suffix, so recovery is never trivial.
        for mod in _mods(12):
            entry.session.submit(mod)
        entry.session.drain()
        entry.session.checkpoint()
        for mod in _mods(5, start=12):
            entry.session.submit(mod)
        registry.settle_cycles(entry)

        snapshots = {
            "pre": tmp_path / "pre",
            "pre_wal": tmp_path / "pre_wal",
            "post_wal": tmp_path / "post_wal",
            "post": tmp_path / "post",
        }
        shutil.copytree(live, snapshots["pre"])

        method, action = CASES[op]
        fired = _instrument_first(
            entry.session.journal,
            method,
            lambda: shutil.copytree(live, snapshots["pre_wal"]),
            lambda: shutil.copytree(live, snapshots["post_wal"]),
        )
        if op == "evict":
            registry.evict("t", "s")
        else:
            action(entry)
        assert fired, f"{op} never reached its durable write"
        shutil.copytree(live, snapshots["post"])

        pre_fp = _recover_fingerprint(snapshots["pre"])
        post_fp = _recover_fingerprint(snapshots["post"])
        legal = {pre_fp, post_fp}

        # Killed before the WAL write: the op never happened.
        assert _recover_fingerprint(snapshots["pre_wal"]) == pre_fp
        # Killed between the WAL write and the ack: either outcome is
        # legal — but nothing in between, and nothing else.
        assert _recover_fingerprint(snapshots["post_wal"]) in legal
        # Killed after the ack: the op sticks.
        assert (
            _recover_fingerprint(snapshots["post"]) == post_fp
        )

    def test_post_ack_submit_survives(self, tmp_path):
        # The acked write is durable: recovery must include it.
        live = tmp_path / "live"
        registry = SessionRegistry(live, workers=1)
        entry = registry.create("t", "s", SPEC, k=2, seed=1)
        pre_seq = entry.session.queue.next_seq
        entry.session.submit(EdgeInsert(u=1, v=50))
        snapshot = tmp_path / "snap"
        shutil.copytree(live, snapshot)

        fresh = SessionRegistry(snapshot, workers=1)
        fresh.recover_entries()
        assert (
            fresh.get("t", "s").session.queue.next_seq == pre_seq + 1
        )


def _dump_reasons(data_dir):
    """reason -> dump path for every flight artifact in ``data_dir``,
    each one validated clean first."""
    reasons = {}
    for path in sorted(Path(data_dir).glob("flightrec-*.jsonl")):
        assert validate_flight(path) == []
        header, _events = load_flight(path)
        reasons[header["reason"]] = path
    return reasons


class TestFlightDumpPerFault:
    """Every injected fault leaves a black box on disk.

    Crosses the crash matrix into the live server: each armed
    :class:`ServeFaultPlan` kind must trigger a flight-recorder dump
    that validates clean and records the fault itself."""

    def _run(self, tmp_path, plan, expect_server_death=False):
        data_dir = str(tmp_path / "d")
        config = ServerConfig(
            workers=2,
            data_dir=data_dir,
            enable_chaos=True,
            fault_plan=plan,
            flight_capacity=64,
        )
        with ServerThread(config) as thread:
            with ServeClient(
                "127.0.0.1",
                thread.tcp_port,
                tenant="t",
                sleep=lambda _d: None,
            ) as client:
                client.create("s", SPEC, k=2, seed=3)
                try:
                    client.submit_with_retry("s", _mods(8))
                    client.flush("s", drain=True)
                    died = False
                except (ServeError, OSError):
                    died = True
        assert died == expect_server_death
        assert not plan.armed, "armed fault never fired"
        return data_dir

    @pytest.mark.parametrize(
        "kind",
        ["torn_response", "drop_connection", "delay_response"],
    )
    def test_transport_fault_dumps(self, tmp_path, kind):
        plan = ServeFaultPlan(seed=7)
        plan.arm(kind, op="submit", delay=0.01)
        data_dir = self._run(tmp_path, plan)
        reasons = _dump_reasons(data_dir)
        path = reasons[f"fault-{kind}"]
        _header, events = load_flight(path)
        faults = [e for e in events if e["kind"] == "fault"]
        assert any(
            e["fault"] == kind and e["op"] == "submit"
            for e in faults
        )
        # The ring kept the request history leading up to the fault.
        assert any(e["kind"] == "request" for e in events)

    def test_worker_abort_dumps(self, tmp_path):
        plan = ServeFaultPlan(seed=7)
        plan.arm("worker_abort", op="submit")
        data_dir = self._run(tmp_path, plan)
        reasons = _dump_reasons(data_dir)
        _header, events = load_flight(
            reasons["fault-worker_abort"]
        )
        assert any(
            e["kind"] == "fault" and e["stage"] == "execute"
            for e in events
        )

    def test_crash_after_wal_dumps_with_crash_reason(self, tmp_path):
        plan = ServeFaultPlan(seed=7)
        plan.arm("crash_after_wal", op="submit")
        data_dir = self._run(
            tmp_path, plan, expect_server_death=True
        )
        reasons = _dump_reasons(data_dir)
        _header, events = load_flight(reasons["crash"])
        kinds = [e["kind"] for e in events]
        # The fault event rings first, then the crash marker.
        assert "fault" in kinds and "crash" in kinds
        assert kinds.index("fault") < kinds.index("crash")

    def test_no_faults_no_dumps(self, tmp_path):
        data_dir = self._run(tmp_path, ServeFaultPlan(seed=7))
        assert _dump_reasons(data_dir) == {}
