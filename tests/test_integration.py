"""Cross-module integration tests.

Each test threads several subsystems together the way a downstream user
would: checkpointing mid-experiment, profiling an adaptive session,
analyzing an evolving graph, exporting and reloading through file
formats.
"""

import numpy as np
import pytest

from repro import AdaptiveIGKway, GKwayDagger, IGKway, PartitionConfig
from repro.core.serialize import load_partitioner, save_partitioner
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import (
    HostGraph,
    circuit_graph,
    graph_summary,
    read_metis,
    write_metis,
)
from repro.gpusim import GpuContext
from repro.partition import cut_size_csr


class TestCheckpointMidExperiment:
    def test_resume_produces_same_results(self, tmp_path):
        csr = circuit_graph(400, 1.4, seed=1)
        trace = generate_trace(
            csr,
            TraceConfig(iterations=6, modifiers_per_iteration=15, seed=2),
        )
        # Reference: run straight through.
        straight = IGKway(csr, PartitionConfig(k=2, seed=1))
        straight.full_partition()
        for batch in trace:
            straight.apply(batch)

        # Checkpointed: save after 3 iterations, reload, continue.
        resumed = IGKway(csr, PartitionConfig(k=2, seed=1))
        resumed.full_partition()
        for batch in trace[:3]:
            resumed.apply(batch)
        save_partitioner(resumed, tmp_path / "mid.npz")
        revived = load_partitioner(tmp_path / "mid.npz")
        for batch in trace[3:]:
            revived.apply(batch)
        assert np.array_equal(straight.partition, revived.partition)
        assert straight.cut_size() == revived.cut_size()


class TestProfiledAdaptiveSession:
    def test_trace_covers_fallback_kernels(self):
        csr = circuit_graph(500, 1.4, seed=3)
        ctx = GpuContext()
        ctx.ledger.enable_trace()
        adaptive = AdaptiveIGKway(
            csr,
            PartitionConfig(k=2, seed=3),
            ctx=ctx,
            batch_threshold=0.02,
        )
        adaptive.full_partition()
        trace = generate_trace(
            csr,
            TraceConfig(iterations=2, modifiers_per_iteration=20, seed=4),
        )
        for batch in trace:
            adaptive.apply(batch)
        assert adaptive.fallbacks_taken >= 1
        names = {r.name for r in ctx.ledger.kernel_trace}
        # Incremental kernels and FGP kernels both appear.
        assert "apply-modifiers" in names
        assert "uf-match" in names
        sections = {r.section for r in ctx.ledger.kernel_trace}
        assert {"modification", "partitioning"} <= sections


class TestAnalysisOnEvolvingGraph:
    def test_structure_class_stable_under_modification(self):
        csr = circuit_graph(800, 1.4, seed=5)
        ig = IGKway(csr, PartitionConfig(k=2, seed=5))
        ig.full_partition()
        before = graph_summary(csr)
        trace = generate_trace(
            csr,
            TraceConfig(iterations=5, modifiers_per_iteration=30, seed=6),
        )
        for batch in trace:
            ig.apply(batch)
        evolved, _ = ig.graph.to_csr()
        after = graph_summary(evolved)
        assert before["structure_class"] == "circuit-like"
        # Light modification keeps the class (the Figure 8 small-batch
        # regime where incremental refinement stays effective).
        assert after["structure_class"] == before["structure_class"]
        assert abs(
            after["edge_vertex_ratio"] - before["edge_vertex_ratio"]
        ) < 0.3


class TestFileRoundtripIntoPartitioner:
    def test_metis_file_through_both_systems(self, tmp_path):
        csr = circuit_graph(400, 1.4, seed=7)
        path = tmp_path / "g.graph"
        write_metis(csr, path)
        loaded = read_metis(path)
        config = PartitionConfig(k=4, seed=7)
        ig = IGKway(loaded, config)
        bl = GKwayDagger(loaded, config)
        ig_report = ig.full_partition()
        bl_report = bl.full_partition()
        # Identical input + identical config => identical FGP.
        assert ig_report.cut == bl_report.cut
        trace = generate_trace(
            loaded,
            TraceConfig(iterations=3, modifiers_per_iteration=10, seed=8),
        )
        for batch in trace:
            ig.apply(batch)
            bl.apply(batch)
        # Both track the same evolving graph.
        host = HostGraph.from_csr(loaded)
        for batch in trace:
            host.apply_batch(batch)
        ig_host = ig.graph.to_host_graph()
        for u in range(host.num_vertex_slots):
            assert ig_host.adj[u] == host.adj[u]
        assert bl.host.adj == host.adj


class TestCostModelConsistency:
    def test_section_times_sum_to_total(self):
        csr = circuit_graph(400, 1.4, seed=9)
        ctx = GpuContext()
        ig = IGKway(csr, PartitionConfig(k=2, seed=9), ctx=ctx)
        ig.full_partition()
        trace = generate_trace(
            csr,
            TraceConfig(iterations=3, modifiers_per_iteration=15,
                        seed=10),
        )
        for batch in trace:
            ig.apply(batch)
        ledger = ctx.ledger
        section_sum = sum(
            ledger.seconds(name) for name in ledger.sections
        )
        assert section_sum == pytest.approx(ledger.seconds(), rel=1e-9)

    def test_iteration_reports_sum_to_sections(self):
        csr = circuit_graph(400, 1.4, seed=9)
        ctx = GpuContext()
        ig = IGKway(csr, PartitionConfig(k=2, seed=9), ctx=ctx)
        ig.full_partition()
        trace = generate_trace(
            csr,
            TraceConfig(iterations=4, modifiers_per_iteration=15,
                        seed=10),
        )
        mod_total = part_total = 0.0
        for batch in trace:
            report = ig.apply(batch)
            mod_total += report.modification_seconds
            part_total += report.partitioning_seconds
        assert mod_total == pytest.approx(
            ctx.ledger.seconds("modification"), rel=1e-6
        )
        assert part_total == pytest.approx(
            ctx.ledger.seconds("partitioning"), rel=1e-6
        )
