"""Weighted vertices and edges through the full incremental pipeline.

The paper's Section II definitions are weighted (cut = sum of W_e over
crossing edges; balance over W_v); the evaluation graphs are unit-weight
circuits, but the library must honor weights everywhere.
"""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.graph import (
    CSRGraph,
    EdgeDelete,
    EdgeInsert,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
    circuit_graph,
)
from repro.partition import cut_size_bucketlist


@pytest.fixture
def weighted_ig():
    rng = np.random.default_rng(5)
    base = circuit_graph(200, 1.5, seed=5)
    edges, _ = base.edge_array()
    csr = CSRGraph.from_edges(
        200,
        edges,
        rng.integers(1, 8, edges.shape[0]),
        rng.integers(1, 5, 200),
    )
    ig = IGKway(csr, PartitionConfig(k=2, seed=5))
    ig.full_partition()
    return ig


class TestWeightedEdges:
    def test_weighted_edge_insert_affects_cut(self, weighted_ig):
        ig = weighted_ig
        # Find two active vertices in different partitions, not adjacent.
        part = ig.partition
        u = next(
            int(x) for x in range(200) if part[x] == 0
        )
        v = next(
            int(x)
            for x in range(199, 0, -1)
            if part[x] == 1 and not ig.graph.has_edge(u, int(x))
        )
        before = ig.cut_size()
        ig.apply(ModifierBatch([EdgeInsert(u, v, weight=50)]))
        after = ig.cut_size()
        # Either the heavy edge crosses (cut grows by ~50) or refinement
        # restructured to absorb it; the cut must match ground truth.
        assert after == cut_size_bucketlist(
            ig.graph, ig.state.partition
        )
        assert after != before or ig.graph.has_edge(u, v)

    def test_weighted_edge_roundtrip(self, weighted_ig):
        ig = weighted_ig
        part = ig.partition
        u, v = 3, 190
        if ig.graph.has_edge(u, v):
            ig.apply(ModifierBatch([EdgeDelete(u, v)]))
        ig.apply(ModifierBatch([EdgeInsert(u, v, weight=9)]))
        assert ig.graph.edge_weight(u, v) == 9
        assert ig.graph.edge_weight(v, u) == 9
        ig.apply(ModifierBatch([EdgeDelete(u, v)]))
        assert not ig.graph.has_edge(u, v)
        ig.validate()

    def test_modes_agree_on_weighted_graph(self):
        rng = np.random.default_rng(6)
        base = circuit_graph(150, 1.5, seed=6)
        edges, _ = base.edge_array()
        csr = CSRGraph.from_edges(
            150, edges, rng.integers(1, 9, edges.shape[0]),
            rng.integers(1, 4, 150),
        )
        batch = ModifierBatch(
            [EdgeInsert(0, 100, weight=7), VertexDelete(50)]
        )
        cuts = {}
        for mode in ("warp", "vector"):
            ig = IGKway(csr, PartitionConfig(k=2, seed=6, mode=mode))
            ig.full_partition()
            report = ig.apply(batch)
            cuts[mode] = report.cut
        assert cuts["warp"] == cuts["vector"]


class TestWeightedVertices:
    def test_heavy_vertex_insert_respects_balance(self, weighted_ig):
        ig = weighted_ig
        n = ig.graph.num_vertices
        heavy = ig.state.total_weight() // 20
        report = ig.apply(
            ModifierBatch([VertexInsert(n, weight=heavy)])
        )
        assert report.balanced
        assert ig.state.part_weights.sum() + ig.state.pseudo_weight == \
            ig.state.total_weight()
        # The heavy newcomer went to a real partition.
        assert 0 <= ig.partition[n] < 2

    def test_balance_uses_weights_not_counts(self):
        """A partition with fewer but heavier vertices can be the
        overweight one; refinement must respect weighted W_pmax."""
        rng = np.random.default_rng(7)
        base = circuit_graph(300, 1.4, seed=7)
        edges, _ = base.edge_array()
        vwgt = np.ones(300, dtype=np.int64)
        vwgt[:30] = 10  # a heavy head
        csr = CSRGraph.from_edges(
            300, edges, np.ones(edges.shape[0], dtype=np.int64), vwgt
        )
        ig = IGKway(csr, PartitionConfig(k=2, seed=7))
        report = ig.full_partition()
        assert report.balanced
        for _ in range(3):
            r = ig.apply(ModifierBatch([]))
            assert r.balanced

    def test_delete_reinsert_new_weight_same_batch(self, weighted_ig):
        """Regression: a vertex deleted and re-inserted with a new
        weight in ONE batch must not corrupt the cached partition
        weights (the kernel rewrites graph.vwgt before balancing runs,
        so the state must account in modifier order)."""
        ig = weighted_ig
        target = 25
        old_weight = int(ig.graph.vwgt[target])
        report = ig.apply(
            ModifierBatch(
                [
                    VertexDelete(target),
                    VertexInsert(target, weight=old_weight + 5),
                ]
            )
        )
        ig.validate()  # includes cached-weight consistency
        assert ig.graph.vwgt[target] == old_weight + 5
        assert report.balanced

    def test_reinsert_with_different_weight(self, weighted_ig):
        ig = weighted_ig
        target = 10
        old_weight = int(ig.graph.vwgt[target])
        ig.apply(ModifierBatch([VertexDelete(target)]))
        ig.apply(ModifierBatch([VertexInsert(target, weight=old_weight
                                             + 3)]))
        assert ig.graph.vwgt[target] == old_weight + 3
        ig.validate()
