"""Property-based invariants of the incremental pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import balance_partition, refine_pseudo
from repro.core.modification import apply_batch
from repro.graph import BucketListGraph, circuit_graph
from repro.gpusim import GpuContext
from repro.partition import UNASSIGNED, PartitionState
from repro.partition.metrics import cut_size_bucketlist


def _fresh(seed, n=80, k=2):
    csr = circuit_graph(n, 1.6, seed=seed)
    graph = BucketListGraph.from_csr(csr)
    partition = np.full(graph.capacity, UNASSIGNED, dtype=np.int64)
    partition[:n] = np.arange(n) % k
    state = PartitionState(partition, graph.vwgt, k=k, epsilon=0.05)
    return GpuContext(), graph, state


class TestRefinementInvariants:
    @given(
        seed=st.integers(0, 10_000),
        k=st.sampled_from([2, 3, 4, 8]),
        park_stride=st.integers(2, 9),
    )
    @settings(max_examples=30, deadline=None)
    def test_drain_is_complete_and_consistent(self, seed, k, park_stride):
        """After refine_pseudo: the pseudo partition is empty, every
        active vertex holds a real label, and cached weights equal a
        recomputation — for arbitrary parked subsets and k."""
        ctx, graph, state = _fresh(seed, k=k)
        parked = list(range(0, graph.num_vertices, park_stride))
        for u in parked:
            state.move(u, state.pseudo_label)
        refine_pseudo(ctx, graph, state, parked, mode="vector")
        assert state.pseudo_weight == 0
        labels = state.partition[: graph.num_vertices]
        assert np.all((labels >= 0) & (labels < k))
        state.validate()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_refinement_prefers_majority_side(self, seed):
        """Every committed vertex ends in a partition where it has at
        least as many neighbors as in any other *feasible* partition at
        commit time — weaker than optimal, but a sanity bound: moving a
        single parked vertex back never increases the cut versus parking
        it arbitrarily."""
        ctx, graph, state = _fresh(seed, k=2)
        parked = [0, 7, 13]
        for u in parked:
            state.move(u, state.pseudo_label)
        before_cut = cut_size_bucketlist(graph, state.partition)
        refine_pseudo(ctx, graph, state, parked, mode="vector")
        after_cut = cut_size_bucketlist(graph, state.partition)
        # Parked vertices' edges to real partitions counted as cut
        # before; placing them on their majority side cannot make the
        # final cut exceed the parked-state cut.
        assert after_cut <= before_cut


class TestBalancingInvariants:
    @given(
        seed=st.integers(0, 10_000),
        n_mods=st.integers(1, 25),
    )
    @settings(max_examples=25, deadline=None)
    def test_balancing_preserves_weight_accounting(self, seed, n_mods):
        from repro.eval.workloads import TraceConfig, generate_trace

        csr = circuit_graph(80, 1.6, seed=seed)
        trace = generate_trace(
            csr,
            TraceConfig(
                iterations=1, modifiers_per_iteration=n_mods, seed=seed
            ),
        )
        ctx, graph, state = _fresh(seed)
        ops = apply_batch(ctx, graph, trace[0], mode="vector")
        buffer, _stats = balance_partition(
            ctx, graph, state, ops, mode="vector"
        )
        state.validate()
        # Every buffered vertex is actually in the pseudo partition.
        for u in buffer:
            assert state.partition[u] == state.pseudo_label
        # And every pseudo vertex is in the buffer exactly once.
        pseudo_ids = np.flatnonzero(
            state.partition == state.pseudo_label
        )
        assert sorted(buffer) == sorted(int(u) for u in pseudo_ids)
        assert len(set(buffer)) == len(buffer)


class TestEndToEndInvariant:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_cut_reported_matches_ground_truth(self, seed):
        from repro import IGKway, PartitionConfig
        from repro.eval.workloads import TraceConfig, generate_trace
        from repro.partition.metrics import cut_size_csr

        csr = circuit_graph(70, 1.5, seed=seed)
        ig = IGKway(csr, PartitionConfig(k=2, seed=seed))
        ig.full_partition()
        trace = generate_trace(
            csr,
            TraceConfig(iterations=2, modifiers_per_iteration=10,
                        seed=seed),
        )
        for batch in trace:
            report = ig.apply(batch)
            now_csr, id_map = ig.graph.to_csr()
            truth = cut_size_csr(
                now_csr, ig.partition[id_map]
            )
            assert report.cut == truth
