"""Adaptive hybrid partitioner (the Section VI.C fallback policy)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveIGKway
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeInsert, ModifierBatch, circuit_graph
from repro.partition import PartitionConfig


@pytest.fixture
def adaptive(small_circuit):
    partitioner = AdaptiveIGKway(
        small_circuit, PartitionConfig(k=2, seed=2)
    )
    partitioner.full_partition()
    return partitioner


class TestTriggers:
    def test_small_batches_stay_incremental(self, adaptive):
        report = adaptive.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert not report.used_fallback
        assert report.fallback_reason is None
        assert adaptive.fallbacks_taken == 0

    def test_big_batch_triggers_fallback(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            batch_threshold=0.05,
        )
        adaptive.full_partition()
        # 5% of 300 vertices = 15 modifiers.
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=30, seed=4),
        )
        report = adaptive.apply(trace[0])
        assert report.used_fallback
        assert "batch" in report.fallback_reason
        assert adaptive.fallbacks_taken == 1

    def test_volume_accumulates_until_fallback(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=0.2,
            batch_threshold=0.15,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=10, modifiers_per_iteration=20, seed=4),
        )
        fallback_iterations = []
        for index, batch in enumerate(trace):
            report = adaptive.apply(batch)
            if report.used_fallback:
                fallback_iterations.append(index)
        # 20 per iteration vs threshold 0.2 * 300 = 60 -> every ~3rd.
        assert fallback_iterations
        assert fallback_iterations[0] in (1, 2, 3)
        # The counter resets after each fallback.
        assert adaptive.modifiers_since_full < 60

    def test_fallback_resets_volume(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=0.1,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=2, modifiers_per_iteration=30, seed=4),
        )
        first = adaptive.apply(trace[0])
        assert first.used_fallback
        assert adaptive.modifiers_since_full == 0

    def test_invalid_thresholds_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            AdaptiveIGKway(
                small_circuit, PartitionConfig(k=2), volume_threshold=0.0
            )
        with pytest.raises(ValueError):
            AdaptiveIGKway(
                small_circuit, PartitionConfig(k=2), drift_threshold=1.0
            )


class TestFallbackQuality:
    def test_fallback_restores_reference_cut(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            batch_threshold=0.05,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=40, seed=4),
        )
        report = adaptive.apply(trace[0])
        assert report.used_fallback
        # After the fallback the reference cut tracks the fresh FGP.
        assert adaptive.reference_cut == report.iteration.cut
        assert report.iteration.balanced
        adaptive.validate()

    def test_partition_consistent_after_fallback(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=4, seed=2),
            batch_threshold=0.02,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=25, seed=5),
        )
        for batch in trace:
            adaptive.apply(batch)
        adaptive.validate()
        labels = adaptive.partition[
            adaptive.graph.active_vertices()
        ]
        assert labels.min() >= 0
        assert labels.max() < 4

    def test_incremental_path_unchanged(self, small_circuit):
        """With huge thresholds the adaptive wrapper is pure iG-kway."""
        from repro import IGKway

        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=15, seed=6),
        )
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=100.0,
            batch_threshold=100.0,
            drift_threshold=1000.0,
        )
        adaptive.full_partition()
        plain = IGKway(small_circuit, PartitionConfig(k=2, seed=2))
        plain.full_partition()
        for batch in trace:
            a = adaptive.apply(batch)
            b = plain.apply(batch)
            assert not a.used_fallback
            assert a.iteration.cut == b.cut
        assert np.array_equal(adaptive.partition, plain.partition)


def _nonedge_batch(csr, count, offset=0):
    """A batch of exactly ``count`` valid edge inserts for ``csr``."""
    from repro.graph import HostGraph

    host = HostGraph.from_csr(csr)
    mods = []
    n = csr.num_vertices
    u = 0
    stride = 101 + offset
    while len(mods) < count:
        v = (u + stride) % n
        if u != v and not host.has_edge(u, v):
            mods.append(EdgeInsert(u, v))
            host.apply(mods[-1])
        u = (u + 1) % n
        stride += 1
    return ModifierBatch(mods)


class TestTriggerBoundaries:
    """The exact comparison semantics at each threshold."""

    def test_batch_exactly_at_threshold_fires(self, small_circuit):
        # batch_threshold is inclusive: len(batch) >= threshold * |V|.
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            batch_threshold=0.05,
        )
        adaptive.full_partition()
        n = adaptive.graph.num_active_vertices()
        assert n == 300
        report = adaptive.apply(_nonedge_batch(small_circuit, 15))
        assert report.used_fallback
        assert "batch" in report.fallback_reason

    def test_batch_one_below_threshold_does_not_fire(
        self, small_circuit
    ):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            batch_threshold=0.05,
        )
        adaptive.full_partition()
        report = adaptive.apply(_nonedge_batch(small_circuit, 14))
        assert not report.used_fallback

    def test_volume_exactly_at_threshold_fires(self, small_circuit):
        # volume trigger is inclusive too: pending >= threshold * |V|.
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=0.05,
            batch_threshold=0.5,
        )
        adaptive.full_partition()
        a = adaptive.apply(_nonedge_batch(small_circuit, 10))
        assert not a.used_fallback
        b = adaptive.apply(_nonedge_batch(small_circuit, 5, offset=60))
        assert b.used_fallback
        assert "since last FGP" in b.fallback_reason

    def _cut_after(self, csr, batch):
        """Deterministic probe: the incremental cut this batch lands on
        when no trigger interferes."""
        probe = AdaptiveIGKway(csr, PartitionConfig(k=2, seed=2))
        probe.full_partition()
        probe.reference_cut = None  # disable the drift check entirely
        return probe.apply(batch).iteration.cut

    def test_drift_exactly_at_threshold_does_not_fire(
        self, small_circuit
    ):
        # The drift trigger is strict: cut > threshold * reference, so a
        # cut landing exactly on the threshold stays incremental.
        batch = _nonedge_batch(small_circuit, 8)
        cut = self._cut_after(small_circuit, batch)
        if cut % 2:  # need an even cut for an exact 2.0x reference
            batch = _nonedge_batch(small_circuit, 9, offset=30)
            cut = self._cut_after(small_circuit, batch)
        assert cut % 2 == 0, "probe batches should yield an even cut"

        adaptive = AdaptiveIGKway(
            small_circuit, PartitionConfig(k=2, seed=2),
            drift_threshold=2.0,
        )
        adaptive.full_partition()
        adaptive.reference_cut = cut // 2  # cut == 2.0 * reference
        report = adaptive.apply(batch)
        assert report.iteration.cut == cut
        assert not report.used_fallback

    def test_drift_just_past_threshold_fires(self, small_circuit):
        batch = _nonedge_batch(small_circuit, 8)
        cut = self._cut_after(small_circuit, batch)
        adaptive = AdaptiveIGKway(
            small_circuit, PartitionConfig(k=2, seed=2),
            drift_threshold=2.0,
        )
        adaptive.full_partition()
        adaptive.reference_cut = cut // 2 - 1  # cut > 2.0 * reference
        report = adaptive.apply(batch)
        assert report.used_fallback
        assert "drifted" in report.fallback_reason


class TestFromInner:
    def test_wraps_restored_partitioner(self, small_circuit):
        from repro.core.igkway import IGKway

        inner = IGKway(small_circuit, PartitionConfig(k=2, seed=2))
        inner.full_partition()
        adaptive = AdaptiveIGKway.from_inner(inner, batch_threshold=0.2)
        assert adaptive.inner is inner
        assert adaptive.batch_threshold == 0.2
        assert adaptive.modifiers_since_full == 0
        report = adaptive.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert not report.used_fallback

    def test_invalid_thresholds_rejected(self, small_circuit):
        from repro.core.igkway import IGKway

        inner = IGKway(small_circuit, PartitionConfig(k=2, seed=2))
        inner.full_partition()
        with pytest.raises(ValueError):
            AdaptiveIGKway.from_inner(inner, drift_threshold=1.0)
        with pytest.raises(ValueError):
            AdaptiveIGKway.from_inner(inner, volume_threshold=0.0)
