"""Adaptive hybrid partitioner (the Section VI.C fallback policy)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveIGKway
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeInsert, ModifierBatch, circuit_graph
from repro.partition import PartitionConfig


@pytest.fixture
def adaptive(small_circuit):
    partitioner = AdaptiveIGKway(
        small_circuit, PartitionConfig(k=2, seed=2)
    )
    partitioner.full_partition()
    return partitioner


class TestTriggers:
    def test_small_batches_stay_incremental(self, adaptive):
        report = adaptive.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert not report.used_fallback
        assert report.fallback_reason is None
        assert adaptive.fallbacks_taken == 0

    def test_big_batch_triggers_fallback(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            batch_threshold=0.05,
        )
        adaptive.full_partition()
        # 5% of 300 vertices = 15 modifiers.
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=30, seed=4),
        )
        report = adaptive.apply(trace[0])
        assert report.used_fallback
        assert "batch" in report.fallback_reason
        assert adaptive.fallbacks_taken == 1

    def test_volume_accumulates_until_fallback(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=0.2,
            batch_threshold=0.15,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=10, modifiers_per_iteration=20, seed=4),
        )
        fallback_iterations = []
        for index, batch in enumerate(trace):
            report = adaptive.apply(batch)
            if report.used_fallback:
                fallback_iterations.append(index)
        # 20 per iteration vs threshold 0.2 * 300 = 60 -> every ~3rd.
        assert fallback_iterations
        assert fallback_iterations[0] in (1, 2, 3)
        # The counter resets after each fallback.
        assert adaptive.modifiers_since_full < 60

    def test_fallback_resets_volume(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=0.1,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=2, modifiers_per_iteration=30, seed=4),
        )
        first = adaptive.apply(trace[0])
        assert first.used_fallback
        assert adaptive.modifiers_since_full == 0

    def test_invalid_thresholds_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            AdaptiveIGKway(
                small_circuit, PartitionConfig(k=2), volume_threshold=0.0
            )
        with pytest.raises(ValueError):
            AdaptiveIGKway(
                small_circuit, PartitionConfig(k=2), drift_threshold=1.0
            )


class TestFallbackQuality:
    def test_fallback_restores_reference_cut(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            batch_threshold=0.05,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=40, seed=4),
        )
        report = adaptive.apply(trace[0])
        assert report.used_fallback
        # After the fallback the reference cut tracks the fresh FGP.
        assert adaptive.reference_cut == report.iteration.cut
        assert report.iteration.balanced
        adaptive.validate()

    def test_partition_consistent_after_fallback(self, small_circuit):
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=4, seed=2),
            batch_threshold=0.02,
        )
        adaptive.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=25, seed=5),
        )
        for batch in trace:
            adaptive.apply(batch)
        adaptive.validate()
        labels = adaptive.partition[
            adaptive.graph.active_vertices()
        ]
        assert labels.min() >= 0
        assert labels.max() < 4

    def test_incremental_path_unchanged(self, small_circuit):
        """With huge thresholds the adaptive wrapper is pure iG-kway."""
        from repro import IGKway

        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=15, seed=6),
        )
        adaptive = AdaptiveIGKway(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            volume_threshold=100.0,
            batch_threshold=100.0,
            drift_threshold=1000.0,
        )
        adaptive.full_partition()
        plain = IGKway(small_circuit, PartitionConfig(k=2, seed=2))
        plain.full_partition()
        for batch in trace:
            a = adaptive.apply(batch)
            b = plain.apply(batch)
            assert not a.used_fallback
            assert a.iteration.cut == b.cut
        assert np.array_equal(adaptive.partition, plain.partition)
