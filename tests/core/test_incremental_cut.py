"""The incremental cut accumulator vs. the ground-truth pool scan.

Every property here pins the PR 7 contract: after any committed batch —
modifier deltas, balancing moves, refinement moves, in either execution
mode — the maintained extended-label arc matrix equals a from-scratch
pool scan bit-for-bit, and survives transactional rollback and
checkpoint/recover round-trips.
"""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.core.serialize import load_partitioner, save_partitioner
from repro.core.transaction import transaction
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeInsert, ModifierBatch, circuit_graph
from repro.partition.cutcheck import verify_cut
from repro.partition.metrics import (
    arc_matrix_bucketlist,
    cut_matrix_bucketlist,
    cut_size_bucketlist,
)
from repro.utils import ModifierError, PartitionError


def _build(mode, n=500, k=4, seed=7):
    csr = circuit_graph(n, 1.3, seed=seed)
    ig = IGKway(
        csr, PartitionConfig(k=k, mode=mode, seed=seed), capacity_factor=1.6
    )
    ig.full_partition()
    return ig


def _trace(ig, iterations=6, seed=11):
    return generate_trace(
        ig.initial_csr,
        TraceConfig(
            iterations=iterations,
            modifiers_per_iteration=(5, 30),
            seed=seed,
        ),
    )


@pytest.mark.parametrize("mode", ["vector", "warp"])
class TestIncrementalMatchesScan:
    def test_every_batch_matches_scan(self, mode):
        ig = _build(mode)
        k = ig.config.k
        for batch in _trace(ig):
            report = ig.apply(batch)
            graph, state = ig.graph, ig.state
            assert report.cut == cut_size_bucketlist(
                graph, state.partition
            )
            acc = state.cut_acc
            assert np.array_equal(
                acc.arc_matrix(state.partition),
                arc_matrix_bucketlist(graph, state.partition, k),
            )

    def test_cut_matrix_symmetry_and_sums(self, mode):
        ig = _build(mode)
        k = ig.config.k
        for batch in _trace(ig, iterations=4, seed=3):
            report = ig.apply(batch)
            matrix = ig.cut_matrix()
            assert np.array_equal(
                matrix,
                cut_matrix_bucketlist(ig.graph, ig.state.partition, k),
            )
            assert np.array_equal(matrix, matrix.T)
            # Row sums == per-partition (internal + external) incident
            # weight from the arc matrix's real block.
            ext = ig.state.cut_acc.arc_matrix(ig.state.partition)
            real = ext[:k, :k]
            off = matrix - np.diag(np.diagonal(matrix))
            assert np.array_equal(
                off.sum(axis=0), real.sum(axis=0) - np.diagonal(real)
            )
            assert np.array_equal(
                off.sum(axis=1), real.sum(axis=1) - np.diagonal(real)
            )
            if ext[k:, :].sum() == 0 and ext[:, k:].sum() == 0:
                # No pseudo/UNASSIGNED arcs left: the real block's
                # upper triangle is the whole cut.
                assert int(np.triu(matrix, 1).sum()) == report.cut

    def test_sanitizer_mode_end_to_end(self, mode):
        ig = _build(mode)
        ig.verify_cut_scan = True
        for batch in _trace(ig, iterations=3, seed=5):
            ig.apply(batch)

    def test_failed_batch_rolls_back_accumulator(self, mode):
        ig = _build(mode)
        trace = _trace(ig, iterations=2, seed=9)
        ig.apply(trace[0])
        before = ig.state.cut_acc.arc_matrix(ig.state.partition)
        with pytest.raises(ModifierError):
            # Validates at expansion (duplicate edge), after a pending
            # good modifier: the transaction must leave no trace.
            ig.apply(ModifierBatch([EdgeInsert(0, 1), EdgeInsert(0, 1)]))
        assert np.array_equal(
            ig.state.cut_acc.arc_matrix(ig.state.partition), before
        )
        verify_cut(ig.graph, ig.state)
        report = ig.apply(trace[1])
        assert report.cut == cut_size_bucketlist(
            ig.graph, ig.state.partition
        )

    def test_transaction_rollback_restores_matrix_bit_identically(
        self, mode
    ):
        ig = _build(mode)
        ig.cut_size()  # bootstrap the accumulator
        state = ig.state
        before = state.cut_acc.arc_matrix(state.partition)
        u = int(ig.graph.active_vertices()[0])
        with pytest.raises(RuntimeError, match="boom"):
            with transaction(ig.graph, state, ctx=ig.ctx):
                # Mid-flight single and bulk moves, then a failure.
                state.move(u, (int(state.partition[u]) + 1) % ig.config.k)
                movers = ig.graph.active_vertices()[:8].astype(np.int64)
                state.apply_moves(
                    movers,
                    (state.partition[movers] + 1) % ig.config.k,
                )
                raise RuntimeError("boom")
        assert np.array_equal(
            state.cut_acc.arc_matrix(state.partition), before
        )
        verify_cut(ig.graph, state)

    def test_checkpoint_recover_rebootstraps(self, mode, tmp_path):
        ig = _build(mode)
        trace = _trace(ig, iterations=3, seed=13)
        for batch in trace[:2]:
            ig.apply(batch)
        path = tmp_path / "ck.npz"
        save_partitioner(ig, path)
        recovered = load_partitioner(path)
        # Derived state is not serialized; the first read re-bootstraps.
        assert recovered.state.cut_acc is None or (
            not recovered.state.cut_acc.active
        )
        assert recovered.cut_size() == cut_size_bucketlist(
            recovered.graph, recovered.state.partition
        )
        r_orig = ig.apply(trace[2])
        r_rec = recovered.apply(trace[2])
        assert r_rec.cut == r_orig.cut
        verify_cut(recovered.graph, recovered.state)


class TestVerifyCut:
    def test_detects_matrix_corruption(self):
        ig = _build("vector")
        ig.cut_size()
        ig.state.cut_acc._flat[1] += 1
        with pytest.raises(PartitionError, match="drifted"):
            verify_cut(ig.graph, ig.state)

    def test_unbootstrapped_accumulator_trivially_passes(self):
        ig = _build("vector")
        # Simulate a recovered session whose derived state was dropped.
        ig.state.cut_acc.invalidate()
        assert not ig.state.cut_acc.active
        assert verify_cut(ig.graph, ig.state) == cut_size_bucketlist(
            ig.graph, ig.state.partition
        )


class TestCostModel:
    def test_cut_maintenance_charged_proportionally(self):
        ig = _build("vector")
        ig.cut_size()  # bootstrap outside any batch: uncharged
        assert ig.ctx.ledger.seconds("cut_maintenance") == 0.0
        report = ig.apply(next(iter(_trace(ig, iterations=1, seed=2))))
        assert report.cut_maintenance_seconds > 0.0
        assert ig.ctx.ledger.seconds("cut_maintenance") > 0.0
        # The drain leaves nothing behind for the next batch to recharge.
        assert ig.state.cut_acc.touched_arcs == 0

    def test_touched_arcs_drained_once(self):
        ig = _build("vector")
        ig.cut_size()
        acc = ig.state.cut_acc
        u = int(ig.graph.active_vertices()[0])
        ig.state.move(u, (int(ig.state.partition[u]) + 1) % ig.config.k)
        first = acc.take_touched()
        assert first > 0
        assert acc.take_touched() == 0
