"""The pluggable compute-backend registry and kernel-level parity.

The numba backend is exercised only where numba is installed (it is an
optional dependency); its kernels are asserted bit-identical to the
NumPy reference on randomized inputs.
"""

import numpy as np
import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    BackendUnavailable,
    NumpyBackend,
    active_backend_name,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    set_backend,
)
from repro.core.backend.numba_backend import numba_import_error

HAS_NUMBA = numba_import_error() is None


@pytest.fixture(autouse=True)
def _reset_active():
    """Leave the process-wide active backend as the tests found it."""
    saved = backend_mod._active
    yield
    backend_mod._active = saved


class TestRegistry:
    def test_default_is_numpy(self):
        backend_mod._active = None
        assert get_backend().name == "numpy"
        assert active_backend_name() == "numpy"

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert set(available_backends()) <= set(registered_backends())

    def test_numba_registered_even_when_missing(self):
        assert "numba" in registered_backends()
        assert ("numba" in available_backends()) == HAS_NUMBA

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("cuda")
        with pytest.raises(KeyError, match="registered"):
            set_backend("nope")

    def test_set_backend_switches_active(self):
        assert set_backend("numpy") is get_backend()
        assert active_backend_name() == "numpy"

    def test_env_var_resolution(self, monkeypatch):
        backend_mod._active = None
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().name == "numpy"

    def test_env_var_typo_raises(self, monkeypatch):
        backend_mod._active = None
        monkeypatch.setenv("REPRO_BACKEND", "nmupy")
        with pytest.raises(KeyError):
            get_backend()

    def test_unavailable_backend_raises_with_cause(self):
        if HAS_NUMBA:
            pytest.skip("numba installed; unavailability not testable")
        with pytest.raises(BackendUnavailable, match="numba"):
            get_backend("numba")

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")


class TestNumpyKernels:
    """Reference-kernel sanity against straightforward recomputation."""

    def test_choose_partition_tie_breaks(self):
        b = NumpyBackend()
        counts = np.array([[3, 3, 1], [0, 0, 0]], dtype=np.int64)
        feasible = np.array([True, True, True])
        weights = np.array([10, 4, 4], dtype=np.int64)
        targets, chosen = b.choose_partition(counts, feasible, weights)
        # Row 0: tie on count -> lighter partition 1.
        # Row 1: all-zero counts tie -> lightest; 1 and 2 tie on
        # weight -> smaller index 1.
        assert targets.tolist() == [1, 1]
        assert chosen.tolist() == [3, 0]

    def test_choose_partition_infeasible_fallback(self):
        b = NumpyBackend()
        counts = np.array([[5, 2]], dtype=np.int64)
        feasible = np.array([False, False])
        weights = np.array([9, 3], dtype=np.int64)
        targets, chosen = b.choose_partition(counts, feasible, weights)
        assert targets.tolist() == [1]
        assert chosen.tolist() == [2]

    def test_feasible_prefix_matches_sequential(self):
        b = NumpyBackend()
        rng = np.random.default_rng(5)
        for _ in range(20):
            k = int(rng.integers(2, 6))
            m = int(rng.integers(0, 40))
            targets = rng.integers(0, k, m).astype(np.int64)
            weights = rng.integers(0, 9, m).astype(np.int64)
            pw = rng.integers(0, 30, k).astype(np.int64)
            w_pmax = int(rng.integers(20, 80))
            acc = pw.copy()
            expected = m
            for j in range(m):
                acc[targets[j]] += weights[j]
                if acc.max() > w_pmax:
                    expected = j
                    break
            got = b.feasible_prefix(targets, weights, pw, w_pmax, k)
            assert got == expected

    def test_fold_cut_deltas_stays_int64(self):
        b = NumpyBackend()
        flat = np.zeros(9, dtype=np.int64)
        b.fold_cut_deltas(
            flat,
            np.array([4], dtype=np.int64),
            np.array([2], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
            np.array([3, 3], dtype=np.int64),
        )
        assert flat.dtype == np.int64
        assert flat[4] == -2 and flat[1] == 6

    def test_apply_move_deltas_matches_loop(self):
        b = NumpyBackend()
        rng = np.random.default_rng(8)
        k, pseudo = 4, 4
        src = rng.integers(-1, k + 1, 50).astype(np.int64)
        dst = rng.integers(-1, k + 1, 50).astype(np.int64)
        w = rng.integers(1, 7, 50).astype(np.int64)
        part_delta, pseudo_delta = b.apply_move_deltas(src, dst, w, k, pseudo)
        expect = np.zeros(k, dtype=np.int64)
        expect_pseudo = 0
        for s, d, ww in zip(src, dst, w):
            if 0 <= s < k:
                expect[s] -= ww
            elif s == pseudo:
                expect_pseudo -= ww
            if 0 <= d < k:
                expect[d] += ww
            elif d == pseudo:
                expect_pseudo += ww
        assert np.array_equal(part_delta, expect)
        assert pseudo_delta == expect_pseudo


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaParity:
    """Bit-identity of every numba override vs. the NumPy reference."""

    def _backends(self):
        return NumpyBackend(), get_backend("numba")

    def test_choose_partition_parity(self):
        ref, jit = self._backends()
        rng = np.random.default_rng(21)
        for _ in range(30):
            k = int(rng.integers(2, 8))
            rows = int(rng.integers(1, 20))
            counts = rng.integers(0, 4, (rows, k)).astype(np.int64)
            feasible = rng.random(k) < 0.7
            weights = rng.integers(0, 5, k).astype(np.int64)
            t_ref, c_ref = ref.choose_partition(counts, feasible, weights)
            t_jit, c_jit = jit.choose_partition(counts, feasible, weights)
            assert np.array_equal(t_ref, t_jit)
            assert np.array_equal(c_ref, c_jit)

    def test_feasible_prefix_parity(self):
        ref, jit = self._backends()
        rng = np.random.default_rng(22)
        for _ in range(30):
            k = int(rng.integers(2, 8))
            m = int(rng.integers(0, 50))
            targets = rng.integers(0, k, m).astype(np.int64)
            weights = rng.integers(0, 9, m).astype(np.int64)
            pw = rng.integers(0, 30, k).astype(np.int64)
            w_pmax = int(rng.integers(10, 90))
            assert ref.feasible_prefix(
                targets, weights, pw, w_pmax, k
            ) == jit.feasible_prefix(targets, weights, pw, w_pmax, k)

    def test_fold_cut_deltas_parity(self):
        ref, jit = self._backends()
        rng = np.random.default_rng(23)
        for _ in range(10):
            n = 36
            a = np.zeros(n, dtype=np.int64)
            b = np.zeros(n, dtype=np.int64)
            sub_k = rng.integers(0, n, 40).astype(np.int64)
            sub_w = rng.integers(1, 9, 40).astype(np.int64)
            add_k = rng.integers(0, n, 40).astype(np.int64)
            add_w = rng.integers(1, 9, 40).astype(np.int64)
            ref.fold_cut_deltas(a, sub_k, sub_w, add_k, add_w)
            jit.fold_cut_deltas(b, sub_k, sub_w, add_k, add_w)
            assert np.array_equal(a, b)
