"""Parallel refinement (Algorithm 4) and the Figure 5 move commit."""

import numpy as np
import pytest

from repro.core import longest_feasible_prefix, refine_pseudo
from repro.core.refinement import _find_moves
from repro.graph import BucketListGraph, CSRGraph, circuit_graph
from repro.gpusim import GpuContext
from repro.partition import UNASSIGNED, PartitionState, cut_size_bucketlist


def make_state(graph, partition, k=2, epsilon=0.03):
    full = np.full(graph.capacity, UNASSIGNED, dtype=np.int64)
    full[: len(partition)] = partition
    return PartitionState(full, graph.vwgt, k=k, epsilon=epsilon)


def park(state, vertices):
    for u in vertices:
        state.move(u, state.pseudo_label)
    return list(vertices)


@pytest.fixture(params=["warp", "vector"])
def mode(request):
    return request.param


class TestLongestFeasiblePrefix:
    def test_figure5_example(self, ctx):
        """Both moves of Figure 5 fit under W_pmax."""
        targets = np.array([0, 1])  # move 1 -> p1, move 2 -> p2
        weights = np.array([1, 1])
        part_weights = np.array([1, 1])
        assert longest_feasible_prefix(
            ctx, targets, weights, part_weights, w_pmax=2, k=2
        ) == 2

    def test_stops_at_violation(self, ctx):
        targets = np.array([0, 0, 0])
        weights = np.array([1, 1, 1])
        part_weights = np.array([0, 0])
        assert longest_feasible_prefix(
            ctx, targets, weights, part_weights, w_pmax=2, k=2
        ) == 2

    def test_zero_when_first_violates(self, ctx):
        assert longest_feasible_prefix(
            ctx, np.array([0]), np.array([5]), np.array([0, 0]),
            w_pmax=2, k=2,
        ) == 0

    def test_empty_moves(self, ctx):
        assert longest_feasible_prefix(
            ctx,
            np.array([], dtype=int),
            np.array([], dtype=int),
            np.array([0, 0]),
            w_pmax=2,
            k=2,
        ) == 0

    def test_interleaved_partitions(self, ctx):
        targets = np.array([0, 1, 0, 1])
        weights = np.array([1, 1, 1, 1])
        part_weights = np.array([1, 0])
        # p0 can absorb one more (w_pmax 2), p1 two.
        assert longest_feasible_prefix(
            ctx, targets, weights, part_weights, w_pmax=2, k=2
        ) == 2


class TestIndependentSet:
    def test_adjacent_pseudo_lower_id_wins(self, ctx, mode):
        # 0-1 adjacent, both pseudo: only 0 moves in round one.
        csr = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 1])
        buffer = park(state, [0, 1])
        moves = _find_moves(ctx, g, state, buffer, mode)
        assert moves.vertices.tolist() == [0]

    def test_non_adjacent_move_together(self, ctx, mode):
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 1, 1])
        buffer = park(state, [0, 2])
        moves = _find_moves(ctx, g, state, buffer, mode)
        assert sorted(moves.vertices.tolist()) == [0, 2]


class TestMostSuitablePartition:
    def test_majority_partition_wins(self, ctx, mode):
        # Vertex 0 wired to 1,2 (p0) and 3 (p1) -> goes to p0.
        csr = CSRGraph.from_edges(
            4, np.array([[0, 1], [0, 2], [0, 3]])
        )
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 0, 1])
        buffer = park(state, [0])
        moves = _find_moves(ctx, g, state, buffer, mode)
        assert moves.targets.tolist() == [0]
        assert moves.nbr_counts.tolist() == [2]

    def test_tie_broken_by_lighter_partition(self, ctx, mode):
        # One neighbor in each partition; p1 is lighter.
        csr = CSRGraph.from_edges(
            5, np.array([[0, 1], [0, 2], [3, 1], [4, 1]])
        )
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 1, 0, 0])
        buffer = park(state, [0])
        moves = _find_moves(ctx, g, state, buffer, mode)
        # p0 weight 3, p1 weight 1: tie on one neighbor each -> p1.
        assert moves.targets.tolist() == [1]

    def test_isolated_vertex_goes_to_lightest(self, ctx, mode):
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [0, 2]]))
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 0, 1])
        buffer = park(state, [3])
        # 3's only neighbor set is empty after parking? 3 is isolated
        # in this graph (no edges) -> lightest feasible partition is 1.
        moves = _find_moves(ctx, g, state, buffer, mode)
        assert moves.targets.tolist() == [1]
        assert moves.nbr_counts.tolist() == [0]

    def test_full_partitions_excluded(self, ctx, mode):
        """Partitions at or above W_pmax are not candidates
        (Algorithm 4 line 12)."""
        csr = CSRGraph.from_edges(
            6, np.array([[0, 1], [0, 2], [3, 4], [4, 5]])
        )
        g = BucketListGraph.from_csr(csr)
        # Make p0 heavy: vertices 1, 2 weigh 3 each.
        g.vwgt[1] = 3
        g.vwgt[2] = 3
        state = make_state(g, [0, 0, 0, 1, 1, 1], epsilon=0.03)
        buffer = park(state, [0])
        # w_pmax = ceil(1.03 * 10 / 2) = 6; p0 weight 6 -> full.
        moves = _find_moves(ctx, g, state, buffer, mode)
        assert moves.targets.tolist() == [1]


class TestRefinePseudo:
    def test_drains_completely(self, ctx, mode):
        csr = circuit_graph(100, 1.5, seed=3)
        g = BucketListGraph.from_csr(csr)
        part = np.arange(100) % 2
        state = make_state(g, part)
        buffer = park(state, list(range(0, 40, 3)))
        stats = refine_pseudo(ctx, g, state, buffer, mode=mode)
        assert state.pseudo_weight == 0
        assert (state.partition[:100] != state.pseudo_label).all()
        assert stats.moves_applied == len(buffer)

    def test_balance_restored(self, ctx, mode):
        csr = circuit_graph(100, 1.5, seed=3)
        g = BucketListGraph.from_csr(csr)
        part = np.arange(100) % 2
        state = make_state(g, part)
        buffer = park(state, list(range(10)))
        refine_pseudo(ctx, g, state, buffer, mode=mode)
        assert state.balanced()

    def test_moves_reduce_cut_vs_random(self, ctx, mode):
        """Refinement assigns parked vertices to their majority side."""
        csr = circuit_graph(200, 1.6, seed=7)
        g = BucketListGraph.from_csr(csr)
        # A locality-aligned split (first half / second half).
        part = (np.arange(200) >= 100).astype(np.int64)
        state = make_state(g, part)
        parked = list(range(40, 60))
        buffer = park(state, parked)
        refine_pseudo(ctx, g, state, buffer, mode=mode)
        # All parked vertices are in the 'first half' region: most
        # should return to partition 0.
        back = state.partition[parked]
        assert (back == 0).sum() > len(parked) * 0.7

    def test_empty_buffer_noop(self, ctx, tiny_bucketlist, mode):
        state = make_state(tiny_bucketlist, [0, 0, 1, 1])
        stats = refine_pseudo(ctx, tiny_bucketlist, state, [], mode=mode)
        assert stats.rounds == 0
        assert stats.moves_applied == 0

    def test_sort_priority_by_nbr_count(self, ctx, mode):
        """Moves with stronger connections commit first (the sort in
        Algorithm 4 / Figure 5)."""
        # Vertex 0 has 3 neighbors in p0; vertex 5 has 1; capacity
        # admits only one of them -> 0 wins.
        edges = np.array(
            [[0, 1], [0, 2], [0, 3], [5, 4], [1, 2], [3, 4]]
        )
        csr = CSRGraph.from_edges(6, edges)
        g = BucketListGraph.from_csr(csr)
        g.vwgt[0] = 2
        g.vwgt[5] = 2
        state = make_state(g, [0, 0, 0, 0, 0, 1], epsilon=0.5)
        buffer = park(state, [0, 5])
        # After parking: p0 weight 4, w_pmax = ceil(1.5*8/2) = 6 ->
        # only one weight-2 vertex fits back into p0; both prefer p0.
        refine_pseudo(ctx, g, state, buffer, mode=mode)
        # Vertex 0 (3 neighbors in p0) commits first and claims the
        # remaining p0 capacity; vertex 5 is deflected to p1.
        assert state.partition[0] == 0
        assert state.partition[5] == 1

    def test_forced_progress_when_nothing_fits(self, ctx, mode):
        # Both partitions over W_pmax: the first move is forced.
        csr = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        g = BucketListGraph.from_csr(csr)
        g.vwgt[:3] = 10
        state = make_state(g, [0, 1, 0], epsilon=0.03)
        buffer = park(state, [1])
        stats = refine_pseudo(ctx, g, state, buffer, mode=mode)
        assert state.pseudo_weight == 0
        assert stats.moves_applied == 1

    def test_mode_equivalence_end_to_end(self):
        csr = circuit_graph(150, 1.6, seed=9)
        finals = {}
        for mode in ("warp", "vector"):
            ctx = GpuContext()
            g = BucketListGraph.from_csr(csr)
            part = np.arange(150) % 4
            state = make_state(g, part, k=4)
            buffer = park(state, list(range(0, 150, 5)))
            refine_pseudo(ctx, g, state, buffer, mode=mode)
            finals[mode] = state.partition.copy()
        assert np.array_equal(finals["warp"], finals["vector"])
