"""Warp/vector parity of the refinement hot path (property-based).

The vector fast path must be *bit-identical* to the warp-faithful
simulation — same independent set, same most-suitable partitions, same
commit order — on any graph and any parked subset.  These properties
pin the contract the vectorization must preserve (see the dual
execution paths section in docs/ARCHITECTURE.md).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refinement import _choose_partition, _find_moves, refine_pseudo
from repro.graph import BucketListGraph, circuit_graph
from repro.gpusim import GpuContext
from repro.partition import UNASSIGNED, PartitionState


def _fresh(seed, n=60, k=3):
    csr = circuit_graph(n, 1.6, seed=seed)
    graph = BucketListGraph.from_csr(csr)
    partition = np.full(graph.capacity, UNASSIGNED, dtype=np.int64)
    partition[:n] = np.arange(n) % k
    state = PartitionState(partition, graph.vwgt, k=k, epsilon=0.05)
    return graph, state


def _park(state, n, stride, offset):
    parked = list(range(offset % stride, n, stride))
    for u in parked:
        state.move(u, state.pseudo_label)
    return parked


class TestFindMovesParity:
    @given(
        seed=st.integers(0, 10_000),
        k=st.sampled_from([2, 3, 4, 8]),
        stride=st.integers(2, 9),
        offset=st.integers(0, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_movesets_identical(self, seed, k, stride, offset):
        """One round of move selection returns the same (vertex,
        target, count, weight) tuples in both modes."""
        movesets = {}
        for mode in ("warp", "vector"):
            graph, state = _fresh(seed, k=k)
            parked = _park(state, graph.num_vertices, stride, offset)
            moves = _find_moves(
                GpuContext(), graph, state, np.array(parked), mode
            )
            movesets[mode] = moves
        warp, vector = movesets["warp"], movesets["vector"]
        np.testing.assert_array_equal(warp.vertices, vector.vertices)
        np.testing.assert_array_equal(warp.targets, vector.targets)
        np.testing.assert_array_equal(warp.nbr_counts, vector.nbr_counts)
        np.testing.assert_array_equal(warp.weights, vector.weights)

    @given(
        seed=st.integers(0, 10_000),
        k=st.sampled_from([2, 4]),
        stride=st.integers(2, 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_full_drain_identical(self, seed, k, stride):
        """The complete refinement drain lands every vertex in the same
        partition in both modes."""
        partitions = {}
        for mode in ("warp", "vector"):
            graph, state = _fresh(seed, k=k)
            parked = _park(state, graph.num_vertices, stride, 0)
            refine_pseudo(GpuContext(), graph, state, parked, mode=mode)
            partitions[mode] = state.partition.copy()
        np.testing.assert_array_equal(
            partitions["warp"], partitions["vector"]
        )


class TestTieBreakRule:
    def test_huge_weights_do_not_lose_precision(self):
        """Regression: the old float score ``count - weight/total``
        collapsed under float64 precision loss at ~1e18 part weights and
        picked p0; the integer lexicographic rule (shared with the warp
        path) must pick the lighter p1."""
        counts = np.array([[1, 1]])
        feasible = np.ones((1, 2), dtype=bool)
        part_weights = np.array([10**18, 10**18 - 1000], dtype=np.int64)
        targets, chosen = _choose_partition(counts, feasible, part_weights)
        assert targets[0] == 1
        assert chosen[0] == 1

    def test_count_dominates_weight(self):
        counts = np.array([[3, 2]])
        feasible = np.ones((1, 2), dtype=bool)
        part_weights = np.array([100, 0], dtype=np.int64)
        targets, _ = _choose_partition(counts, feasible, part_weights)
        assert targets[0] == 0

    def test_full_tie_prefers_smaller_index(self):
        counts = np.array([[2, 2, 2]])
        feasible = np.ones((1, 3), dtype=bool)
        part_weights = np.array([5, 5, 5], dtype=np.int64)
        targets, _ = _choose_partition(counts, feasible, part_weights)
        assert targets[0] == 0

    def test_infeasible_column_is_skipped(self):
        counts = np.array([[5, 1]])
        feasible = np.array([[False, True]])
        part_weights = np.array([0, 10], dtype=np.int64)
        targets, _ = _choose_partition(counts, feasible, part_weights)
        assert targets[0] == 1


class TestForcedPlacement:
    def test_forced_moves_respect_headroom_and_are_counted(self):
        """With max_rounds=0 every parked vertex is force-placed; the
        placement must honor W_pmax headroom (feasible lightest) and be
        tallied in RefineStats.forced_moves."""
        graph, state = _fresh(seed=3, n=40, k=4)
        parked = _park(state, graph.num_vertices, 5, 0)
        w_pmax = state.w_pmax()
        stats = refine_pseudo(
            GpuContext(), graph, state, parked, mode="vector", max_rounds=0
        )
        assert stats.forced_moves == len(parked)
        assert stats.moves_applied == len(parked)
        assert stats.rounds == 0
        labels = state.partition[parked]
        assert np.all((labels >= 0) & (labels < state.k))
        # Unit weights and ample headroom: no partition may exceed the
        # bound that held before the drain.
        assert np.all(state.part_weights <= w_pmax)
