"""CPU incremental baseline (prior-work comparison class)."""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.core.cpu_baseline import CpuIncremental
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import (
    EdgeInsert,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
    circuit_graph,
)
from repro.utils import PartitionError


@pytest.fixture
def cpu(small_circuit):
    system = CpuIncremental(small_circuit, PartitionConfig(k=2, seed=4))
    system.full_partition()
    return system


class TestLifecycle:
    def test_apply_before_partition_rejected(self, small_circuit):
        system = CpuIncremental(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            system.apply(ModifierBatch([EdgeInsert(0, 5)]))

    def test_initial_report(self, small_circuit):
        system = CpuIncremental(small_circuit, PartitionConfig(k=2,
                                                               seed=4))
        report = system.full_partition()
        assert report.balanced
        assert report.cut == system.cut_size()


class TestApply:
    def test_tracks_graph(self, cpu):
        report = cpu.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert cpu.host.has_edge(0, 250)
        assert report.affected >= 2
        assert report.cut == cpu.cut_size()

    def test_vertex_lifecycle(self, cpu):
        n = cpu.host.num_vertex_slots
        report = cpu.apply(
            ModifierBatch([VertexInsert(n), EdgeInsert(n, 0)])
        )
        assert cpu.partition[n] in (0, 1)
        assert report.balanced

    def test_vertex_delete_removes_weight(self, cpu):
        before = int(cpu.part_weights.sum())
        cpu.apply(ModifierBatch([VertexDelete(7)]))
        assert int(cpu.part_weights.sum()) == before - 1
        assert 7 not in cpu.partition

    def test_refinement_reduces_or_keeps_cut(self, cpu, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=5, modifiers_per_iteration=15, seed=3),
        )
        for batch in trace:
            report = cpu.apply(batch)
            assert report.balanced
            assert report.cut >= 0

    def test_transfer_charged_when_device_resident(self, small_circuit):
        system = CpuIncremental(
            small_circuit, PartitionConfig(k=2, seed=4),
            device_resident_app=True,
        )
        system.full_partition()
        system.apply(ModifierBatch([EdgeInsert(0, 250)]))
        ledger = system.ctx.ledger
        assert ledger.sections["partitioning"].d2h_bytes > 0
        assert ledger.sections["partitioning"].h2d_bytes > 0

    def test_no_transfer_in_cpu_pipeline(self, small_circuit):
        system = CpuIncremental(
            small_circuit, PartitionConfig(k=2, seed=4),
            device_resident_app=False,
        )
        system.full_partition()
        system.apply(ModifierBatch([EdgeInsert(0, 250)]))
        ledger = system.ctx.ledger
        assert ledger.sections["partitioning"].d2h_bytes == 0


class TestThreeWayComparison:
    def test_transfer_gap_grows_with_graph_size(self):
        """The paper's motivating argument: in a GPU-resident pipeline
        the CPU partitioner's per-iteration transfer grows with |V|,
        while iG-kway stays device-resident."""
        ratios = []
        for n in (1000, 8000):
            csr = circuit_graph(n, 1.35, seed=5)
            trace = generate_trace(
                csr,
                TraceConfig(iterations=4,
                            modifiers_per_iteration=10, seed=5),
            )
            config = PartitionConfig(k=2, seed=5)
            gpu = IGKway(csr, config)
            cpu_sys = CpuIncremental(csr, config)
            gpu.full_partition()
            cpu_sys.full_partition()
            gpu_s = cpu_s = 0.0
            for batch in trace:
                gpu_s += gpu.apply(batch).partitioning_seconds
                cpu_s += cpu_sys.apply(batch).partitioning_seconds
            ratios.append(cpu_s / gpu_s)
        # Relative CPU cost does not shrink as graphs grow (transfers
        # scale with |V| while both stay affected-set-bound otherwise).
        assert ratios[1] > ratios[0] * 0.8
