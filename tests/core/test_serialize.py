"""Checkpoint save/restore and partition export."""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.core.serialize import (
    export_partition_csv,
    load_partitioner,
    save_partitioner,
)
from repro.eval.workloads import TraceConfig, generate_trace
from repro.utils import PartitionError


@pytest.fixture
def warm_partitioner(small_circuit):
    ig = IGKway(small_circuit, PartitionConfig(k=4, seed=3))
    ig.full_partition()
    trace = generate_trace(
        small_circuit,
        TraceConfig(iterations=3, modifiers_per_iteration=20, seed=5),
    )
    for batch in trace:
        ig.apply(batch)
    return ig


class TestSaveLoad:
    def test_roundtrip_preserves_state(self, warm_partitioner, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        restored = load_partitioner(path)
        assert np.array_equal(
            restored.graph.bucket_list, warm_partitioner.graph.bucket_list
        )
        assert np.array_equal(
            restored.partition, warm_partitioner.partition
        )
        assert (
            restored.iterations_applied
            == warm_partitioner.iterations_applied
        )
        assert restored.cut_size() == warm_partitioner.cut_size()
        restored.validate()

    def test_restored_continues_identically(
        self, warm_partitioner, tmp_path
    ):
        from repro.graph import EdgeDelete, EdgeInsert, ModifierBatch

        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        restored = load_partitioner(path)
        # Build a follow-up batch against the live graph's actual IDs.
        graph = warm_partitioner.graph
        active = graph.active_vertices()
        u, v = int(active[0]), int(active[-1])
        mods = []
        if graph.has_edge(u, v):
            mods.append(EdgeDelete(u, v))
        else:
            mods.append(EdgeInsert(u, v))
        w = int(active[len(active) // 2])
        for x in (int(active[1]), int(active[-2])):
            if x != w and not graph.has_edge(w, x):
                mods.append(EdgeInsert(w, x))
                break
        batch = ModifierBatch(mods)
        a = warm_partitioner.apply(batch)
        b = restored.apply(batch)
        assert a.cut == b.cut
        assert np.array_equal(
            warm_partitioner.partition, restored.partition
        )

    def test_config_roundtrip(self, warm_partitioner, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        restored = load_partitioner(path)
        assert restored.config == warm_partitioner.config

    def test_save_before_partition_rejected(self, small_circuit,
                                            tmp_path):
        ig = IGKway(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            save_partitioner(ig, tmp_path / "x.npz")

    def test_bad_version_rejected(self, warm_partitioner, tmp_path):
        import numpy as np

        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.int64(999)
        np.savez_compressed(path, **arrays)
        with pytest.raises(PartitionError):
            load_partitioner(path)


class TestExport:
    def test_csv_contains_active_vertices(self, warm_partitioner,
                                          tmp_path):
        path = tmp_path / "partition.csv"
        export_partition_csv(warm_partitioner, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "vertex,partition"
        n_active = warm_partitioner.graph.num_active_vertices()
        assert len(lines) == n_active + 1
        for line in lines[1:3]:
            vertex, label = line.split(",")
            assert 0 <= int(label) < 4

    def test_export_before_partition_rejected(self, small_circuit,
                                              tmp_path):
        ig = IGKway(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            export_partition_csv(ig, tmp_path / "x.csv")


class TestFormatV2:
    """Version-2 checkpoints: stream metadata and robust failure modes."""

    def test_format_version_is_2(self, warm_partitioner, tmp_path):
        from repro.core.serialize import FORMAT_VERSION

        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        with np.load(path) as data:
            assert int(data["format_version"]) == FORMAT_VERSION == 2
            assert "stream_meta_json" in data.files

    def test_stream_meta_roundtrip(self, warm_partitioner, tmp_path):
        from repro.core.serialize import load_checkpoint

        path = tmp_path / "checkpoint.npz"
        meta = {
            "applied_seq": 41,
            "adaptive": {"reference_cut": 77},
            "telemetry": {"ingested": 123},
        }
        save_partitioner(warm_partitioner, path, stream_meta=meta)
        restored, loaded_meta = load_checkpoint(path)
        assert loaded_meta == meta
        assert restored.cut_size() == warm_partitioner.cut_size()

    def test_meta_defaults_to_empty(self, warm_partitioner, tmp_path):
        from repro.core.serialize import load_checkpoint

        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        _restored, meta = load_checkpoint(path)
        assert meta == {}

    def test_v1_file_still_loads(self, warm_partitioner, tmp_path):
        # A version-1 checkpoint is one without the stream payload.
        from repro.core.serialize import load_checkpoint

        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        with np.load(path) as data:
            arrays = {
                k: data[k]
                for k in data.files
                if k != "stream_meta_json"
            }
        arrays["format_version"] = np.int64(1)
        np.savez_compressed(path, **arrays)
        restored, meta = load_checkpoint(path)
        assert meta == {}
        assert restored.cut_size() == warm_partitioner.cut_size()

    def test_missing_file_raises_partition_error(self, tmp_path):
        with pytest.raises(PartitionError, match="not found"):
            load_partitioner(tmp_path / "nope.npz")

    def test_truncated_archive_raises_partition_error(
        self, warm_partitioner, tmp_path
    ):
        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(PartitionError):
            load_partitioner(path)

    def test_garbage_file_raises_partition_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(PartitionError):
            load_partitioner(path)

    def test_missing_keys_raise_partition_error(
        self, warm_partitioner, tmp_path
    ):
        path = tmp_path / "checkpoint.npz"
        save_partitioner(warm_partitioner, path)
        with np.load(path) as data:
            arrays = {
                k: data[k] for k in data.files if k != "partition"
            }
        np.savez_compressed(path, **arrays)
        with pytest.raises(PartitionError, match="missing fields"):
            load_partitioner(path)

    def test_not_a_checkpoint_raises_partition_error(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, unrelated=np.arange(4))
        with pytest.raises(PartitionError, match="format_version"):
            load_partitioner(path)
