"""Warp/vector parity of *failed* batches (satellite of the
transactional layer): wherever a batch dies — at any poison position,
or mid-kernel after any number of landed writes — both execution modes
must roll back to bit-identical states.

The success-path parity contract is tested in test_hotpath_parity.py;
this file is its failure-path twin.
"""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.core.transaction import state_digest
from repro.graph import EdgeInsert
from repro.graph.generators import circuit_graph
from repro.graph.modifiers import ModifierBatch
from repro.utils import FaultInjector, InjectedAbort, ModifierError

N_VERTICES = 200
BATCH_SIZE = 6


def build(mode, seed=13):
    csr = circuit_graph(N_VERTICES, edge_ratio=1.4, seed=seed)
    ig = IGKway(csr, PartitionConfig(k=2, seed=seed, mode=mode))
    ig.full_partition()
    ig.verify_rollback_digest = True
    return ig


def healthy_mods(graph, seed=21, count=BATCH_SIZE):
    rng = np.random.default_rng(seed)
    active = graph.active_vertices()
    taken = set()
    mods = []
    while len(mods) < count:
        u = int(active[rng.integers(len(active))])
        v = int(active[rng.integers(len(active))])
        if u != v and (u, v) not in taken and not graph.has_edge(u, v):
            taken.add((u, v))
            taken.add((v, u))
            mods.append(EdgeInsert(u, v))
    return mods


@pytest.mark.parametrize("poison_index", range(BATCH_SIZE + 1))
def test_poison_at_every_index_rolls_back_identically(poison_index):
    """Failure injected at each op index: identical digests across modes."""
    digests = {}
    for mode in ("warp", "vector"):
        ig = build(mode)
        batch = healthy_mods(ig.graph)
        injector = FaultInjector(seed=17)
        batch.insert(poison_index, injector.duplicate_edge(ig.graph))
        pre = state_digest(ig.graph, ig.state)
        with pytest.raises(ModifierError) as excinfo:
            ig.apply(ModifierBatch(batch))
        assert excinfo.value.modifier_index == poison_index
        post = state_digest(ig.graph, ig.state)
        assert post == pre, f"{mode}: rollback not bit-identical"
        digests[mode] = post
    assert digests["warp"] == digests["vector"]


# Each edge insert logs two slot-write units (one per direction), so a
# batch of BATCH_SIZE inserts can fire thresholds up to 2*BATCH_SIZE.
@pytest.mark.parametrize("after_writes", range(1, 2 * BATCH_SIZE, 2))
def test_abort_after_every_write_count_rolls_back_identically(
    after_writes,
):
    """Mid-kernel abort at each write threshold: the number of landed
    writes differs between modes (per-op vs scatter granularity), but
    the rolled-back state must not."""
    digests = {}
    for mode in ("warp", "vector"):
        ig = build(mode)
        batch = healthy_mods(ig.graph)
        injector = FaultInjector(seed=17)
        pre = state_digest(ig.graph, ig.state)
        with injector.kernel_abort(ig.graph, after_writes=after_writes):
            with pytest.raises(InjectedAbort):
                ig.apply(ModifierBatch(batch))
        post = state_digest(ig.graph, ig.state)
        assert post == pre, f"{mode}: rollback not bit-identical"
        digests[mode] = post
    assert digests["warp"] == digests["vector"]


def test_modes_still_agree_after_a_failure_history():
    """Interleave failures and successes; both modes must stay in
    lockstep the whole way (digest checked after every step)."""
    partitioners = {mode: build(mode) for mode in ("warp", "vector")}
    rngs = {mode: np.random.default_rng(3) for mode in partitioners}
    injectors = {mode: FaultInjector(seed=29) for mode in partitioners}
    for step in range(4):
        step_digests = {}
        for mode, ig in partitioners.items():
            batch = healthy_mods(
                ig.graph, seed=int(rngs[mode].integers(1 << 30))
            )
            kind = ("duplicate_edge", "missing_edge", "dead_vertex_op")[
                step % 3
            ]
            batch.insert(step, injectors[mode].poison(ig.graph, kind))
            with pytest.raises(ModifierError):
                ig.apply(ModifierBatch(batch))
            healthy = [
                m for i, m in enumerate(batch) if i != step
            ]
            ig.apply(ModifierBatch(healthy))
            step_digests[mode] = state_digest(ig.graph, ig.state)
        assert step_digests["warp"] == step_digests["vector"], (
            f"modes diverged at step {step}"
        )
    for ig in partitioners.values():
        ig.validate()
