"""Literal reproductions of the paper's worked examples.

These tests execute the exact scenarios the paper's figures illustrate,
as close to the printed example as the text allows, and check the
outcomes the figures show.
"""

import numpy as np
import pytest

from repro.core import apply_batch
from repro.core.refinement import longest_feasible_prefix
from repro.graph import (
    EMPTY,
    BucketListGraph,
    CSRGraph,
    EdgeDelete,
    EdgeInsert,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
)
from repro.gpusim import GpuContext
from repro.gpusim.primitives import segmented_inclusive_scan


class TestFigure4:
    """Figure 4: the bucket-list before/after the caption's modifiers.

    The example graph has vertices v1..v4 (we use 0-based 0..3) with
    edges (v1,v2), (v1,v3), (v2,v3), (v3,v4).  The applied modifiers are
    M_v2^-, M_v4^+, and the edge pair M^+_(v1,v4)/M^+_(v4,v1) plus
    M^+_(v4,v3)/M^+_(v3,v4) — i.e. after deleting v2, a fresh v4' is
    (re)connected to v1 and v3.  (The caption lists the directed slot
    operations; our ModifierBatch uses the undirected forms that expand
    to exactly those.)
    """

    @pytest.fixture
    def figure4_graph(self):
        edges = np.array([[0, 1], [0, 2], [1, 2], [2, 3]])
        csr = CSRGraph.from_edges(4, edges)
        return BucketListGraph.from_csr(csr, gamma=1)

    @pytest.mark.parametrize("mode", ["warp", "vector"])
    def test_modifier_sequence(self, ctx, figure4_graph, mode):
        graph = figure4_graph
        batch = ModifierBatch(
            [
                VertexDelete(1),      # M_v2^-
                VertexDelete(3),      # make room to re-insert v4
                VertexInsert(3),      # M_v4^+
                EdgeInsert(0, 3),     # M^+_(v1,v4) + M^+_(v4,v1)
                EdgeInsert(2, 3),     # M^+_(v3,v4) + M^+_(v4,v3)
            ]
        )
        apply_batch(ctx, graph, batch, mode=mode)
        graph.validate()
        # After: v2 deleted with blank buckets and no dangling refs.
        assert not graph.is_active(1)
        assert np.all(graph.slots(1) == EMPTY)
        for u in (0, 2, 3):
            assert 1 not in graph.neighbors(u)
        # v4 is active again, wired to v1 and v3.
        assert graph.is_active(3)
        assert sorted(graph.neighbors(3).tolist()) == [0, 2]
        assert sorted(graph.neighbors(0).tolist()) == [2, 3]
        assert sorted(graph.neighbors(2).tolist()) == [0, 3]
        # No rebuild happened: v1/v3 kept their original bucket ranges.
        assert graph.bucket_start[0] == 0

    def test_no_data_structure_rebuild(self, ctx, figure4_graph):
        """The paper's point: modifiers never shift other vertices'
        buckets (unlike CSR, where one insertion moves the tail)."""
        graph = figure4_graph
        starts_before = graph.bucket_start.copy()
        counts_before = graph.bucket_count.copy()
        apply_batch(
            ctx, graph, ModifierBatch([EdgeDelete(0, 1),
                                       EdgeInsert(0, 3)]),
            mode="vector",
        )
        assert np.array_equal(graph.bucket_start, starts_before)
        assert np.array_equal(graph.bucket_count, counts_before)


class TestFigure5:
    """Figure 5: two vertex moves, two partitions, unit weights.

    delta_p_wgt = [1, 0 | 0, 1]; after the segmented scan the
    accumulated deltas are [1, 1 | 0, 1]; with W_p1 = W_p2 = 1 and
    W_pmax = 2 both moves are applied.
    """

    def test_scan_matches_figure(self, ctx):
        delta = np.array([1, 0, 0, 1])
        segments = np.array([0, 0, 1, 1])
        scanned = segmented_inclusive_scan(ctx, delta, segments)
        assert scanned.tolist() == [1, 1, 0, 1]

    def test_both_moves_apply(self, ctx):
        prefix = longest_feasible_prefix(
            ctx,
            targets=np.array([0, 1]),
            weights=np.array([1, 1]),
            part_weights=np.array([1, 1]),
            w_pmax=2,
            k=2,
        )
        assert prefix == 2

    def test_second_move_blocked_when_p2_full(self, ctx):
        prefix = longest_feasible_prefix(
            ctx,
            targets=np.array([0, 1]),
            weights=np.array([1, 1]),
            part_weights=np.array([1, 2]),  # p2 already at W_pmax
            w_pmax=2,
            k=2,
        )
        assert prefix == 1


class TestFigure3:
    """Figure 3: constrained coarsening splits a large union-find
    subset into fixed-size groups ordered by join iteration."""

    def test_groups_of_two_follow_labels(self):
        from repro.partition import build_groups_constrained

        # One subset of 6 vertices whose labels mirror Figure 3 (b):
        # the seed pair joined at iteration 1, then 2, then 3.
        roots = np.zeros(6, dtype=np.int64)
        labels = np.array([1, 1, 2, 2, 3, 3])
        cmap = build_groups_constrained(roots, labels, group_size=2)
        # Same-iteration vertices merge together.
        assert cmap[0] == cmap[1]
        assert cmap[2] == cmap[3]
        assert cmap[4] == cmap[5]
        assert np.unique(cmap).size == 3

    def test_unionfind_would_merge_everything(self):
        from repro.partition import build_groups_unionfind

        roots = np.zeros(6, dtype=np.int64)
        cmap = build_groups_unionfind(roots)
        assert np.unique(cmap).size == 1  # Figure 3 (a): one huge vertex
