"""Modification kernels: Algorithms 1 & 2 plus modifier expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SlotDelete,
    SlotInsert,
    VertexActivate,
    VertexDeactivate,
    apply_batch,
    apply_ops_vector,
    apply_ops_warp,
    expand_modifiers,
)
from repro.graph import (
    EMPTY,
    SLOTS_PER_BUCKET,
    BucketListGraph,
    CSRGraph,
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    VertexDelete,
    VertexInsert,
    circuit_graph,
)
from repro.gpusim import GpuContext
from repro.utils import ModifierError


@pytest.fixture(params=["warp", "vector"])
def mode(request):
    return request.param


def apply_ops(ctx, graph, ops, mode):
    if mode == "warp":
        apply_ops_warp(ctx, graph, ops)
    else:
        apply_ops_vector(ctx, graph, ops)


class TestEdgeInsert:
    def test_fills_first_empty_slot(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        start, _ = g.slot_range(3)
        first_empty = int(np.flatnonzero(g.slots(3) == EMPTY)[0])
        apply_ops(ctx, g, [SlotInsert(3, 0, 1), SlotInsert(0, 3, 1)], mode)
        assert g.bucket_list[start + first_empty] == 0
        assert g.has_edge(3, 0) and g.has_edge(0, 3)
        g.validate()

    def test_weight_stored(self, ctx, tiny_bucketlist, mode):
        apply_ops(
            ctx, tiny_bucketlist,
            [SlotInsert(3, 0, 9), SlotInsert(0, 3, 9)], mode,
        )
        assert tiny_bucketlist.edge_weight(3, 0) == 9
        assert tiny_bucketlist.edge_weight(0, 3) == 9

    def test_overflow_relocates(self, ctx, mode):
        """Filling beyond every slot triggers the relocation path."""
        # One vertex with gamma = 0 and exactly one bucket.
        edges = np.array([[0, i] for i in range(1, 33)])  # degree 32
        csr = CSRGraph.from_edges(40, edges)
        graph = BucketListGraph.from_csr(csr, gamma=0)
        assert graph.bucket_count[0] == 1
        apply_ops(
            ctx, graph, [SlotInsert(0, 35, 1), SlotInsert(35, 0, 1)], mode
        )
        assert graph.bucket_count[0] == 2
        assert graph.has_edge(0, 35)
        graph.validate()

    def test_charges_ledger(self, ctx, tiny_bucketlist, mode):
        apply_ops(ctx, tiny_bucketlist, [SlotInsert(0, 3, 1),
                                         SlotInsert(3, 0, 1)], mode)
        assert ctx.ledger.total.kernel_launches == 1
        assert ctx.ledger.total.warp_instructions > 0


class TestEdgeDelete:
    def test_marks_slot_empty(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        apply_ops(ctx, g, [SlotDelete(0, 1), SlotDelete(1, 0)], mode)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        g.validate()

    def test_missing_edge_raises(self, ctx, tiny_bucketlist, mode):
        with pytest.raises(ModifierError):
            apply_ops(ctx, tiny_bucketlist, [SlotDelete(0, 3)], mode)

    def test_delete_then_reinsert_reuses_slot(self, ctx, tiny_bucketlist,
                                              mode):
        g = tiny_bucketlist
        start, _ = g.slot_range(0)
        slot_of_1 = int(np.flatnonzero(g.slots(0) == 1)[0])
        apply_ops(ctx, g, [SlotDelete(0, 1), SlotDelete(1, 0)], mode)
        apply_ops(ctx, g, [SlotInsert(0, 3, 1), SlotInsert(3, 0, 1)], mode)
        # First empty slot is the freed one.
        assert g.bucket_list[start + slot_of_1] == 3


class TestVertexOps:
    def test_deactivate_clears_and_marks(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        # Remove reverse references first (the driver's expansion does
        # this automatically; here we exercise the kernel directly).
        ops = [SlotDelete(int(v), 3) for v in g.neighbors(3)]
        ops.append(VertexDeactivate(3))
        apply_ops(ctx, g, ops, mode)
        assert not g.is_active(3)
        assert np.all(g.slots(3) == EMPTY)
        g.validate()

    def test_deactivate_inactive_raises(self, ctx, tiny_bucketlist, mode):
        ops = [SlotDelete(int(v), 3) for v in tiny_bucketlist.neighbors(3)]
        ops.append(VertexDeactivate(3))
        apply_ops(ctx, tiny_bucketlist, ops, mode)
        with pytest.raises(ModifierError):
            apply_ops(ctx, tiny_bucketlist, [VertexDeactivate(3)], mode)

    def test_reactivate_reuses_buckets(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        ops = [SlotDelete(int(v), 3) for v in g.neighbors(3)]
        ops += [VertexDeactivate(3)]
        apply_ops(ctx, g, ops, mode)
        pool_before = g.num_buckets_used
        apply_ops(ctx, g, [VertexActivate(3, 7)], mode)
        assert g.is_active(3)
        assert g.vwgt[3] == 7
        assert g.degree(3) == 0
        assert g.num_buckets_used == pool_before  # buckets reused
        g.validate()

    def test_activate_new_id_appends_bucket(self, ctx, tiny_bucketlist,
                                             mode):
        g = tiny_bucketlist
        new_id = g.num_vertices
        pool_before = g.num_buckets_used
        apply_ops(ctx, g, [VertexActivate(new_id, 2)], mode)
        assert g.is_active(new_id)
        assert g.num_vertices == new_id + 1
        assert g.bucket_count[new_id] == 1  # "a single bucket" (Alg. 2)
        assert g.num_buckets_used == pool_before + 1
        g.validate()

    def test_activate_active_raises(self, ctx, tiny_bucketlist, mode):
        with pytest.raises(ModifierError):
            apply_ops(ctx, tiny_bucketlist, [VertexActivate(0, 1)], mode)

    def test_activate_gapped_id_raises(self, ctx, tiny_bucketlist, mode):
        with pytest.raises(ModifierError):
            apply_ops(
                ctx, tiny_bucketlist,
                [VertexActivate(tiny_bucketlist.num_vertices + 3, 1)],
                mode,
            )


class TestExpandModifiers:
    def test_edge_insert_expands_to_both_directions(self, tiny_bucketlist):
        ops = expand_modifiers(tiny_bucketlist, [EdgeInsert(0, 3, 2)])
        assert ops == [SlotInsert(0, 3, 2), SlotInsert(3, 0, 2)]

    def test_edge_delete_expands(self, tiny_bucketlist):
        ops = expand_modifiers(tiny_bucketlist, [EdgeDelete(0, 1)])
        assert ops == [SlotDelete(0, 1), SlotDelete(1, 0)]

    def test_vertex_delete_removes_reverse_edges(self, tiny_bucketlist):
        ops = expand_modifiers(tiny_bucketlist, [VertexDelete(2)])
        reverse = {op.u for op in ops if isinstance(op, SlotDelete)}
        assert reverse == {0, 1, 3}  # all of v2's neighbors
        assert ops[-1] == VertexDeactivate(2)

    def test_vertex_delete_sees_in_batch_edges(self, tiny_bucketlist):
        """An edge inserted earlier in the batch is cleaned up too."""
        ops = expand_modifiers(
            tiny_bucketlist, [EdgeInsert(0, 3), VertexDelete(3)]
        )
        deletes = [op for op in ops if isinstance(op, SlotDelete)]
        assert SlotDelete(0, 3) in deletes  # the just-inserted edge

    def test_vertex_delete_skips_in_batch_deleted_edges(
        self, tiny_bucketlist
    ):
        ops = expand_modifiers(
            tiny_bucketlist, [EdgeDelete(2, 3), VertexDelete(3)]
        )
        # 2 no longer neighbors 3 at delete time.
        tail = [
            op for op in ops[2:] if isinstance(op, SlotDelete)
        ]
        assert SlotDelete(2, 3) not in tail

    def test_vertex_insert_expands_to_activate(self, tiny_bucketlist):
        ops = expand_modifiers(tiny_bucketlist, [VertexInsert(4, 3)])
        assert ops == [VertexActivate(4, 3)]

    def test_edge_insert_after_vertex_delete_rejected(
        self, tiny_bucketlist
    ):
        # Regression: this used to emit a SlotInsert into the deleted
        # vertex's blanked buckets, silently corrupting the bucket list.
        with pytest.raises(ModifierError, match="deleted earlier"):
            expand_modifiers(
                tiny_bucketlist, [VertexDelete(3), EdgeInsert(2, 3)]
            )

    def test_edge_delete_after_vertex_delete_rejected(
        self, tiny_bucketlist
    ):
        with pytest.raises(ModifierError, match="deleted earlier"):
            expand_modifiers(
                tiny_bucketlist, [VertexDelete(3), EdgeDelete(2, 3)]
            )

    def test_double_vertex_delete_rejected(self, tiny_bucketlist):
        with pytest.raises(ModifierError, match="deleted earlier"):
            expand_modifiers(
                tiny_bucketlist, [VertexDelete(3), VertexDelete(3)]
            )

    def test_reinsert_reenables_vertex_in_batch(self, tiny_bucketlist):
        ops = expand_modifiers(
            tiny_bucketlist,
            [VertexDelete(3), VertexInsert(3), EdgeInsert(2, 3)],
        )
        assert SlotInsert(2, 3, 1) in ops
        assert SlotInsert(3, 2, 1) in ops


class TestApplyBatchEquivalence:
    """Differential testing: warp and vector paths, and both against the
    HostGraph reference semantics."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_traces_match_reference(self, seed):
        from repro.eval.workloads import TraceConfig, generate_trace

        csr = circuit_graph(60, 1.5, seed=seed)
        trace = generate_trace(
            csr,
            TraceConfig(iterations=3, modifiers_per_iteration=15,
                        seed=seed),
        )
        host = HostGraph.from_csr(csr)
        graph_w = BucketListGraph.from_csr(csr)
        graph_v = BucketListGraph.from_csr(csr)
        ctx_w, ctx_v = GpuContext(), GpuContext()
        for batch in trace:
            apply_batch(ctx_w, graph_w, batch, mode="warp")
            apply_batch(ctx_v, graph_v, batch, mode="vector")
            host.apply_batch(batch)
        assert np.array_equal(graph_w.bucket_list, graph_v.bucket_list)
        assert np.array_equal(graph_w.slot_wgt, graph_v.slot_wgt)
        assert np.array_equal(
            graph_w.vertex_status, graph_v.vertex_status
        )
        graph_w.validate()
        got = graph_w.to_host_graph()
        for u in range(host.num_vertex_slots):
            assert got.active[u] == host.active[u]
            assert got.adj[u] == host.adj[u]

    def test_costs_comparable_across_modes(self, small_circuit):
        from repro.eval.workloads import TraceConfig, generate_trace

        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=40, seed=1),
        )
        gw = BucketListGraph.from_csr(small_circuit)
        gv = BucketListGraph.from_csr(small_circuit)
        cw, cv = GpuContext(), GpuContext()
        apply_batch(cw, gw, trace[0], mode="warp")
        apply_batch(cv, gv, trace[0], mode="vector")
        sw, sv = cw.ledger.seconds(), cv.ledger.seconds()
        assert sv == pytest.approx(sw, rel=0.9)

    def test_unknown_mode_rejected(self, ctx, tiny_bucketlist):
        with pytest.raises(ValueError):
            apply_batch(ctx, tiny_bucketlist, [], mode="cuda")


class TestFailingOpIndexReport:
    """Kernel-level failures must name the failing slot-op's index —
    the isolation machinery above (and operators reading logs) rely on
    it to find the poison without a second failing run."""

    def test_delete_run_names_first_missing_op(self, ctx, tiny_bucketlist):
        # A run of deletes on the same vertex: (0,1) exists, (0,3) does
        # not — the vectorized path's fallback must name index 1.
        ops = [SlotDelete(0, 1), SlotDelete(0, 3)]
        with pytest.raises(ModifierError, match=r"slot-op 1:"):
            apply_ops_vector(ctx, tiny_bucketlist, ops)

    def test_warp_path_names_failing_op(self, ctx, tiny_bucketlist):
        ops = [SlotInsert(0, 3, 1), SlotInsert(3, 0, 1), SlotDelete(1, 3)]
        with pytest.raises(ModifierError, match=r"slot-op 2:"):
            apply_ops_warp(ctx, tiny_bucketlist, ops)

    def test_vertex_op_failure_names_op_in_both_modes(
        self, ctx, mode, tiny_bucketlist
    ):
        # Vertex 1 is already active: the activation at index 2 fails
        # at kernel level (past the insert run) in both modes.
        ops = [
            SlotInsert(0, 3, 1),
            SlotInsert(3, 0, 1),
            VertexActivate(1, 5),
        ]
        with pytest.raises(ModifierError, match=r"slot-op 2:"):
            apply_ops(ctx, tiny_bucketlist, ops, mode)
