"""G-kway† baseline: rebuild + repartition per iteration."""

import numpy as np
import pytest

from repro import GKwayDagger, PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeInsert, ModifierBatch, VertexDelete
from repro.partition import cut_size_csr, is_balanced
from repro.utils import PartitionError


@pytest.fixture
def baseline(small_circuit):
    bl = GKwayDagger(small_circuit, PartitionConfig(k=2, seed=4))
    bl.full_partition()
    return bl


class TestFullPartition:
    def test_initial_report(self, small_circuit):
        bl = GKwayDagger(small_circuit, PartitionConfig(k=2, seed=4))
        report = bl.full_partition()
        assert report.balanced
        assert report.seconds > 0
        assert bl.cut_size() == report.cut

    def test_apply_before_partition_rejected(self, small_circuit):
        bl = GKwayDagger(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            bl.apply(ModifierBatch([EdgeInsert(0, 5)]))

    def test_queries_before_partition_rejected(self, small_circuit):
        bl = GKwayDagger(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            _ = bl.partition
        with pytest.raises(PartitionError):
            _ = bl.id_map
        with pytest.raises(PartitionError):
            bl.cut_size()


class TestApply:
    def test_iteration_repartitions_modified_graph(self, baseline):
        report = baseline.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert baseline.host.has_edge(0, 250)
        csr, _ = baseline.host.to_csr()
        assert report.cut == cut_size_csr(csr, baseline.partition)
        assert report.balanced

    def test_modification_includes_rebuild_cost(self, baseline):
        report = baseline.apply(ModifierBatch([EdgeInsert(0, 250)]))
        # Rebuild is charged even for one modifier: the whole CSR is
        # rebuilt and re-uploaded.
        assert report.modification_seconds > 0
        ledger = baseline.ctx.ledger
        assert ledger.sections["modification"].host_ops > 0
        assert ledger.sections["modification"].h2d_bytes > 0

    def test_id_map_after_vertex_delete(self, baseline):
        baseline.apply(ModifierBatch([VertexDelete(7)]))
        assert 7 not in baseline.id_map.tolist()
        assert baseline.id_map.size == 299

    def test_per_iteration_cost_flat(self, baseline):
        """G-kway† pays roughly the same full cost every iteration —
        the behavior iG-kway exists to avoid."""
        r1 = baseline.apply(ModifierBatch([EdgeInsert(0, 250)]))
        r2 = baseline.apply(ModifierBatch([EdgeInsert(1, 251)]))
        total1 = r1.modification_seconds + r1.partitioning_seconds
        total2 = r2.modification_seconds + r2.partitioning_seconds
        assert total2 == pytest.approx(total1, rel=0.5)

    def test_balanced_every_iteration(self, small_circuit):
        bl = GKwayDagger(small_circuit, PartitionConfig(k=4, seed=2))
        bl.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=4, modifiers_per_iteration=20, seed=1),
        )
        for batch in trace:
            report = bl.apply(batch)
            assert report.balanced

    def test_iterations_counted(self, baseline):
        baseline.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert baseline.iterations_applied == 1
