"""Partition balancing (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import apply_batch, balance_partition
from repro.graph import (
    BucketListGraph,
    CSRGraph,
    EdgeDelete,
    EdgeInsert,
    VertexDelete,
    VertexInsert,
    circuit_graph,
)
from repro.gpusim import GpuContext
from repro.partition import UNASSIGNED, PartitionState


def make_state(graph: BucketListGraph, partition, k=2) -> PartitionState:
    full = np.full(graph.capacity, UNASSIGNED, dtype=np.int64)
    full[: len(partition)] = partition
    return PartitionState(full, graph.vwgt, k=k, epsilon=0.03)


@pytest.fixture(params=["warp", "vector"])
def mode(request):
    return request.param


class TestVertexInsertion:
    def test_new_vertex_goes_to_pseudo(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        state = make_state(g, [0, 0, 1, 1])
        ops = apply_batch(ctx, g, [VertexInsert(4, 2)], mode=mode)
        buffer, stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert buffer == [4]
        assert state.partition[4] == state.pseudo_label
        assert state.pseudo_weight == 2
        # Real partition weights untouched (the whole point).
        assert state.part_weights.tolist() == [2, 2]

    def test_deleted_vertex_unassigned(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        state = make_state(g, [0, 0, 1, 1])
        ops = apply_batch(ctx, g, [VertexDelete(3)], mode=mode)
        buffer, _stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert state.partition[3] == UNASSIGNED
        assert 3 not in buffer
        # Vertex 2 lost its only internal neighbor: all its remaining
        # edges cross, so the filter sends it to the pseudo partition.
        assert buffer == [2]
        assert state.part_weights.tolist() == [2, 0]
        assert state.pseudo_weight == 1

    def test_insert_then_delete_in_batch(self, ctx, tiny_bucketlist, mode):
        g = tiny_bucketlist
        state = make_state(g, [0, 0, 1, 1])
        ops = apply_batch(
            ctx, g, [VertexInsert(4, 2), VertexDelete(4)], mode=mode
        )
        buffer, _stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert buffer == []
        assert state.partition[4] == UNASSIGNED
        assert state.pseudo_weight == 0


class TestAffectedFiltering:
    def test_ext_gt_int_moves_to_pseudo(self, ctx, mode):
        """A vertex whose edges now mostly cross joins the pseudo
        partition; one with majority-internal edges is filtered out."""
        # Line 0-1-2-3-4, partition {0,1,2 | 3,4}.
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4]])
        csr = CSRGraph.from_edges(5, edges)
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 0, 1, 1])
        # Insert an edge 2-4: vertex 2 then has 1 internal (1) and 2
        # external (3, 4) neighbors -> pseudo. Vertex 4 has 2 internal?
        # 4's neighbors: 3 (internal), 2 (external) -> 1 vs 1 -> filtered.
        ops = apply_batch(ctx, g, [EdgeInsert(2, 4)], mode=mode)
        buffer, stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert 2 in buffer
        assert state.partition[2] == state.pseudo_label
        assert state.partition[4] == 1
        assert stats.affected_marked >= 2

    def test_balanced_interior_not_moved(self, ctx, mode):
        # Edge deletion inside a partition leaves both endpoints
        # majority-internal; nothing moves.
        edges = np.array([[0, 1], [0, 2], [1, 2], [3, 4], [3, 5], [4, 5]])
        csr = CSRGraph.from_edges(6, edges)
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 0, 0, 1, 1, 1])
        ops = apply_batch(ctx, g, [EdgeDelete(0, 1)], mode=mode)
        buffer, stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert buffer == []
        assert stats.filtered_out >= 2

    def test_pseudo_vertices_skip_filter(self, ctx, tiny_bucketlist, mode):
        """Vertices already in the pseudo partition terminate early
        (Algorithm 3 lines 9-10)."""
        g = tiny_bucketlist
        state = make_state(g, [0, 0, 1, 1])
        ops = apply_batch(
            ctx, g,
            [VertexInsert(4, 1), EdgeInsert(4, 0), EdgeInsert(4, 2)],
            mode=mode,
        )
        buffer, _stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert buffer.count(4) == 1  # not re-added by the edge modifiers

    def test_ripple_moves_neighbors(self, ctx, mode):
        """Phase D: neighbors of pseudo vertices get reconsidered."""
        # Star around 0 with partition boundary through it.
        edges = np.array([[0, 1], [0, 2], [0, 3], [1, 4]])
        csr = CSRGraph.from_edges(5, edges)
        g = BucketListGraph.from_csr(csr)
        state = make_state(g, [0, 1, 0, 0, 1])
        # New vertex 5 wired to 1: 1 becomes affected via the edge, and
        # once 1 joins the pseudo set its neighbors are rippled.
        ops = apply_batch(
            ctx, g, [VertexInsert(5, 1), EdgeInsert(5, 1)], mode=mode
        )
        buffer, stats = balance_partition(ctx, g, state, ops, mode=mode)
        assert 5 in buffer
        assert stats.affected_marked >= 2


class TestModeEquivalence:
    def test_same_buffer_both_modes(self, small_circuit):
        from repro.eval.workloads import TraceConfig, generate_trace

        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=30, seed=5),
        )
        results = {}
        for mode in ("warp", "vector"):
            ctx = GpuContext()
            g = BucketListGraph.from_csr(small_circuit)
            part = np.arange(small_circuit.num_vertices) % 2
            state = make_state(g, part)
            ops = apply_batch(ctx, g, trace[0], mode=mode)
            buffer, _ = balance_partition(ctx, g, state, ops, mode=mode)
            results[mode] = (buffer, state.partition.copy())
        assert results["warp"][0] == results["vector"][0]
        assert np.array_equal(results["warp"][1], results["vector"][1])

    def test_stats_consistent(self, ctx, tiny_bucketlist):
        g = tiny_bucketlist
        state = make_state(g, [0, 0, 1, 1])
        ops = apply_batch(ctx, g, [VertexInsert(4, 1)], mode="vector")
        buffer, stats = balance_partition(ctx, g, state, ops,
                                          mode="vector")
        assert stats.inserted_to_pseudo == 1
        assert stats.pseudo_total == len(buffer)

    def test_unknown_mode_rejected(self, ctx, tiny_bucketlist):
        state = make_state(tiny_bucketlist, [0, 0, 1, 1])
        ops = apply_batch(
            ctx, tiny_bucketlist, [EdgeInsert(0, 3)], mode="vector"
        )
        with pytest.raises(ValueError):
            balance_partition(ctx, tiny_bucketlist, state, ops,
                              mode="bogus")

    def test_weights_consistent_after_balancing(self, small_circuit):
        from repro.eval.workloads import TraceConfig, generate_trace

        ctx = GpuContext()
        g = BucketListGraph.from_csr(small_circuit)
        part = np.arange(small_circuit.num_vertices) % 2
        state = make_state(g, part)
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=1, modifiers_per_iteration=50, seed=2),
        )
        ops = apply_batch(ctx, g, trace[0], mode="vector")
        balance_partition(ctx, g, state, ops, mode="vector")
        state.validate()
