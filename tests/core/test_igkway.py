"""End-to-end iG-kway: full partition + incremental iterations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IGKway, PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import (
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
    circuit_graph,
)
from repro.gpusim import GpuContext
from repro.partition import cut_size_csr
from repro.utils import PartitionError


@pytest.fixture
def partitioned(small_circuit):
    ig = IGKway(small_circuit, PartitionConfig(k=2, seed=4))
    ig.full_partition()
    return ig


class TestFullPartition:
    def test_report_fields(self, small_circuit):
        ig = IGKway(small_circuit, PartitionConfig(k=2, seed=4))
        report = ig.full_partition()
        assert report.seconds > 0
        assert report.balanced
        assert report.cut == cut_size_csr(
            small_circuit, ig.partition[: small_circuit.num_vertices]
        )

    def test_apply_before_partition_rejected(self, small_circuit):
        ig = IGKway(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            ig.apply(ModifierBatch([EdgeInsert(0, 5)]))

    def test_partition_property_before_rejected(self, small_circuit):
        ig = IGKway(small_circuit, PartitionConfig(k=2))
        with pytest.raises(PartitionError):
            _ = ig.partition

    def test_charges_full_partitioning_section(self, small_circuit):
        ig = IGKway(small_circuit, PartitionConfig(k=2, seed=4))
        ig.full_partition()
        assert ig.ctx.ledger.seconds("full_partitioning") > 0


class TestApply:
    def test_edge_insert_iteration(self, partitioned):
        report = partitioned.apply(ModifierBatch([EdgeInsert(0, 250)]))
        assert partitioned.graph.has_edge(0, 250)
        assert report.modification_seconds > 0
        assert report.partitioning_seconds > 0
        partitioned.validate()

    def test_vertex_lifecycle(self, partitioned):
        n = partitioned.graph.num_vertices
        report = partitioned.apply(
            ModifierBatch(
                [VertexInsert(n, 1), EdgeInsert(n, 0), EdgeInsert(n, 1)]
            )
        )
        assert partitioned.graph.is_active(n)
        assert partitioned.graph.degree(n) == 2
        # The new vertex ends in a real partition, not pseudo.
        assert 0 <= partitioned.partition[n] < 2
        assert report.balanced
        partitioned.validate()

    def test_balance_maintained_across_iterations(self, small_circuit):
        ig = IGKway(small_circuit, PartitionConfig(k=4, seed=4))
        ig.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=6, modifiers_per_iteration=25, seed=8),
        )
        for batch in trace:
            report = ig.apply(batch)
            assert report.balanced
        ig.validate()

    def test_iterations_counted(self, partitioned):
        partitioned.apply(ModifierBatch([EdgeInsert(1, 200)]))
        partitioned.apply(ModifierBatch([EdgeDelete(1, 200)]))
        assert partitioned.iterations_applied == 2

    def test_cut_tracks_graph(self, partitioned):
        before = partitioned.cut_size()
        report = partitioned.apply(
            ModifierBatch([EdgeInsert(0, 299), EdgeInsert(1, 298)])
        )
        assert report.cut == partitioned.cut_size()
        assert report.cut >= 0
        assert abs(report.cut - before) <= 4

    def test_sections_accumulate(self, partitioned):
        partitioned.apply(ModifierBatch([EdgeInsert(0, 250)]))
        ledger = partitioned.ctx.ledger
        assert ledger.seconds("modification") > 0
        assert ledger.seconds("partitioning") > 0

    def test_empty_batch(self, partitioned):
        report = partitioned.apply(ModifierBatch([]))
        assert report.balanced
        assert report.balance_stats.pseudo_total == 0

    def test_shared_context(self, small_circuit):
        ctx = GpuContext()
        ig = IGKway(small_circuit, PartitionConfig(k=2, seed=1), ctx=ctx)
        ig.full_partition()
        assert ig.ctx is ctx


class TestGroundTruth:
    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_graph_matches_reference_after_trace(self, seed):
        csr = circuit_graph(80, 1.5, seed=seed)
        ig = IGKway(csr, PartitionConfig(k=2, seed=seed))
        ig.full_partition()
        host = HostGraph.from_csr(csr)
        trace = generate_trace(
            csr,
            TraceConfig(iterations=4, modifiers_per_iteration=12,
                        seed=seed),
        )
        for batch in trace:
            ig.apply(batch)
            host.apply_batch(batch)
        got = ig.graph.to_host_graph()
        for u in range(host.num_vertex_slots):
            assert got.active[u] == host.active[u]
            assert got.adj[u] == host.adj[u]
        ig.validate()

    def test_cut_quality_stays_reasonable(self, small_circuit):
        """After many small iterations, the incremental cut stays within
        a small factor of a from-scratch repartition (the paper's
        'comparable cut size' claim at small modifier counts)."""
        from repro.partition import GKwayPartitioner

        ig = IGKway(small_circuit, PartitionConfig(k=2, seed=3))
        ig.full_partition()
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=8, modifiers_per_iteration=10, seed=2),
        )
        for batch in trace:
            ig.apply(batch)
        csr_now, _ = ig.graph.to_csr()
        scratch = GKwayPartitioner(
            PartitionConfig(k=2, seed=3)
        ).partition(csr_now)
        assert ig.cut_size() <= max(3 * scratch.cut, scratch.cut + 40)


class TestModes:
    def test_warp_and_vector_identical(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=15, seed=6),
        )
        partitions = {}
        for mode in ("warp", "vector"):
            ig = IGKway(
                small_circuit, PartitionConfig(k=2, seed=4, mode=mode)
            )
            ig.full_partition()
            for batch in trace:
                ig.apply(batch)
            partitions[mode] = ig.partition.copy()
        assert np.array_equal(partitions["warp"], partitions["vector"])
