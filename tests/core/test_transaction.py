"""Transactional batch application: undo log, rollback, digests."""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.core.transaction import state_digest, transaction
from repro.graph import EdgeDelete, EdgeInsert, VertexDelete, VertexInsert
from repro.graph.modifiers import ModifierBatch
from repro.utils import (
    CapacityError,
    FaultInjector,
    InjectedAbort,
    ModifierError,
    TransactionError,
)


@pytest.fixture(params=["warp", "vector"])
def partitioner(request, small_circuit):
    ig = IGKway(
        small_circuit, PartitionConfig(k=4, seed=3, mode=request.param)
    )
    ig.full_partition()
    ig.verify_rollback_digest = True
    return ig


def fresh_batch(graph, seed=5, count=4):
    rng = np.random.default_rng(seed)
    active = graph.active_vertices()
    taken = set()
    mods = []
    while len(mods) < count:
        u = int(active[rng.integers(len(active))])
        v = int(active[rng.integers(len(active))])
        if u != v and (u, v) not in taken and not graph.has_edge(u, v):
            taken.add((u, v))
            taken.add((v, u))
            mods.append(EdgeInsert(u, v))
    return mods


class TestStateDigest:
    def test_stable_for_untouched_state(self, partitioner):
        assert state_digest(
            partitioner.graph, partitioner.state
        ) == state_digest(partitioner.graph, partitioner.state)

    def test_changes_when_graph_changes(self, partitioner):
        before = state_digest(partitioner.graph, partitioner.state)
        partitioner.apply(ModifierBatch(fresh_batch(partitioner.graph)))
        assert state_digest(partitioner.graph, partitioner.state) != before


class TestRollback:
    @pytest.mark.parametrize(
        "poison_cls",
        ["duplicate_edge", "missing_edge", "dead_vertex_op"],
    )
    def test_poison_mid_batch_rolls_back(self, partitioner, poison_cls):
        injector = FaultInjector(seed=9)
        batch = fresh_batch(partitioner.graph)
        batch.insert(2, injector.poison(partitioner.graph, poison_cls))
        before = state_digest(partitioner.graph, partitioner.state)
        with pytest.raises(ModifierError):
            partitioner.apply(ModifierBatch(batch))
        assert state_digest(partitioner.graph, partitioner.state) == before

    def test_capacity_error_rolls_back(self, partitioner):
        injector = FaultInjector(seed=9)
        graph = partitioner.graph
        u = int(graph.active_vertices()[0])
        batch = [
            EdgeInsert(u, int(v))
            for v in graph.active_vertices()[1:200]
            if not graph.has_edge(u, int(v))
        ]
        before = state_digest(graph, partitioner.state)
        with injector.pool_exhaustion(graph):
            with pytest.raises(CapacityError):
                partitioner.apply(ModifierBatch(batch))
        assert state_digest(graph, partitioner.state) == before

    def test_injected_abort_rolls_back_partial_writes(self, partitioner):
        injector = FaultInjector(seed=9)
        batch = fresh_batch(partitioner.graph)
        before = state_digest(partitioner.graph, partitioner.state)
        with injector.kernel_abort(partitioner.graph, after_writes=2):
            with pytest.raises(InjectedAbort):
                partitioner.apply(ModifierBatch(batch))
        assert state_digest(partitioner.graph, partitioner.state) == before

    def test_healthy_batch_applies_after_rollback(self, partitioner):
        injector = FaultInjector(seed=9)
        poisoned = fresh_batch(partitioner.graph, seed=5)
        poisoned.append(injector.duplicate_edge(partitioner.graph))
        with pytest.raises(ModifierError):
            partitioner.apply(ModifierBatch(poisoned))
        healthy = fresh_batch(partitioner.graph, seed=6)
        partitioner.apply(ModifierBatch(healthy))
        partitioner.validate()
        for mod in healthy:
            assert partitioner.graph.has_edge(mod.u, mod.v)

    def test_rollback_covers_vertex_ops(self, partitioner):
        graph = partitioner.graph
        injector = FaultInjector(seed=9)
        victim = int(graph.active_vertices()[7])
        batch = [
            VertexInsert(graph.num_vertices, weight=2),
            VertexDelete(victim),
            injector.missing_edge(graph),
        ]
        before = state_digest(graph, partitioner.state)
        with pytest.raises(ModifierError):
            partitioner.apply(ModifierBatch(batch))
        assert state_digest(graph, partitioner.state) == before
        assert graph.is_active(victim)

    def test_rollback_charged_to_rollback_section(self, partitioner):
        injector = FaultInjector(seed=9)
        ledger = partitioner.ctx.ledger
        assert ledger.seconds("rollback") == 0.0
        batch = fresh_batch(partitioner.graph)
        with injector.kernel_abort(partitioner.graph, after_writes=2):
            with pytest.raises(InjectedAbort):
                partitioner.apply(ModifierBatch(batch))
        assert ledger.seconds("rollback") > 0.0


class TestCostParity:
    def test_success_path_ledger_identical(self, small_circuit):
        """Arming the undo log must not move the deterministic ledger."""
        totals = {}
        for transactional in (True, False):
            ig = IGKway(small_circuit, PartitionConfig(k=4, seed=3))
            ig.full_partition()
            batch = fresh_batch(ig.graph)
            ig.apply(ModifierBatch(batch), transactional=transactional)
            counters = ig.ctx.ledger.total
            totals[transactional] = (
                counters.warp_instructions,
                counters.transactions,
                counters.kernel_launches,
            )
        assert totals[True] == totals[False]


class TestTransactionContext:
    def test_non_repro_exceptions_also_roll_back(self, partitioner):
        graph, state = partitioner.graph, partitioner.state
        before = state_digest(graph, state)
        with pytest.raises(RuntimeError):
            with transaction(graph, state):
                batch = fresh_batch(graph)
                partitioner.apply(
                    ModifierBatch(batch), transactional=False
                )
                raise RuntimeError("unexpected bug mid-batch")
        assert state_digest(graph, state) == before

    def test_clean_exit_commits(self, partitioner):
        graph, state = partitioner.graph, partitioner.state
        batch = fresh_batch(graph)
        with transaction(graph, state):
            partitioner.apply(ModifierBatch(batch), transactional=False)
        for mod in batch:
            assert graph.has_edge(mod.u, mod.v)

    def test_sabotaged_rollback_raises_transaction_error(
        self, partitioner, monkeypatch
    ):
        """verify_digest must catch a rollback that fails to restore."""
        graph, state = partitioner.graph, partitioner.state
        monkeypatch.setattr(graph, "rollback_undo", graph.commit_undo)
        with pytest.raises(TransactionError, match="digest"):
            with transaction(graph, state, verify_digest=True):
                partitioner.apply(
                    ModifierBatch(fresh_batch(graph)),
                    transactional=False,
                )
                raise ModifierError("forced failure")
