"""Run the docstring examples embedded in the library."""

import doctest

import pytest

import repro.eval.workloads
import repro.graph.bucketlist
import repro.utils.seeding

_MODULES = [
    repro.utils.seeding,
    repro.graph.bucketlist,
    repro.eval.workloads,
]


@pytest.mark.parametrize(
    "module", _MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )
    assert result.failed == 0, (
        f"{result.failed} doctest failures in {module.__name__}"
    )
    assert result.attempted > 0, (
        f"{module.__name__} has no doctests; drop it from the list"
    )
