"""Experiment runner end-to-end and aggregation logic."""

import numpy as np
import pytest

from repro.eval.runner import (
    ExperimentResult,
    IterationRecord,
    run_experiment,
)
from repro.graph import circuit_graph


@pytest.fixture(scope="module")
def small_result():
    csr = circuit_graph(400, 1.4, seed=2)
    return run_experiment(
        csr,
        k=2,
        iterations=6,
        modifiers_per_iteration=20,
        seed=3,
        name="tiny",
    )


class TestRunExperiment:
    def test_record_count(self, small_result):
        assert len(small_result.records) == 6

    def test_positive_times(self, small_result):
        for record in small_result.records:
            assert record.ig_mod_seconds > 0
            assert record.ig_part_seconds > 0
            assert record.bl_mod_seconds > 0
            assert record.bl_part_seconds > 0

    def test_baseline_slower_per_iteration(self, small_result):
        """The headline claim: iG-kway beats G-kway† on partitioning."""
        assert small_result.part_speedup > 5

    def test_cuts_positive_and_comparable(self, small_result):
        assert small_result.ig_cut_mean > 0
        assert small_result.bl_cut_mean > 0
        assert 0.3 < small_result.cut_improvement < 4.0

    def test_cumulative_speedup_grows(self, small_result):
        speedups = small_result.cumulative_speedups()
        assert speedups.shape[0] == 6
        # The Figure 6 shape: later iterations have larger cumulative
        # speedup than the first (FGP-dominated) one.
        assert speedups[-1] > speedups[0]

    def test_benchmark_by_name(self):
        result = run_experiment(
            "usb", k=2, iterations=2, modifiers_per_iteration=10, seed=1
        )
        assert result.name == "usb"
        assert result.num_vertices == 2000

    def test_metadata(self, small_result):
        assert small_result.k == 2
        assert small_result.num_vertices == 400


class TestWarpModeRunner:
    def test_warp_mode_matches_vector_cuts(self):
        csr = circuit_graph(200, 1.4, seed=2)
        kwargs = dict(
            k=2, iterations=2, modifiers_per_iteration=8, seed=3
        )
        vec = run_experiment(csr, mode="vector", **kwargs)
        warp = run_experiment(csr, mode="warp", **kwargs)
        for a, b in zip(vec.records, warp.records):
            assert a.ig_cut == b.ig_cut
            assert a.bl_cut == b.bl_cut


class TestAveraging:
    def test_runs_averaged(self):
        csr = circuit_graph(300, 1.4, seed=2)
        result = run_experiment(
            csr,
            k=2,
            iterations=3,
            modifiers_per_iteration=10,
            seed=3,
            runs=2,
        )
        assert result.runs_averaged == 2
        assert len(result.records) == 3

    def test_single_run_passthrough(self):
        csr = circuit_graph(300, 1.4, seed=2)
        result = run_experiment(
            csr, k=2, iterations=2, modifiers_per_iteration=5, seed=3,
            runs=1,
        )
        assert result.runs_averaged == 1


class TestReplicates:
    def test_replicates_are_independent(self):
        from repro.eval.runner import run_replicates

        csr = circuit_graph(300, 1.4, seed=1)
        replicates = run_replicates(
            csr, k=2, iterations=2, modifiers_per_iteration=8,
            seed=1, runs=3,
        )
        assert len(replicates) == 3
        # Different trace seeds -> generally different cut trajectories.
        cuts = [tuple(r.ig_cut for r in rep.records)
                for rep in replicates]
        assert len(set(cuts)) > 1

    def test_variance_report_fields(self):
        from repro.eval.runner import run_replicates, variance_report

        csr = circuit_graph(300, 1.4, seed=1)
        replicates = run_replicates(
            csr, k=2, iterations=2, modifiers_per_iteration=8,
            seed=1, runs=2,
        )
        stats = variance_report(replicates)
        assert stats["runs"] == 2
        assert stats["speedup_min"] <= stats["speedup_mean"] <= \
            stats["speedup_max"]
        assert stats["speedup_std"] >= 0


class TestIterationRecord:
    def test_speedup(self):
        record = IterationRecord(0, 10, 0.1, 0.5, 100, 0.2, 5.0, 110)
        assert record.part_speedup == pytest.approx(10.0)
        assert record.cut_improvement == pytest.approx(1.1)

    def test_zero_cut_handling(self):
        record = IterationRecord(0, 10, 0.1, 0.5, 0, 0.2, 5.0, 0)
        assert record.cut_improvement == 1.0

    def test_result_totals(self):
        result = ExperimentResult("x", 2, 10, 20)
        result.records.append(
            IterationRecord(0, 5, 0.1, 0.2, 10, 0.3, 0.4, 12)
        )
        result.records.append(
            IterationRecord(1, 5, 0.1, 0.2, 14, 0.3, 0.4, 12)
        )
        assert result.ig_mod_total == pytest.approx(0.2)
        assert result.bl_part_total == pytest.approx(0.8)
        assert result.part_speedup == pytest.approx(2.0)
        assert result.ig_cut_mean == pytest.approx(12.0)
        assert result.cut_improvement == pytest.approx(1.0)
