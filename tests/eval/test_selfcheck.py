"""The reproduction self-check battery."""

import pytest

from repro.eval.selfcheck import (
    CheckResult,
    format_results,
    run_selfcheck,
)


@pytest.fixture(scope="module")
def results():
    return run_selfcheck(seed=1)


class TestSelfcheck:
    def test_all_checks_pass(self, results):
        failing = [r.name for r in results if not r.passed]
        assert not failing, f"self-checks failed: {failing}"

    def test_covers_all_claims(self, results):
        names = " ".join(r.name for r in results)
        assert "bit-equality" in names
        assert "speedup" in names
        assert "cut quality" in names
        assert "balance" in names
        assert "batch size" in names

    def test_details_carry_evidence(self, results):
        speedup = next(r for r in results if "speedup over" in r.name)
        assert "x" in speedup.detail

    def test_format(self, results):
        text = format_results(results)
        assert "PASS" in text
        assert f"{len(results)}/{len(results)} checks passed" in text

    def test_format_shows_failures(self):
        text = format_results(
            [CheckResult("thing", False, "broke")]
        )
        assert "[FAIL] thing" in text
        assert "0/1 checks passed" in text

    def test_cli_target(self, capsys):
        from repro.eval.cli import main

        assert main(["selfcheck"]) == 0
        assert "checks passed" in capsys.readouterr().out
