"""Region-burst and growth workload models."""

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.eval.workloads import (
    generate_growth_trace,
    generate_region_burst_trace,
)
from repro.graph import (
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    VertexInsert,
    circuit_graph,
)


class TestRegionBurstTrace:
    def test_applicable(self, small_circuit):
        trace = generate_region_burst_trace(
            small_circuit, iterations=5, modifiers_per_iteration=20,
            seed=1,
        )
        host = HostGraph.from_csr(small_circuit)
        for batch in trace:
            host.apply_batch(batch)

    def test_edges_only(self, small_circuit):
        trace = generate_region_burst_trace(
            small_circuit, iterations=5, modifiers_per_iteration=20,
            seed=1,
        )
        for batch in trace:
            for modifier in batch:
                assert isinstance(modifier, (EdgeInsert, EdgeDelete))

    def test_modifiers_stay_in_region(self, small_circuit):
        span = 50
        trace = generate_region_burst_trace(
            small_circuit,
            iterations=8,
            modifiers_per_iteration=15,
            region_span=span,
            seed=2,
        )
        for batch in trace:
            # Inserted edges are fully inside the window; deletions may
            # reach outside (an in-region vertex can lose a long net).
            endpoints = [
                x
                for m in batch
                if isinstance(m, EdgeInsert)
                for x in (m.u, m.v)
            ]
            if endpoints:
                assert max(endpoints) - min(endpoints) <= span

    def test_deterministic(self, small_circuit):
        a = generate_region_burst_trace(small_circuit, 3, 10, seed=7)
        b = generate_region_burst_trace(small_circuit, 3, 10, seed=7)
        assert [list(x) for x in a] == [list(y) for y in b]

    def test_drives_partitioner(self, small_circuit):
        ig = IGKway(small_circuit, PartitionConfig(k=2, seed=1))
        ig.full_partition()
        for batch in generate_region_burst_trace(
            small_circuit, iterations=4, modifiers_per_iteration=20,
            seed=3,
        ):
            report = ig.apply(batch)
            assert report.balanced
        ig.validate()


class TestGrowthTrace:
    def test_applicable_and_monotone(self, small_circuit):
        trace = generate_growth_trace(
            small_circuit, iterations=5, vertices_per_iteration=4, seed=1
        )
        host = HostGraph.from_csr(small_circuit)
        sizes = []
        for batch in trace:
            host.apply_batch(batch)
            sizes.append(host.num_active_vertices())
        assert sizes == sorted(sizes)
        assert sizes[-1] == small_circuit.num_vertices + 20

    def test_new_vertices_are_wired(self, small_circuit):
        trace = generate_growth_trace(
            small_circuit,
            iterations=3,
            vertices_per_iteration=2,
            edges_per_vertex=3,
            seed=2,
        )
        host = HostGraph.from_csr(small_circuit)
        for batch in trace:
            host.apply_batch(batch)
        for u in range(
            small_circuit.num_vertices, host.num_vertex_slots
        ):
            assert host.degree(u) == 3

    def test_balancing_absorbs_growth(self, small_circuit):
        """The pseudo-partition mechanism keeps growth balanced — the
        Algorithm 3 stress test."""
        ig = IGKway(
            small_circuit, PartitionConfig(k=4, seed=1),
            capacity_factor=2.0,
        )
        ig.full_partition()
        for batch in generate_growth_trace(
            small_circuit, iterations=10, vertices_per_iteration=6,
            seed=3,
        ):
            report = ig.apply(batch)
            assert report.balanced
        ig.validate()
        # All 60 new vertices were placed in real partitions.
        new_ids = np.arange(
            small_circuit.num_vertices, ig.graph.num_vertices
        )
        assert new_ids.size == 60
        labels = ig.partition[new_ids]
        assert np.all((labels >= 0) & (labels < 4))

    def test_deterministic(self, small_circuit):
        a = generate_growth_trace(small_circuit, 2, 3, seed=4)
        b = generate_growth_trace(small_circuit, 2, 3, seed=4)
        assert [list(x) for x in a] == [list(y) for y in b]
