"""CLI subcommands (paper artifacts + user-graph runner)."""

import pytest

from repro.eval.cli import main
from repro.graph import circuit_graph, write_edge_list, write_metis


@pytest.fixture
def metis_file(tmp_path):
    path = tmp_path / "user.graph"
    write_metis(circuit_graph(400, 1.4, seed=2), path)
    return path


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "user.edges"
    write_edge_list(circuit_graph(400, 1.4, seed=2), path)
    return path


class TestRunSubcommand:
    def test_metis_input(self, metis_file, capsys):
        assert main(["run", "--graph", str(metis_file), "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "|V| = 400" in out
        assert "Full partitioning" in out

    def test_edge_list_input(self, edge_file, capsys):
        assert main(["run", "--graph", str(edge_file)]) == 0
        assert "|V| = 400" in capsys.readouterr().out

    def test_incremental_iterations(self, metis_file, capsys):
        assert main(
            [
                "run", "--graph", str(metis_file),
                "--iterations", "3", "--modifiers", "10",
            ]
        ) == 0
        assert "3 incremental iterations" in capsys.readouterr().out

    def test_adaptive_mode(self, metis_file, capsys):
        assert main(
            [
                "run", "--graph", str(metis_file), "--adaptive",
                "--iterations", "2", "--modifiers", "5",
            ]
        ) == 0
        assert "incremental iterations" in capsys.readouterr().out

    def test_export(self, metis_file, tmp_path, capsys):
        export = tmp_path / "partition.csv"
        assert main(
            ["run", "--graph", str(metis_file), "--export", str(export)]
        ) == 0
        lines = export.read_text().strip().splitlines()
        assert lines[0] == "vertex,partition"
        assert len(lines) == 401


class TestArtifactSubcommands:
    def test_fig8(self, capsys, tmp_path):
        assert main(
            ["fig8", "--iterations", "5", "--out", str(tmp_path)]
        ) == 0
        assert "Figure 8" in capsys.readouterr().out
        assert (tmp_path / "fig8.txt").exists()

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
