"""Pins the evaluation protocol constants to the paper's Section VI.

These tests exist so that an accidental edit to the harness defaults
(e.g. changing epsilon or the k sweep) is caught as a *protocol* change,
not discovered later as an unexplained results shift.
"""

from repro.eval import figures, tables
from repro.partition import PartitionConfig


class TestPaperProtocol:
    def test_default_epsilon_is_three_percent(self):
        assert PartitionConfig().epsilon == 0.03

    def test_default_group_size_is_six(self):
        assert PartitionConfig().group_size == 6

    def test_default_gamma_is_one(self):
        assert PartitionConfig().gamma == 1

    def test_coarsen_floor_is_35k(self):
        assert PartitionConfig(k=2).coarsen_until == 70
        assert PartitionConfig(k=32).coarsen_until == 35 * 32

    def test_min_coarsen_rate_is_90_percent(self):
        assert PartitionConfig().min_coarsen_rate == 0.9

    def test_table1_covers_all_ten_graphs(self):
        assert len(tables.TABLE1_GRAPHS) == 10
        assert tables.TABLE1_GRAPHS[0] == "tv80"  # paper's row order
        assert tables.TABLE1_GRAPHS[-1] == "NLR"

    def test_fig7_sweep_matches_paper(self):
        assert figures.FIG7_K_VALUES == [2, 4, 8, 16, 32]
        assert figures.FIG7_GRAPHS == [
            "wb_dma", "mem_ctrl", "tv80", "adaptive",
        ]

    def test_fig6_k_values(self):
        assert figures.FIG6_K_VALUES == [2, 4]

    def test_fig8_sweep_spans_the_quality_cliff(self):
        counts = figures.FIG8_MODIFIER_COUNTS
        assert counts == sorted(counts)
        # Sweep must reach deep into the heavy-modification regime
        # (hundreds of modifiers on the 2k-vertex usb = >10% of |V|).
        assert counts[0] <= 10
        assert counts[-1] >= 500
