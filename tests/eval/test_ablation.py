"""Programmatic ablation studies."""

import pytest

from repro.eval.ablation import (
    AblationRow,
    AblationStudy,
    coarsening_study,
    filter_study,
    fm_study,
    format_all,
    gamma_study,
)
from repro.graph import circuit_graph, mesh_graph_2d


class TestFormatting:
    def test_study_format(self):
        study = AblationStudy(
            title="T",
            claim="c",
            rows=[
                AblationRow("a", {"x": 1.0, "y": 2.0}),
                AblationRow("bb", {"x": 3.0}),
            ],
        )
        text = study.format()
        assert "T" in text and "claim: c" in text
        assert "a" in text and "bb" in text
        assert "x" in text and "y" in text

    def test_format_all_joins(self):
        study = AblationStudy("T", "c", [AblationRow("a", {"x": 1.0})])
        assert format_all([study, study]).count("T") == 2


class TestStudies:
    def test_coarsening_claim_holds(self):
        study = coarsening_study(csr=mesh_graph_2d(900), k=4, seed=1)
        by_label = {row.label: row.metrics for row in study.rows}
        assert (
            by_label["constrained"]["coarse_imbalance"]
            < by_label["unionfind"]["coarse_imbalance"]
        )
        assert by_label["constrained"]["balanced"] == 1.0

    def test_gamma_claim_holds(self):
        study = gamma_study(csr=circuit_graph(400, 1.3, seed=2), seed=2)
        grown = [row.metrics["buckets_grown"] for row in study.rows]
        # gamma=0 grows at least as much as gamma=4.
        assert grown[0] >= grown[-1]
        footprint = [row.metrics["pool_mbytes"] for row in study.rows]
        assert footprint == sorted(footprint)

    def test_filter_claim_holds(self):
        study = filter_study(
            csr=circuit_graph(800, 1.4, seed=3), seed=3, iterations=3
        )
        by_label = {row.label: row.metrics for row in study.rows}
        on = by_label["filter on (paper)"]
        off = by_label["filter off"]
        assert on["pseudo_total"] < off["pseudo_total"]
        assert on["part_seconds"] < off["part_seconds"]

    def test_filter_study_restores_module(self):
        from repro.core import balancing

        original = balancing._filter_ext_gt_int
        filter_study(
            csr=circuit_graph(400, 1.4, seed=3), seed=3, iterations=1
        )
        assert balancing._filter_ext_gt_int is original

    def test_fm_claim_holds(self):
        study = fm_study(csr=mesh_graph_2d(900), seed=4)
        cuts = [row.metrics["cut"] for row in study.rows]
        assert cuts[-1] <= cuts[0]

    def test_locality_study_runs(self):
        from repro.eval.ablation import locality_study

        study = locality_study(
            csr=circuit_graph(800, 1.4, seed=8), seed=8, iterations=2
        )
        assert len(study.rows) == 2
        for row in study.rows:
            assert row.metrics["part_seconds"] > 0
            assert row.metrics["affected"] > 0
