"""Modifier trace generation (TAU-2015-style workloads)."""

import numpy as np
import pytest

from repro.eval.workloads import (
    DEFAULT_MIX,
    TraceConfig,
    generate_trace,
    trace_summary,
)
from repro.graph import (
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    VertexDelete,
    VertexInsert,
)


class TestGenerateTrace:
    def test_iteration_count(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=7, modifiers_per_iteration=10, seed=1),
        )
        assert len(trace) == 7

    def test_fixed_batch_size(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=25, seed=1),
        )
        assert all(len(batch) == 25 for batch in trace)

    def test_ranged_batch_size(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(
                iterations=10, modifiers_per_iteration=(5, 15), seed=1
            ),
        )
        sizes = [len(b) for b in trace]
        assert all(5 <= s <= 15 for s in sizes)
        assert len(set(sizes)) > 1  # actually varies

    def test_trace_is_applicable(self, small_circuit):
        """Every batch applies cleanly in order — the validity contract."""
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=8, modifiers_per_iteration=40, seed=3),
        )
        host = HostGraph.from_csr(small_circuit)
        for batch in trace:
            host.apply_batch(batch)  # raises on any invalid modifier

    def test_deterministic(self, small_circuit):
        cfg = TraceConfig(iterations=4, modifiers_per_iteration=20, seed=9)
        a = generate_trace(small_circuit, cfg)
        b = generate_trace(small_circuit, cfg)
        assert [list(x) for x in a] == [list(y) for y in b]

    def test_seed_changes_trace(self, small_circuit):
        a = generate_trace(
            small_circuit,
            TraceConfig(iterations=2, modifiers_per_iteration=20, seed=1),
        )
        b = generate_trace(
            small_circuit,
            TraceConfig(iterations=2, modifiers_per_iteration=20, seed=2),
        )
        assert [list(x) for x in a] != [list(y) for y in b]

    def test_mix_roughly_honored(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=20, modifiers_per_iteration=50, seed=4),
        )
        summary = trace_summary(trace)
        total = summary["modifiers"]
        for kind, fraction in DEFAULT_MIX.items():
            observed = summary[kind] / total
            assert observed == pytest.approx(fraction, abs=0.12)

    def test_custom_mix_edge_only(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(
                iterations=5,
                modifiers_per_iteration=20,
                mix={"edge_insert": 0.5, "edge_delete": 0.5},
                seed=5,
            ),
        )
        summary = trace_summary(trace)
        assert summary["vertex_insert"] == 0
        assert summary["vertex_delete"] == 0
        assert summary["modifiers"] == 100

    def test_zero_mix_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            generate_trace(
                small_circuit,
                TraceConfig(mix={"edge_insert": 0.0}, iterations=1),
            )

    def test_vertex_inserts_reuse_deleted_ids(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(
                iterations=20, modifiers_per_iteration=20, seed=6
            ),
        )
        host = HostGraph.from_csr(small_circuit)
        max_new = small_circuit.num_vertices
        for batch in trace:
            host.apply_batch(batch)
            max_new = max(max_new, host.num_vertex_slots)
        # ID space growth stays modest thanks to reuse.
        assert max_new <= small_circuit.num_vertices * 1.3

    def test_delete_degree_cap(self, small_circuit):
        cfg = TraceConfig(
            iterations=10,
            modifiers_per_iteration=20,
            max_delete_degree=4,
            seed=7,
        )
        host = HostGraph.from_csr(small_circuit)
        for batch in generate_trace(small_circuit, cfg):
            for modifier in batch:
                if isinstance(modifier, VertexDelete):
                    assert host.degree(modifier.u) <= 4
                host.apply(modifier)


class TestWeightedTraces:
    def test_weighted_trace_applies_end_to_end(self, small_circuit):
        from repro import IGKway, PartitionConfig

        trace = generate_trace(
            small_circuit,
            TraceConfig(
                iterations=3,
                modifiers_per_iteration=20,
                edge_weight_range=(2, 9),
                vertex_weight_range=(1, 4),
                seed=3,
            ),
        )
        inserted_weights = [
            m.weight
            for batch in trace
            for m in batch
            if isinstance(m, EdgeInsert)
        ]
        assert inserted_weights
        assert all(2 <= w <= 9 for w in inserted_weights)
        assert any(w > 2 for w in inserted_weights)
        ig = IGKway(small_circuit, PartitionConfig(k=2, seed=3))
        ig.full_partition()
        for batch in trace:
            report = ig.apply(batch)
            assert report.balanced
        ig.validate()

    def test_unit_weights_by_default(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=2, modifiers_per_iteration=15, seed=4),
        )
        for batch in trace:
            for m in batch:
                if isinstance(m, (EdgeInsert, VertexInsert)):
                    assert m.weight == 1


class TestAutoModifierRange:
    def test_matches_paper_rate_at_paper_scale(self):
        from repro.eval.workloads import auto_modifier_range

        lo, hi = auto_modifier_range(139_479)  # the paper's usb
        assert 40 <= lo <= 70
        assert 150 <= hi <= 250

    def test_floors_for_tiny_graphs(self):
        from repro.eval.workloads import auto_modifier_range

        lo, hi = auto_modifier_range(100)
        assert lo >= 3
        assert hi > lo

    def test_runner_resolves_auto(self):
        from repro.eval.runner import run_experiment

        result = run_experiment(
            "usb", k=2, iterations=2,
            modifiers_per_iteration="auto", seed=1,
        )
        for record in result.records:
            assert record.n_modifiers <= 20  # scaled, not 50-200


class TestTraceSummary:
    def test_counts_add_up(self, small_circuit):
        trace = generate_trace(
            small_circuit,
            TraceConfig(iterations=3, modifiers_per_iteration=10, seed=1),
        )
        summary = trace_summary(trace)
        assert summary["iterations"] == 3
        assert summary["modifiers"] == sum(len(b) for b in trace)
        assert summary["modifiers"] == (
            summary["edge_insert"]
            + summary["edge_delete"]
            + summary["vertex_insert"]
            + summary["vertex_delete"]
        )
