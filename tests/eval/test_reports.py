"""Table/figure formatting and the CLI plumbing."""

import numpy as np
import pytest

from repro.eval import figures, tables
from repro.eval.runner import ExperimentResult, IterationRecord


def fake_result(name="usb", k=2, iterations=5, speedup=50.0):
    result = ExperimentResult(
        name=name,
        k=k,
        num_vertices=2000,
        num_edges=2580,
        ig_fgp_seconds=0.01,
        bl_fgp_seconds=0.01,
        ig_fgp_cut=30,
        bl_fgp_cut=31,
    )
    for i in range(iterations):
        result.records.append(
            IterationRecord(
                iteration=i,
                n_modifiers=20,
                ig_mod_seconds=1e-4,
                ig_part_seconds=1e-3,
                ig_cut=30 + i,
                bl_mod_seconds=2e-4,
                bl_part_seconds=1e-3 * speedup,
                bl_cut=31 + i,
            )
        )
    return result


class TestTableFormatting:
    def test_format_table1_contains_rows(self):
        results = {"usb": fake_result("usb"), "tv80": fake_result("tv80")}
        text = tables.format_table1(results)
        assert "usb" in text
        assert "tv80" in text
        assert "Average" in text
        assert "Speedup" in text

    def test_average_speedup_correct(self):
        results = {
            "a": fake_result("a", speedup=10.0),
            "b": fake_result("b", speedup=30.0),
        }
        text = tables.format_table1(results)
        assert "20.00x" in text

    def test_paper_comparison_includes_reference(self):
        results = {"usb": fake_result("usb")}
        text = tables.format_paper_comparison(results)
        assert "84.67x" in text  # the paper's usb speedup

    def test_paper_comparison_skips_unknown(self):
        results = {"mystery": fake_result("mystery")}
        text = tables.format_paper_comparison(results)
        assert "mystery" not in text


class TestFigureFormatting:
    def test_sparkline_monotone(self):
        line = figures.sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_constant(self):
        assert len(figures.sparkline([5, 5, 5])) == 3

    def test_sparkline_empty(self):
        assert figures.sparkline([]) == ""

    def test_format_fig1(self):
        data = figures.Fig1Data(
            iterations=np.arange(4),
            igp_cumulative=np.array([1.0, 1.1, 1.2, 1.3]),
            fgp_cumulative=np.array([1.0, 2.0, 3.0, 4.0]),
        )
        text = figures.format_fig1(data)
        assert "Figure 1" in text
        assert "IGP" in text and "FGP" in text

    def test_format_fig6(self):
        data = figures.Fig6Data(
            graph="usb", results={2: fake_result(k=2), 4: fake_result(k=4)}
        )
        text = figures.format_fig6(data)
        assert "k=2" in text and "k=4" in text
        assert "cut ratio" in text

    def test_format_fig7(self):
        data = figures.Fig7Data(
            results={
                "usb": {2: fake_result(k=2), 4: fake_result(k=4)},
                "tv80": {2: fake_result(k=2), 4: fake_result(k=4)},
            }
        )
        text = figures.format_fig7(data)
        assert "k=2" in text and "k=4" in text
        assert "usb" in text and "tv80" in text

    def test_format_fig8(self):
        data = figures.Fig8Data(
            graph="usb",
            results={50: fake_result(), 500: fake_result(speedup=10.0)},
        )
        text = figures.format_fig8(data)
        assert "modifiers" in text
        assert "50" in text and "500" in text


class TestBuilders:
    """Small end-to-end builds (kept tiny for test runtime)."""

    def test_build_fig1(self):
        data = figures.build_fig1(graph="usb", iterations=3, seed=0)
        assert data.igp_cumulative.shape[0] == 4
        assert np.all(np.diff(data.igp_cumulative) > 0)
        assert data.fgp_cumulative[-1] > data.igp_cumulative[-1]

    def test_build_fig6_tiny(self):
        data = figures.build_fig6(
            graph="usb", iterations=2, seed=0, k_values=(2,)
        )
        assert set(data.results) == {2}
        assert len(data.results[2].records) == 2
        assert "Figure 6" in figures.format_fig6(data)

    def test_build_fig7_tiny(self):
        data = figures.build_fig7(
            graphs=("usb",), k_values=(2, 4), iterations=2, seed=0
        )
        assert set(data.results["usb"]) == {2, 4}
        text = figures.format_fig7(data)
        assert "k=4" in text

    def test_build_fig8_tiny(self):
        data = figures.build_fig8(
            graph="usb", modifier_counts=(5, 50), iterations=2, seed=0
        )
        assert set(data.results) == {5, 50}
        assert "Figure 8" in figures.format_fig8(data)

    def test_build_table1_subset(self):
        results = tables.build_table1(
            iterations=2,
            modifiers_per_iteration=10,
            graphs=["usb"],
            seed=0,
        )
        assert set(results) == {"usb"}
        text = tables.format_table1(results)
        assert "usb" in text


class TestCli:
    def test_cli_fig8_smoke(self, capsys, tmp_path):
        from repro.eval.cli import main

        code = main(
            ["fig8", "--iterations", "5", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert (tmp_path / "fig8.txt").exists()

    def test_cli_rejects_unknown_target(self):
        from repro.eval.cli import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
