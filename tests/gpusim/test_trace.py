"""Kernel tracing / profiling support in the cost ledger."""

import pytest

from repro import IGKway, PartitionConfig
from repro.gpusim import CostLedger, GpuContext
from repro.graph import EdgeInsert, ModifierBatch, circuit_graph


class TestLedgerTrace:
    def test_disabled_by_default(self):
        ledger = CostLedger()
        with ledger.kernel("k1"):
            ledger.charge_instructions(10)
        assert ledger.kernel_trace == []

    def test_records_when_enabled(self):
        ledger = CostLedger()
        ledger.enable_trace()
        with ledger.kernel("k1"):
            ledger.charge_instructions(10)
            ledger.charge_transactions(3)
        assert len(ledger.kernel_trace) == 1
        record = ledger.kernel_trace[0]
        assert record.name == "k1"
        assert record.warp_instructions == 10
        assert record.transactions == 3
        assert record.seconds > 0

    def test_section_attribution(self):
        ledger = CostLedger()
        ledger.enable_trace()
        with ledger.section("modification"):
            with ledger.kernel("k1"):
                pass
        assert ledger.kernel_trace[0].section == "modification"

    def test_top_kernels_aggregates(self):
        ledger = CostLedger()
        ledger.enable_trace()
        for _ in range(3):
            with ledger.kernel("hot"):
                ledger.charge_instructions(10**6)
        with ledger.kernel("cold"):
            ledger.charge_instructions(1)
        top = ledger.top_kernels()
        assert top[0][0] == "hot"
        assert top[0][2] == 3
        assert top[0][1] > top[1][1]

    def test_top_kernels_limit(self):
        ledger = CostLedger()
        ledger.enable_trace()
        for i in range(5):
            with ledger.kernel(f"k{i}"):
                pass
        assert len(ledger.top_kernels(limit=2)) == 2

    def test_format_trace(self):
        ledger = CostLedger()
        ledger.enable_trace()
        with ledger.kernel("alpha"):
            ledger.charge_instructions(100)
        text = ledger.format_trace()
        assert "alpha" in text
        assert "launches" in text

    def test_format_trace_empty(self):
        assert "no kernels traced" in CostLedger().format_trace()

    def test_disable_stops_recording(self):
        ledger = CostLedger()
        ledger.enable_trace()
        with ledger.kernel("a"):
            pass
        ledger.disable_trace()
        with ledger.kernel("b"):
            pass
        assert [r.name for r in ledger.kernel_trace] == ["a"]

    def test_reset_clears_trace(self):
        ledger = CostLedger()
        ledger.enable_trace()
        with ledger.kernel("a"):
            pass
        ledger.reset()
        assert ledger.kernel_trace == []


class TestEndToEndProfile:
    @pytest.mark.parametrize("mode", ["warp", "vector"])
    def test_incremental_iteration_names_kernels(self, mode):
        csr = circuit_graph(300, 1.4, seed=1)
        ctx = GpuContext()
        ctx.ledger.enable_trace()
        ig = IGKway(csr, PartitionConfig(k=2, seed=1, mode=mode), ctx=ctx)
        ig.full_partition()
        ig.apply(ModifierBatch([EdgeInsert(0, 250), EdgeInsert(1, 200)]))
        names = {record.name for record in ctx.ledger.kernel_trace}
        assert "apply-modifiers" in names
        assert "affected-dispatch" in names
        # FGP kernels are named too (the warp path uses the
        # lane-faithful matching/gain kernels).
        if mode == "warp":
            assert "uf-match-select" in names
            assert "refine-gains" in names
        else:
            assert "uf-match" in names
            assert "refine-pass" in names
        assert "contract" in names

    def test_profile_identifies_dispatch_cost(self):
        """On larger graphs the |V|-warp dispatch tops the incremental
        profile — the documented scaling behavior."""
        csr = circuit_graph(3000, 1.4, seed=1)
        ctx = GpuContext()
        ig = IGKway(csr, PartitionConfig(k=2, seed=1), ctx=ctx)
        ig.full_partition()
        ctx.ledger.enable_trace()
        ig.apply(ModifierBatch([EdgeInsert(0, 2500)]))
        top = ctx.ledger.top_kernels(limit=3)
        assert any(name == "affected-dispatch" for name, _s, _c in top)
