"""GpuContext launch bookkeeping and parallel cost pricing."""

import numpy as np
import pytest

from repro.gpusim import TINY_GPU, GpuContext
from repro.gpusim.atomics import (
    atomic_add,
    atomic_cas,
    atomic_exch,
    atomic_max,
    atomic_min,
    atomic_sub,
)
from repro.gpusim.kernel import launch_threads, launch_warps


class TestWaves:
    def test_resident_warps(self):
        ctx = GpuContext(TINY_GPU)
        assert ctx.resident_warps == TINY_GPU.sm_count * TINY_GPU.warps_per_sm

    def test_waves_rounding(self):
        ctx = GpuContext(TINY_GPU)  # 4 resident warps
        assert ctx.waves(0) == 0
        assert ctx.waves(1) == 1
        assert ctx.waves(4) == 1
        assert ctx.waves(5) == 2

    def test_wavefront_throughput_bound(self):
        ctx = GpuContext(TINY_GPU)
        ctx.charge_wavefront(100, instructions_per_warp=10)
        assert ctx.ledger.total.warp_instructions == 1000

    def test_wavefront_latency_bound_for_tiny_grid(self):
        ctx = GpuContext(TINY_GPU)  # sm_count = 2
        ctx.charge_wavefront(1, instructions_per_warp=10)
        # One warp occupies one SM: counts sm_count-fold.
        assert ctx.ledger.total.warp_instructions == 20

    def test_wavefront_transactions_sum(self):
        ctx = GpuContext(TINY_GPU)
        ctx.charge_wavefront(7, 1, transactions_per_warp=3)
        assert ctx.ledger.total.transactions == 21

    def test_wavefront_zero_warps_noop(self):
        ctx = GpuContext(TINY_GPU)
        ctx.charge_wavefront(0, 100, 100)
        assert ctx.ledger.total.warp_instructions == 0


class TestIrregularWarps:
    def test_balanced_total(self):
        ctx = GpuContext(TINY_GPU)
        ctx.charge_irregular_warps([10] * 100)
        assert ctx.ledger.total.warp_instructions == 1000

    def test_critical_path_dominates(self):
        ctx = GpuContext(TINY_GPU)  # sm_count = 2
        ctx.charge_irregular_warps([1, 1, 1000])
        assert ctx.ledger.total.warp_instructions == 2000

    def test_empty_noop(self):
        ctx = GpuContext(TINY_GPU)
        ctx.charge_irregular_warps([])
        assert ctx.ledger.total.warp_instructions == 0

    def test_transactions_optional(self):
        ctx = GpuContext(TINY_GPU)
        ctx.charge_irregular_warps([5, 5], [2, 3])
        assert ctx.ledger.total.transactions == 5


class TestLaunchWarps:
    def test_body_runs_per_item(self, ctx):
        seen = []
        launch_warps(ctx, [10, 20, 30], lambda warp, item: seen.append(item))
        assert seen == [10, 20, 30]

    def test_charges_one_launch(self, ctx):
        launch_warps(ctx, [1, 2], lambda warp, item: None)
        assert ctx.ledger.total.kernel_launches == 1

    def test_empty_grid(self, ctx):
        launch_warps(ctx, [], lambda warp, item: None)
        assert ctx.ledger.total.kernel_launches == 1
        assert ctx.ledger.total.warp_instructions == 0

    def test_reprices_to_critical_path(self):
        ctx = GpuContext(TINY_GPU)  # sm_count = 2

        def body(warp, item):
            warp.charge(instructions=item)

        launch_warps(ctx, [100, 1], body)
        # sum = 101, longest * sm_count = 200 -> 200 wins.
        assert ctx.ledger.total.warp_instructions == 200


class TestLaunchThreads:
    def test_body_gets_index_and_item(self, ctx):
        seen = []
        launch_threads(ctx, ["a", "b"], lambda i, item: seen.append((i, item)))
        assert seen == [(0, "a"), (1, "b")]

    def test_charges_by_warp_groups(self, ctx):
        launch_threads(ctx, list(range(33)), lambda i, item: None)
        # 33 threads = 2 warps.
        assert ctx.ledger.total.transactions >= 2


class TestAtomics:
    def test_add_returns_old(self, ctx):
        arr = np.array([5])
        assert atomic_add(ctx, arr, 0, 3) == 5
        assert arr[0] == 8

    def test_sub_returns_old(self, ctx):
        arr = np.array([5])
        assert atomic_sub(ctx, arr, 0, 2) == 5
        assert arr[0] == 3

    def test_max_keeps_larger(self, ctx):
        arr = np.array([5])
        atomic_max(ctx, arr, 0, 3)
        assert arr[0] == 5
        atomic_max(ctx, arr, 0, 9)
        assert arr[0] == 9

    def test_min_keeps_smaller(self, ctx):
        arr = np.array([5])
        atomic_min(ctx, arr, 0, 7)
        assert arr[0] == 5
        atomic_min(ctx, arr, 0, 1)
        assert arr[0] == 1

    def test_cas_swaps_on_match(self, ctx):
        arr = np.array([5])
        assert atomic_cas(ctx, arr, 0, 5, 99) == 5
        assert arr[0] == 99

    def test_cas_noop_on_mismatch(self, ctx):
        arr = np.array([5])
        assert atomic_cas(ctx, arr, 0, 4, 99) == 5
        assert arr[0] == 5

    def test_exch(self, ctx):
        arr = np.array([1])
        assert atomic_exch(ctx, arr, 0, 2) == 1
        assert arr[0] == 2

    def test_atomics_are_charged(self, ctx):
        arr = np.array([0])
        for _ in range(5):
            atomic_add(ctx, arr, 0, 1)
        assert ctx.ledger.total.atomic_ops == 5
