"""Device-wide parallel primitives: correctness and cost charging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GpuContext
from repro.gpusim.primitives import (
    compact,
    exclusive_scan,
    inclusive_scan,
    reduce_max,
    reduce_sum,
    segmented_inclusive_scan,
    sort_by_key,
)


class TestScans:
    def test_inclusive_matches_cumsum(self, ctx):
        values = np.array([3, 1, 4, 1, 5])
        assert np.array_equal(
            inclusive_scan(ctx, values), np.cumsum(values)
        )

    def test_exclusive_shifts(self, ctx):
        values = np.array([3, 1, 4])
        assert np.array_equal(
            exclusive_scan(ctx, values), np.array([0, 3, 4])
        )

    def test_empty_input(self, ctx):
        assert inclusive_scan(ctx, np.array([], dtype=np.int64)).size == 0
        assert exclusive_scan(ctx, np.array([], dtype=np.int64)).size == 0

    def test_single_element(self, ctx):
        assert exclusive_scan(ctx, np.array([7]))[0] == 0

    def test_charges_kernel(self, ctx):
        inclusive_scan(ctx, np.arange(100))
        assert ctx.ledger.total.kernel_launches == 1
        assert ctx.ledger.total.warp_instructions > 0

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_inclusive_property(self, values):
        ctx = GpuContext()
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(inclusive_scan(ctx, arr), np.cumsum(arr))


class TestSegmentedScan:
    def test_figure5_example(self, ctx):
        # Figure 5: two moves, two partitions, unit weights.
        # delta_p_wgt = [1, 0 | 0, 1]  (move 1 -> p1, move 2 -> p2)
        delta = np.array([1, 0, 0, 1])
        segments = np.array([0, 0, 1, 1])
        got = segmented_inclusive_scan(ctx, delta, segments)
        assert np.array_equal(got, np.array([1, 1, 0, 1]))

    def test_restarts_at_boundaries(self, ctx):
        values = np.array([1, 2, 3, 4, 5, 6])
        segments = np.array([0, 0, 1, 1, 1, 2])
        got = segmented_inclusive_scan(ctx, values, segments)
        assert np.array_equal(got, np.array([1, 3, 3, 7, 12, 6]))

    def test_single_segment_is_plain_scan(self, ctx):
        values = np.arange(10)
        got = segmented_inclusive_scan(ctx, values, np.zeros(10, int))
        assert np.array_equal(got, np.cumsum(values))

    def test_all_singleton_segments(self, ctx):
        values = np.array([5, 6, 7])
        got = segmented_inclusive_scan(ctx, values, np.arange(3))
        assert np.array_equal(got, values)

    def test_empty(self, ctx):
        got = segmented_inclusive_scan(
            ctx, np.array([], dtype=int), np.array([], dtype=int)
        )
        assert got.size == 0

    def test_mismatched_shapes_raise(self, ctx):
        with pytest.raises(ValueError):
            segmented_inclusive_scan(ctx, np.arange(3), np.arange(4))

    def test_unsorted_segments_raise(self, ctx):
        with pytest.raises(ValueError):
            segmented_inclusive_scan(
                ctx, np.arange(3), np.array([1, 0, 1])
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_against_reference(self, pairs):
        ctx = GpuContext()
        pairs.sort(key=lambda p: p[0])
        segments = np.array([p[0] for p in pairs], dtype=np.int64)
        values = np.array([p[1] for p in pairs], dtype=np.int64)
        got = segmented_inclusive_scan(ctx, values, segments)
        expected = np.zeros_like(values)
        running = {}
        for i, (seg, val) in enumerate(zip(segments, values)):
            running[seg] = running.get(seg, 0) + val
            expected[i] = running[seg]
        assert np.array_equal(got, expected)


class TestSortByKey:
    def test_ascending(self, ctx):
        keys, values = sort_by_key(
            ctx, np.array([3, 1, 2]), np.array([30, 10, 20])
        )
        assert np.array_equal(keys, [1, 2, 3])
        assert np.array_equal(values, [10, 20, 30])

    def test_descending(self, ctx):
        keys, values = sort_by_key(
            ctx, np.array([3, 1, 2]), np.array([30, 10, 20]),
            descending=True,
        )
        assert np.array_equal(keys, [3, 2, 1])
        assert np.array_equal(values, [30, 20, 10])

    def test_stable_on_ties(self, ctx):
        keys, values = sort_by_key(
            ctx, np.array([1, 1, 1]), np.array([0, 1, 2]), descending=True
        )
        assert np.array_equal(values, [0, 1, 2])

    def test_keys_only(self, ctx):
        keys, values = sort_by_key(ctx, np.array([2, 1]))
        assert values is None
        assert np.array_equal(keys, [1, 2])

    def test_charges_four_passes(self, ctx):
        sort_by_key(ctx, np.arange(100))
        # 4 radix passes + 4 digit-histogram scans.
        assert ctx.ledger.total.kernel_launches == 8


class TestCompactReduce:
    def test_compact_keeps_predicate(self, ctx):
        values = np.arange(10)
        got = compact(ctx, values, values % 2 == 0)
        assert np.array_equal(got, [0, 2, 4, 6, 8])

    def test_compact_preserves_order(self, ctx):
        values = np.array([5, 3, 8, 1])
        got = compact(ctx, values, np.array([True, False, True, True]))
        assert np.array_equal(got, [5, 8, 1])

    def test_compact_length_mismatch(self, ctx):
        with pytest.raises(ValueError):
            compact(ctx, np.arange(3), np.ones(4, bool))

    def test_reduce_sum(self, ctx):
        assert reduce_sum(ctx, np.arange(10)) == 45

    def test_reduce_sum_empty(self, ctx):
        assert reduce_sum(ctx, np.array([], dtype=int)) == 0

    def test_reduce_max(self, ctx):
        assert reduce_max(ctx, np.array([3, 9, 1])) == 9

    def test_reduce_max_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            reduce_max(ctx, np.array([], dtype=int))
