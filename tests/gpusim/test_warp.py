"""Warp primitive semantics (CUDA-conformant behavior)."""

import numpy as np
import pytest

from repro.gpusim import FULL_MASK, WARP_SIZE, GpuContext, Warp, ffs, popc


@pytest.fixture
def warp(ctx):
    return Warp(ctx)


class TestFfs:
    def test_zero_returns_zero(self):
        assert ffs(0) == 0

    def test_bit_zero_is_position_one(self):
        assert ffs(0b1) == 1

    def test_least_significant_wins(self):
        assert ffs(0b1010_1000) == 4

    def test_high_bit(self):
        assert ffs(1 << 31) == 32

    def test_paper_slot_convention(self):
        # The paper computes slot = __ffs(ballot) - 1: no empty slot -> -1.
        assert ffs(0) - 1 == -1
        assert ffs(0b100) - 1 == 2


class TestPopc:
    def test_zero(self):
        assert popc(0) == 0

    def test_full_mask(self):
        assert popc(FULL_MASK) == 32

    def test_mixed(self):
        assert popc(0b1011) == 3

    def test_truncates_to_32_bits(self):
        assert popc((1 << 40) | 0b11) == 2


class TestBallotSync:
    def test_all_true(self, warp):
        assert warp.ballot_sync(FULL_MASK, np.ones(32, bool)) == FULL_MASK

    def test_all_false(self, warp):
        assert warp.ballot_sync(FULL_MASK, np.zeros(32, bool)) == 0

    def test_single_lane(self, warp):
        pred = np.zeros(32, bool)
        pred[7] = True
        assert warp.ballot_sync(FULL_MASK, pred) == 1 << 7

    def test_mask_excludes_lanes(self, warp):
        pred = np.ones(32, bool)
        mask = 0b1111
        assert warp.ballot_sync(mask, pred) == 0b1111

    def test_wrong_shape_raises(self, warp):
        with pytest.raises(ValueError):
            warp.ballot_sync(FULL_MASK, np.ones(16, bool))

    def test_charges_one_instruction(self, ctx):
        warp = Warp(ctx)
        before = ctx.ledger.total.warp_instructions
        warp.ballot_sync(FULL_MASK, np.zeros(32, bool))
        assert ctx.ledger.total.warp_instructions == before + 1

    def test_ballot_then_ffs_finds_first_empty(self, warp):
        # The Algorithm 1 idiom: first lane whose slot is empty.
        slots = np.arange(32)
        empty = slots >= 29  # lanes 29..31 empty
        mask = warp.ballot_sync(FULL_MASK, empty)
        assert ffs(mask) - 1 == 29


class TestAnyAllSync:
    def test_any_true(self, warp):
        pred = np.zeros(32, bool)
        pred[31] = True
        assert warp.any_sync(FULL_MASK, pred)

    def test_any_false(self, warp):
        assert not warp.any_sync(FULL_MASK, np.zeros(32, bool))

    def test_any_respects_mask(self, warp):
        pred = np.zeros(32, bool)
        pred[31] = True
        assert not warp.any_sync(0x7FFFFFFF, pred)

    def test_all_true(self, warp):
        assert warp.all_sync(FULL_MASK, np.ones(32, bool))

    def test_all_false_single(self, warp):
        pred = np.ones(32, bool)
        pred[3] = False
        assert not warp.all_sync(FULL_MASK, pred)

    def test_all_respects_mask(self, warp):
        pred = np.ones(32, bool)
        pred[3] = False
        assert warp.all_sync(FULL_MASK & ~(1 << 3), pred)


class TestShflReduce:
    def test_shfl_broadcasts(self, warp):
        values = np.arange(32) * 10
        assert warp.shfl_sync(FULL_MASK, values, 5) == 50

    def test_shfl_out_of_range(self, warp):
        with pytest.raises(ValueError):
            warp.shfl_sync(FULL_MASK, np.arange(32), 32)

    def test_reduce_min(self, warp):
        values = np.arange(32) + 7
        assert warp.reduce_min_sync(FULL_MASK, values) == 7

    def test_reduce_min_masked(self, warp):
        values = np.arange(32)
        assert warp.reduce_min_sync(0xFFFF0000, values) == 16

    def test_reduce_add(self, warp):
        assert warp.reduce_add_sync(FULL_MASK, np.ones(32)) == 32


class TestLoadStore:
    def test_load_gathers(self, warp):
        arr = np.arange(100)
        got = warp.load(arr, np.arange(32) + 10)
        assert np.array_equal(got, np.arange(32) + 10)

    def test_coalesced_load_is_one_transaction(self, ctx):
        warp = Warp(ctx)
        arr = np.arange(64)
        before = ctx.ledger.total.transactions
        warp.load(arr, np.arange(32))
        assert ctx.ledger.total.transactions == before + 1

    def test_scattered_load_is_many_transactions(self, ctx):
        warp = Warp(ctx)
        arr = np.zeros(32 * 64, dtype=np.int64)
        before = ctx.ledger.total.transactions
        warp.load(arr, np.arange(32) * 64)  # every index a new segment
        assert ctx.ledger.total.transactions == before + 32

    def test_store_scatters(self, warp):
        arr = np.zeros(64, dtype=np.int64)
        warp.store(arr, np.arange(32), np.arange(32) + 1)
        assert np.array_equal(arr[:32], np.arange(32) + 1)
        assert np.all(arr[32:] == 0)

    def test_lane_id_is_identity(self, warp):
        assert np.array_equal(warp.lane_id, np.arange(WARP_SIZE))
