"""Device-memory accounting in GpuContext."""

import pytest

from repro import IGKway, PartitionConfig
from repro.graph import circuit_graph
from repro.gpusim import A6000, TINY_GPU, GpuContext
from repro.utils import CapacityError


class TestAllocate:
    def test_tracks_usage(self):
        ctx = GpuContext()
        ctx.allocate("a", 1000)
        ctx.allocate("b", 500)
        assert ctx.allocated_bytes == 1500
        assert ctx.peak_allocated_bytes == 1500

    def test_free_releases(self):
        ctx = GpuContext()
        ctx.allocate("a", 1000)
        ctx.free("a")
        assert ctx.allocated_bytes == 0
        assert ctx.peak_allocated_bytes == 1000  # peak persists

    def test_duplicate_name_rejected(self):
        ctx = GpuContext()
        ctx.allocate("a", 10)
        with pytest.raises(ValueError):
            ctx.allocate("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(KeyError):
            GpuContext().free("nope")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GpuContext().allocate("a", -1)

    def test_capacity_enforced(self):
        ctx = GpuContext(TINY_GPU)  # 0.001 GB = 1e6 bytes
        ctx.allocate("big", 900_000)
        with pytest.raises(CapacityError):
            ctx.allocate("more", 200_000)

    def test_reallocate_resizes(self):
        ctx = GpuContext()
        ctx.reallocate("a", 100)
        ctx.reallocate("a", 300)
        assert ctx.allocations["a"] == 300

    def test_a6000_capacity(self):
        assert A6000.memory_gbytes == 48.0


class TestPartitionerFootprint:
    def test_igkway_registers_structures(self):
        csr = circuit_graph(500, 1.4, seed=1)
        ctx = GpuContext()
        ig = IGKway(csr, PartitionConfig(k=2, seed=1), ctx=ctx)
        ig.full_partition()
        assert "bucket_list" in ctx.allocations
        assert "partition" in ctx.allocations
        assert ctx.allocations["bucket_list"] == ig.graph.nbytes()

    def test_baseline_reallocates_per_iteration(self):
        from repro import GKwayDagger
        from repro.graph import EdgeInsert, ModifierBatch

        csr = circuit_graph(500, 1.4, seed=1)
        ctx = GpuContext()
        bl = GKwayDagger(csr, PartitionConfig(k=2, seed=1), ctx=ctx)
        bl.full_partition()
        before = ctx.allocations["csr"]
        bl.apply(ModifierBatch([EdgeInsert(0, 400)]))
        after = ctx.allocations["csr"]
        assert after > before  # one more edge -> bigger CSR

    def test_oversized_graph_rejected_on_tiny_device(self):
        csr = circuit_graph(2000, 1.4, seed=1)
        ctx = GpuContext(TINY_GPU)
        ig = IGKway(csr, PartitionConfig(k=2, seed=1), ctx=ctx)
        with pytest.raises(CapacityError):
            ig.full_partition()
