"""Cost ledger and model behavior."""

import pytest

from repro.gpusim import A6000, TINY_GPU, CostLedger, CostModel, Counters


class TestCounters:
    def test_iadd_accumulates(self):
        a = Counters(kernel_launches=1, warp_instructions=10)
        b = Counters(kernel_launches=2, transactions=5)
        a += b
        assert a.kernel_launches == 3
        assert a.warp_instructions == 10
        assert a.transactions == 5

    def test_copy_is_independent(self):
        a = Counters(host_ops=7)
        b = a.copy()
        b.host_ops += 1
        assert a.host_ops == 7

    def test_diff(self):
        a = Counters(warp_instructions=100, h2d_bytes=50)
        base = Counters(warp_instructions=40)
        d = a.diff(base)
        assert d.warp_instructions == 60
        assert d.h2d_bytes == 50


class TestCostModel:
    def test_seconds_zero_for_empty(self):
        assert CostModel(A6000).seconds(Counters()) == 0.0

    def test_launch_overhead(self):
        model = CostModel(A6000)
        c = Counters(kernel_launches=10)
        assert model.seconds(c) == pytest.approx(
            10 * A6000.kernel_launch_overhead_s
        )

    def test_pcie_both_directions(self):
        model = CostModel(A6000)
        c = Counters(h2d_bytes=1000, d2h_bytes=500)
        assert model.seconds(c) == pytest.approx(
            1500 / A6000.pcie_bytes_per_second
        )

    def test_kernel_overlap_max_of_compute_and_memory(self):
        model = CostModel(A6000)
        compute_heavy = model.kernel_seconds(10**9, 1)
        memory_heavy = model.kernel_seconds(1, 10**9)
        both = model.kernel_seconds(10**9, 10**9)
        assert both == pytest.approx(max(compute_heavy, memory_heavy))

    def test_breakdown_sums_to_seconds(self):
        model = CostModel(TINY_GPU)
        c = Counters(
            kernel_launches=3,
            atomic_ops=100,
            h2d_bytes=10_000,
            host_ops=500,
            overlapped_kernel_seconds=0.25,
        )
        parts = model.breakdown(c)
        assert sum(parts.values()) == pytest.approx(model.seconds(c))


class TestCostLedger:
    def test_sections_are_separated(self):
        ledger = CostLedger()
        with ledger.section("modification"):
            ledger.charge_instructions(10)
        with ledger.section("partitioning"):
            ledger.charge_instructions(30)
        assert ledger.sections["modification"].warp_instructions == 10
        assert ledger.sections["partitioning"].warp_instructions == 30
        assert ledger.total.warp_instructions == 40

    def test_nested_sections_attribute_to_innermost(self):
        ledger = CostLedger()
        with ledger.section("outer"):
            with ledger.section("inner"):
                ledger.charge_transactions(5)
            ledger.charge_transactions(2)
        assert ledger.sections["inner"].transactions == 5
        assert ledger.sections["outer"].transactions == 2

    def test_default_section(self):
        ledger = CostLedger()
        ledger.charge_host_ops(9)
        assert ledger.sections[CostLedger.DEFAULT_SECTION].host_ops == 9

    def test_kernel_scope_overlaps(self):
        ledger = CostLedger()
        with ledger.kernel():
            ledger.charge_instructions(10**9)
            ledger.charge_transactions(1)
        # Overlapped kernel seconds equal the compute component (larger).
        expected = 10**9 / ledger.model.device.warp_instruction_rate
        assert ledger.total.overlapped_kernel_seconds == pytest.approx(
            expected
        )
        assert ledger.total.kernel_launches == 1

    def test_kernel_counts_launch(self):
        ledger = CostLedger()
        with ledger.kernel():
            pass
        with ledger.kernel():
            pass
        assert ledger.total.kernel_launches == 2

    def test_adjust_instructions_inside_kernel(self):
        ledger = CostLedger()
        with ledger.kernel():
            ledger.charge_instructions(100)
            ledger.adjust_instructions(-60)
        assert ledger.total.warp_instructions == 40

    def test_charges_ignore_nonpositive(self):
        ledger = CostLedger()
        ledger.charge_instructions(0)
        ledger.charge_transactions(-5)
        ledger.charge_h2d(0)
        assert ledger.total.warp_instructions == 0
        assert ledger.total.transactions == 0
        assert ledger.total.h2d_bytes == 0

    def test_snapshot_diff_isolates_interval(self):
        ledger = CostLedger()
        ledger.charge_instructions(10)
        snap = ledger.snapshot()
        ledger.charge_instructions(25)
        assert ledger.total.diff(snap).warp_instructions == 25

    def test_seconds_per_section(self):
        ledger = CostLedger()
        with ledger.section("a"):
            ledger.charge_h2d(10**6)
        assert ledger.seconds("a") > 0
        assert ledger.seconds("missing") == 0.0
        assert ledger.seconds() == pytest.approx(ledger.seconds("a"))

    def test_reset(self):
        ledger = CostLedger()
        ledger.charge_instructions(10)
        ledger.reset()
        assert ledger.total.warp_instructions == 0
        assert ledger.sections == {}

    def test_atomics_charged(self):
        ledger = CostLedger()
        ledger.charge_atomics(50)
        assert ledger.total.atomic_ops == 50
        assert ledger.seconds() > 0
