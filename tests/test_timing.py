"""``repro.utils.timing`` compat shim: nesting, threading, exceptions.

The shim's surface (``timed`` + ``collect_phase_times``) predates the
observability layer; these tests pin the semantics callers like
``benchmarks/bench_hotpath.py`` rely on now that it delegates to
:mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.utils.timing import collect_phase_times, timed


def test_noop_outside_collector():
    with timed("uncollected"):
        pass  # must not raise, must not record anywhere


def test_same_name_accumulates():
    with collect_phase_times() as phases:
        for _ in range(3):
            with timed("step"):
                time.sleep(0.001)
    assert set(phases) == {"step"}
    assert phases["step"] >= 0.003


def test_nested_brackets_both_recorded():
    with collect_phase_times() as phases:
        with timed("outer"):
            with timed("inner"):
                time.sleep(0.001)
    assert phases["outer"] >= phases["inner"] > 0


def test_nested_collectors_inner_wins_outer_restored():
    with collect_phase_times() as outer:
        with timed("before"):
            pass
        with collect_phase_times() as inner:
            with timed("shadowed"):
                pass
        with timed("after"):
            pass
    assert set(inner) == {"shadowed"}
    assert set(outer) == {"before", "after"}


def test_exception_in_bracket_still_records_and_unwinds():
    with collect_phase_times() as phases:
        with pytest.raises(ValueError):
            with timed("doomed"):
                raise ValueError("boom")
        # The collector survives the exception and keeps collecting.
        with timed("next"):
            pass
    assert set(phases) == {"doomed", "next"}


def test_exception_exits_collector_cleanly():
    with pytest.raises(ValueError):
        with collect_phase_times():
            raise ValueError("boom")
    # Collection is off again: brackets are no-ops.
    with timed("uncollected"):
        pass


def test_cross_thread_collector_raises():
    """Entering a collector while another thread's is active raises."""
    failures: list[BaseException] = []
    started = threading.Event()
    release = threading.Event()

    def holder():
        with collect_phase_times():
            started.set()
            release.wait(timeout=5)

    worker = threading.Thread(target=holder)
    worker.start()
    try:
        assert started.wait(timeout=5)
        with pytest.raises(RuntimeError, match="single-threaded"):
            with collect_phase_times():
                pass  # pragma: no cover - must not be reached
    finally:
        release.set()
        worker.join()
    # The other thread's collector is gone; this thread works again.
    with collect_phase_times() as phases:
        with timed("recovered"):
            pass
    assert set(phases) == {"recovered"}
