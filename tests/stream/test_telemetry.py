"""StreamTelemetry export ordering and registry publishing."""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry
from repro.stream.telemetry import StreamTelemetry


def _record(telemetry: StreamTelemetry, reason: str) -> None:
    telemetry.record_batch(
        reason=reason,
        raw_count=2,
        applied_count=1,
        cut=10,
        used_fallback=False,
        modeled_seconds=0.1,
        queue_depth=0,
    )


def test_flushes_by_reason_exports_sorted_regardless_of_order():
    """Two sessions flushing for the same reasons in a different order
    must serialize identically (checkpoint blobs are compared)."""
    a = StreamTelemetry()
    _record(a, "size")
    _record(a, "deadline")
    _record(a, "explicit")
    b = StreamTelemetry()
    _record(b, "explicit")
    _record(b, "deadline")
    _record(b, "size")
    assert json.dumps(a.as_dict(), sort_keys=False) == json.dumps(
        b.as_dict(), sort_keys=False
    )
    exported = list(a.as_dict()["flushes_by_reason"])
    assert exported == sorted(exported)


def test_as_dict_round_trips_through_restore():
    telemetry = StreamTelemetry()
    _record(telemetry, "size")
    _record(telemetry, "deadline")
    telemetry.record_ingest(queue_depth=5)
    restored = StreamTelemetry.restore(telemetry.as_dict())
    assert restored.as_dict() == telemetry.as_dict()


def test_publish_to_mirrors_counters_and_gauges():
    telemetry = StreamTelemetry()
    telemetry.record_ingest(queue_depth=3)
    _record(telemetry, "size")
    _record(telemetry, "size")
    registry = MetricsRegistry()
    telemetry.publish_to(registry)
    snapshot = registry.as_dict()
    assert snapshot["stream_ingested_total"] == 1
    assert snapshot["stream_batches_total"] == 2
    assert snapshot["stream_flushes_total_size"] == 2
    assert snapshot["stream_queue_depth"] == 0  # last record_batch depth
    assert snapshot["stream_max_queue_depth"] == 3
    # Republishing after more activity refreshes, not double-counts.
    _record(telemetry, "deadline")
    telemetry.publish_to(registry)
    snapshot = registry.as_dict()
    assert snapshot["stream_batches_total"] == 3
    assert snapshot["stream_flushes_total_deadline"] == 1
    # The registry export surfaces are ordered too.
    assert list(snapshot) == sorted(snapshot)
