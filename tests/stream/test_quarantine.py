"""Quarantine lifecycle and the session's graceful-degradation path."""

import numpy as np
import pytest

from repro import PartitionConfig
from repro.graph import EdgeInsert
from repro.graph.generators import circuit_graph
from repro.stream import StreamSession
from repro.stream.journal import StreamJournal
from repro.stream.quarantine import Quarantine
from repro.stream.scheduler import SchedulerConfig
from repro.utils import FaultInjector


class TestQuarantineUnit:
    def test_add_and_due(self):
        q = Quarantine(capacity=4, backoff_cycles=10.0)
        assert q.add(3, EdgeInsert(0, 1), "bad", now=0.0)
        assert len(q) == 1
        assert q.due(now=5.0) == []  # backoff not yet elapsed
        assert [e.seq for e in q.due(now=10.0)] == [3]
        assert [e.seq for e in q.due(now=0.0, force=True)] == [3]

    def test_overflow_refused(self):
        q = Quarantine(capacity=1)
        assert q.add(0, EdgeInsert(0, 1), "bad", now=0.0)
        assert not q.add(1, EdgeInsert(0, 2), "bad", now=0.0)
        assert q.is_full

    def test_duplicate_seq_is_idempotent(self):
        q = Quarantine(capacity=1)
        assert q.add(0, EdgeInsert(0, 1), "bad", now=0.0)
        assert q.add(0, EdgeInsert(0, 1), "bad again", now=0.0)
        assert len(q) == 1

    def test_failure_backoff_doubles_until_exhausted(self):
        q = Quarantine(capacity=4, max_attempts=3, backoff_cycles=10.0)
        q.add(0, EdgeInsert(0, 1), "bad", now=0.0)
        (entry,) = q.due(now=10.0)
        assert not q.record_failure(entry, "still bad", now=10.0)
        assert entry.attempts == 1
        assert entry.next_retry_cycles == 10.0 + 20.0
        assert not q.record_failure(entry, "still bad", now=30.0)
        assert q.record_failure(entry, "still bad", now=70.0)

    def test_meta_roundtrip_reanchors_backoff(self):
        q = Quarantine(capacity=4, max_attempts=5, backoff_cycles=7.0)
        q.add(2, EdgeInsert(1, 9), "bad", now=100.0)
        (entry,) = q.due(now=200.0, force=True)
        q.record_failure(entry, "still bad", now=200.0)
        meta = q.as_meta(now=205.0)
        restored = Quarantine.restore(meta, now=1000.0)
        (back,) = restored.due(now=10_000.0)
        assert back.seq == 2
        assert back.modifier == EdgeInsert(1, 9)
        assert back.attempts == 1
        # Persisted as a *relative* delay, re-anchored to the new clock.
        assert back.next_retry_cycles == pytest.approx(
            1000.0 + (214.0 - 205.0)
        )


def fresh_edges(graph, rng, count, taken):
    active = graph.active_vertices()
    mods = []
    while len(mods) < count:
        u = int(active[rng.integers(len(active))])
        v = int(active[rng.integers(len(active))])
        if u != v and (u, v) not in taken and not graph.has_edge(u, v):
            taken.add((u, v))
            taken.add((v, u))
            mods.append(EdgeInsert(u, v))
    return mods


def make_session(tmp_path=None, **overrides):
    csr = circuit_graph(300, edge_ratio=1.4, seed=11)
    kwargs = dict(
        scheduler=SchedulerConfig(target_batch_size=10),
        checkpoint_every=2,
        quarantine_backoff_cycles=1.0,
        escalate_after=3,
    )
    kwargs.update(overrides)
    session = StreamSession(
        csr,
        PartitionConfig(k=2, seed=11),
        journal_dir=None if tmp_path is None else tmp_path / "journal",
        **kwargs,
    )
    session.start()
    return session


class TestSessionDegradation:
    def test_poison_is_quarantined_and_healthy_applied(self):
        session = make_session()
        injector = FaultInjector(seed=5)
        rng = np.random.default_rng(6)
        graph = session.partitioner.graph
        poison = injector.duplicate_edge(graph)
        healthy = fresh_edges(graph, rng, 6, set())
        for mod in healthy[:3]:
            session.submit(mod)
        poison_seq = session.submit(poison)
        for mod in healthy[3:]:
            session.submit(mod)
        reports = session.drain()
        assert any(r.degraded for r in reports)
        assert any(r.quarantined_count for r in reports)
        for mod in healthy:
            assert session.partitioner.graph.has_edge(mod.u, mod.v)
        assert [e.seq for e in session.quarantine.entries.values()] == [
            poison_seq
        ]
        metrics = session.metrics()
        assert metrics["batch_failures"] >= 1
        assert metrics["quarantine_pending"] == 1

    def test_accounting_identity_holds_under_failures(self):
        session = make_session()
        injector = FaultInjector(seed=5)
        rng = np.random.default_rng(6)
        graph = session.partitioner.graph
        taken = set()
        for i in range(30):
            session.submit(fresh_edges(graph, rng, 1, taken)[0])
            if i % 7 == 3:
                session.submit(injector.missing_edge(graph))
        session.drain()
        m = session.metrics()
        assert m["ingested"] == (
            m["applied_modifiers"]
            + m["coalesced_dropped"]
            + m["dead_lettered"]
            + m["quarantine_pending"]
            + m["queue_depth"]
        )

    def test_exhausted_attempts_become_dead_letters(self, tmp_path):
        session = make_session(
            tmp_path, quarantine_max_attempts=1
        )
        injector = FaultInjector(seed=5)
        rng = np.random.default_rng(6)
        graph = session.partitioner.graph
        poison_seq = session.submit(injector.duplicate_edge(graph))
        taken = set()
        for _ in range(3):  # later flushes trigger the retries
            for mod in fresh_edges(graph, rng, 10, taken):
                session.submit(mod)
            session.drain()
        assert len(session.quarantine) == 0
        assert session.metrics()["dead_lettered"] == 1
        session.close()
        state = StreamJournal(tmp_path / "journal").load()
        assert list(state.dead_letters) == [poison_seq]

    def test_capacity_starved_modifiers_recover_after_pool_returns(self):
        session = make_session(quarantine_max_attempts=10)
        injector = FaultInjector(seed=5)
        rng = np.random.default_rng(6)
        graph = session.partitioner.graph
        active = graph.active_vertices()
        u = int(active[0])
        from repro.graph.bucketlist import EMPTY

        spare = int((graph.slots(u) == EMPTY).sum())
        overflow = []
        for v in active[1:]:
            v = int(v)
            if v != u and not graph.has_edge(u, v):
                overflow.append(EdgeInsert(u, v))
            if len(overflow) > spare:
                break
        with injector.pool_exhaustion(graph):
            for mod in overflow:
                session.submit(mod)
            session.drain()
        assert len(session.quarantine) > 0
        # Pool restored: the next flush retries and recovers them.
        for mod in fresh_edges(graph, rng, 3, set()):
            session.submit(mod)
        session.drain()
        assert len(session.quarantine) == 0
        assert session.metrics()["quarantine_recovered"] > 0
        for mod in overflow:
            assert session.partitioner.graph.has_edge(mod.u, mod.v)
        session.partitioner.validate()

    def test_repeated_failures_escalate_to_rebuild(self):
        session = make_session(escalate_after=2)
        injector = FaultInjector(seed=5)
        rng = np.random.default_rng(6)
        graph = session.partitioner.graph
        taken = set()
        for _ in range(3):
            for mod in fresh_edges(graph, rng, 9, taken):
                session.submit(mod)
            session.submit(injector.dead_vertex_op(graph))
            session.drain()
        metrics = session.metrics()
        assert metrics["escalations"] >= 1
        assert session.partitioner.fallbacks_taken >= 1  # the rebuild
        session.partitioner.validate()


class TestDegradedRecovery:
    def test_recovery_restores_quarantine_and_streak(self, tmp_path):
        session = make_session(tmp_path, quarantine_backoff_cycles=1e12)
        injector = FaultInjector(seed=5)
        rng = np.random.default_rng(6)
        graph = session.partitioner.graph
        taken = set()
        for mod in fresh_edges(graph, rng, 8, taken):
            session.submit(mod)
        poison_seq = session.submit(injector.duplicate_edge(graph))
        for mod in fresh_edges(graph, rng, 8, taken):
            session.submit(mod)
        session.drain()
        live = session.metrics()
        assert live["quarantine_pending"] == 1
        # Crash without close(): the degraded window forced a
        # checkpoint, so recovery replays the recorded decisions.
        session.journal.close()

        recovered = StreamSession.recover(tmp_path / "journal")
        assert [
            e.seq for e in recovered.quarantine.entries.values()
        ] == [poison_seq]
        assert recovered._consecutive_failures == (
            session._consecutive_failures
        )
        assert np.array_equal(
            recovered.partition, session.partition
        )
        metrics = recovered.metrics()
        assert metrics["quarantine_pending"] == 1
        assert metrics["ingested"] == (
            metrics["applied_modifiers"]
            + metrics["coalesced_dropped"]
            + metrics["dead_lettered"]
            + metrics["quarantine_pending"]
            + metrics["queue_depth"]
        )
        recovered.close()
