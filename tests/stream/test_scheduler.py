"""Batch scheduler: size target derivation and trigger evaluation."""

import pytest

from repro.core.adaptive import AdaptiveIGKway
from repro.partition import PartitionConfig
from repro.stream import BatchScheduler, SchedulerConfig, ledger_cycles


@pytest.fixture
def partitioner(small_circuit):
    adaptive = AdaptiveIGKway(
        small_circuit,
        PartitionConfig(k=2, seed=2),
        batch_threshold=0.1,
    )
    adaptive.full_partition()
    return adaptive


class TestSizeTarget:
    def test_explicit_target_wins(self, partitioner):
        scheduler = BatchScheduler(SchedulerConfig(target_batch_size=7))
        assert scheduler.size_target(partitioner) == 7

    def test_derived_from_batch_threshold(self, partitioner):
        # 0.75 headroom * 0.1 threshold * 300 vertices = 22.
        scheduler = BatchScheduler()
        assert scheduler.size_target(partitioner) == 22

    def test_headroom_scales_target(self, partitioner):
        scheduler = BatchScheduler(SchedulerConfig(batch_headroom=0.5))
        assert scheduler.size_target(partitioner) == 15

    def test_min_batch_size_floor(self, partitioner):
        scheduler = BatchScheduler(
            SchedulerConfig(batch_headroom=0.001, min_batch_size=3)
        )
        assert scheduler.size_target(partitioner) == 3


class TestTriggers:
    def test_empty_window_never_flushes(self, partitioner):
        scheduler = BatchScheduler(
            SchedulerConfig(target_batch_size=1, max_latency_cycles=1.0)
        )
        assert (
            scheduler.should_flush(partitioner, 0, None, 1e9) is None
        )

    def test_size_trigger_fires_at_target(self, partitioner):
        scheduler = BatchScheduler(SchedulerConfig(target_batch_size=5))
        assert (
            scheduler.should_flush(partitioner, 4, None, 0.0) is None
        )
        assert (
            scheduler.should_flush(partitioner, 5, None, 0.0) == "size"
        )

    def test_deadline_trigger_fires_after_wait(self, partitioner):
        scheduler = BatchScheduler(
            SchedulerConfig(
                target_batch_size=100, max_latency_cycles=1000.0
            )
        )
        assert (
            scheduler.should_flush(partitioner, 1, 0.0, 999.0) is None
        )
        assert (
            scheduler.should_flush(partitioner, 1, 0.0, 1000.0)
            == "deadline"
        )

    def test_deadline_disabled_by_default(self, partitioner):
        scheduler = BatchScheduler(
            SchedulerConfig(target_batch_size=100)
        )
        assert (
            scheduler.should_flush(partitioner, 1, 0.0, 1e18) is None
        )

    def test_size_beats_deadline(self, partitioner):
        scheduler = BatchScheduler(
            SchedulerConfig(target_batch_size=2, max_latency_cycles=1.0)
        )
        assert (
            scheduler.should_flush(partitioner, 2, 0.0, 1e9) == "size"
        )


class TestLedgerCycles:
    def test_cycles_track_charged_work(self, partitioner):
        ledger = partitioner.ctx.ledger
        before = ledger_cycles(ledger)
        with ledger.section("stream_ingest"):
            ledger.charge_host_ops(1000)
        assert ledger_cycles(ledger) > before


class TestConfigValidation:
    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(batch_headroom=0.0)
        with pytest.raises(ValueError):
            SchedulerConfig(batch_headroom=1.5)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(target_batch_size=0)
        with pytest.raises(ValueError):
            SchedulerConfig(min_batch_size=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_latency_cycles=0.0)
