"""Recovery journal: encoding, torn tails, compaction, corruption."""

import json

import numpy as np
import pytest

from repro import IGKway, PartitionConfig
from repro.graph import (
    EdgeDelete,
    EdgeInsert,
    VertexDelete,
    VertexInsert,
)
from repro.stream import StreamJournal
from repro.stream.journal import (
    decode_modifier,
    encode_modifier,
    trim_torn_tail,
)
from repro.utils import JournalError


@pytest.fixture
def partitioner(small_circuit):
    ig = IGKway(small_circuit, PartitionConfig(k=2, seed=2))
    ig.full_partition()
    return ig


class TestModifierCodec:
    @pytest.mark.parametrize(
        "modifier",
        [
            VertexInsert(5, weight=3),
            VertexDelete(7),
            EdgeInsert(1, 2, weight=4),
            EdgeDelete(8, 9),
        ],
    )
    def test_roundtrip(self, modifier):
        assert decode_modifier(encode_modifier(modifier)) == modifier

    def test_unknown_kind_rejected(self):
        with pytest.raises(JournalError, match="unknown"):
            decode_modifier({"t": "xx"})


class TestLogAndLoad:
    def test_load_without_checkpoint_raises(self, tmp_path):
        journal = StreamJournal(tmp_path / "j")
        with pytest.raises(JournalError, match="no checkpoint"):
            journal.load()

    def test_roundtrip_modifiers_and_flushes(
        self, partitioner, tmp_path
    ):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        mods = [EdgeInsert(0, 9), EdgeDelete(0, 9), VertexInsert(300)]
        for seq, mod in enumerate(mods):
            journal.log_modifier(seq, mod)
        journal.log_flush(0, 1, "size")
        journal.close()

        state = StreamJournal(tmp_path / "j").load()
        assert state.applied_seq == -1
        assert state.modifiers == {0: mods[0], 1: mods[1], 2: mods[2]}
        assert state.flushes == [(0, 1, "size", ())]
        assert state.max_logged_seq == 2

    def test_torn_tail_is_discarded(self, partitioner, tmp_path):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        journal.log_modifier(0, EdgeInsert(0, 9))
        journal.log_modifier(1, EdgeInsert(0, 10))
        journal.close()
        # Simulate a crash mid-write: the final line is half a record.
        with journal.log_path.open("a") as handle:
            handle.write('{"r":"m","s":2,"t":"ei","u":0,')

        state = StreamJournal(tmp_path / "j").load()
        assert sorted(state.modifiers) == [0, 1]

    def test_flush_referencing_unlogged_seq_raises(
        self, partitioner, tmp_path
    ):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        journal.log_modifier(0, EdgeInsert(0, 9))
        journal.log_flush(0, 3, "size")  # seqs 1-3 never logged
        journal.close()
        with pytest.raises(JournalError, match="unlogged"):
            StreamJournal(tmp_path / "j").load()

    def test_checkpoint_meta_roundtrip(self, partitioner, tmp_path):
        journal = StreamJournal(tmp_path / "j")
        meta = {"applied_seq": 12, "telemetry": {"ingested": 13}}
        journal.write_checkpoint(partitioner, meta)
        state = StreamJournal(tmp_path / "j").load()
        assert state.applied_seq == 12
        assert state.meta["telemetry"] == {"ingested": 13}
        assert state.meta["journal_format"] == 1

    def test_restored_partitioner_matches(self, partitioner, tmp_path):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        state = StreamJournal(tmp_path / "j").load()
        assert state.partitioner.cut_size() == partitioner.cut_size()
        assert np.array_equal(
            state.partitioner.partition, partitioner.partition
        )


class TestCompaction:
    def test_checkpoint_compacts_covered_records(
        self, partitioner, tmp_path
    ):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        for seq in range(6):
            journal.log_modifier(seq, EdgeInsert(0, 9 + seq))
        journal.log_flush(0, 3, "size")
        # One checkpoint covering seqs <= 3 is not enough to drop them:
        # the previous on-disk checkpoint (cursor -1) is the corruption
        # fallback and still needs every record to replay forward.
        journal.write_checkpoint(partitioner, {"applied_seq": 3})
        state = StreamJournal(tmp_path / "j").load()
        assert sorted(state.modifiers) == [4, 5]  # past the cursor
        assert journal.prev_checkpoint_path.exists()
        lines = [
            json.loads(line)
            for line in journal.log_path.read_text().splitlines()
        ]
        assert {rec["s"] for rec in lines if rec["r"] == "m"} == set(
            range(6)
        )
        # Once BOTH on-disk checkpoints cover seq 3, compaction drops
        # the covered records.
        journal.write_checkpoint(partitioner, {"applied_seq": 3})

        lines = [
            json.loads(line)
            for line in journal.log_path.read_text().splitlines()
        ]
        assert {rec["s"] for rec in lines if rec["r"] == "m"} == {4, 5}
        assert all(rec["r"] != "f" for rec in lines)
        journal.close()

        state = StreamJournal(tmp_path / "j").load()
        assert sorted(state.modifiers) == [4, 5]
        assert state.flushes == []

    def test_checkpoint_write_is_atomic(self, partitioner, tmp_path):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        # No stray temp files once the rename lands.
        leftovers = [
            p.name
            for p in (tmp_path / "j").iterdir()
            if "tmp" in p.name
        ]
        assert leftovers == []
        journal.close()

    def test_dead_letters_survive_compaction(
        self, partitioner, tmp_path
    ):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        journal.log_modifier(0, EdgeInsert(0, 9))
        journal.log_modifier(1, EdgeInsert(0, 10))
        journal.log_flush(0, 1, "size", excluded=[1])
        journal.log_dead_letter(1, EdgeInsert(0, 10), "poison")
        # Two checkpoints past the flush: every covered m/f record is
        # compacted away, but the rejection ledger must persist.
        journal.write_checkpoint(partitioner, {"applied_seq": 1})
        journal.write_checkpoint(partitioner, {"applied_seq": 1})
        journal.close()

        state = StreamJournal(tmp_path / "j").load()
        assert state.modifiers == {}
        assert state.flushes == []
        assert state.dead_letters == {1: "poison"}


class TestCheckpointCorruption:
    def test_corrupt_checkpoint_falls_back_to_previous(
        self, partitioner, tmp_path
    ):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": 3})
        journal.write_checkpoint(partitioner, {"applied_seq": 7})
        # Torn write: the newest checkpoint is half a file.
        with journal.checkpoint_path.open("rb+") as handle:
            handle.truncate(journal.checkpoint_path.stat().st_size // 3)
        state = StreamJournal(tmp_path / "j").load()
        assert state.applied_seq == 3  # the previous good checkpoint
        assert state.partitioner.cut_size() == partitioner.cut_size()
        journal.close()

    def test_both_checkpoints_corrupt_raises(
        self, partitioner, tmp_path
    ):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": 3})
        journal.write_checkpoint(partitioner, {"applied_seq": 7})
        journal.checkpoint_path.write_bytes(b"garbage")
        journal.prev_checkpoint_path.write_bytes(b"garbage")
        with pytest.raises(JournalError, match="checkpoint"):
            StreamJournal(tmp_path / "j").load()
        journal.close()

    def test_records_past_previous_cursor_are_kept(
        self, partitioner, tmp_path
    ):
        """Conservative compaction: the fallback checkpoint must still
        be able to replay forward after the newest one is lost."""
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        for seq in range(4):
            journal.log_modifier(seq, EdgeInsert(0, 9 + seq))
        journal.log_flush(0, 3, "size")
        journal.write_checkpoint(partitioner, {"applied_seq": 3})
        # Newest checkpoint (cursor 3) torn; fall back to cursor -1.
        with journal.checkpoint_path.open("rb+") as handle:
            handle.truncate(journal.checkpoint_path.stat().st_size // 3)
        state = StreamJournal(tmp_path / "j").load()
        assert state.applied_seq == -1
        assert sorted(state.modifiers) == [0, 1, 2, 3]
        assert state.flushes == [(0, 3, "size", ())]
        journal.close()


class TestTrimTornTail:
    def _log_two(self, partitioner, tmp_path):
        journal = StreamJournal(tmp_path / "j")
        journal.write_checkpoint(partitioner, {"applied_seq": -1})
        journal.log_modifier(0, EdgeInsert(0, 9))
        journal.log_modifier(1, EdgeInsert(0, 10))
        journal.close()
        return journal

    def test_clean_file_untouched(self, partitioner, tmp_path):
        journal = self._log_two(partitioner, tmp_path)
        before = journal.log_path.read_bytes()
        assert trim_torn_tail(journal.log_path) == 0
        assert journal.log_path.read_bytes() == before

    def test_missing_file_is_zero(self, tmp_path):
        assert trim_torn_tail(tmp_path / "absent.log") == 0

    def test_reports_bytes_removed(self, partitioner, tmp_path):
        journal = self._log_two(partitioner, tmp_path)
        torn = '{"r":"m","s":2,"t":"ei","u":0,'
        with journal.log_path.open("a") as handle:
            handle.write(torn)
        assert trim_torn_tail(journal.log_path) == len(torn)
        # Idempotent: the file is clean now.
        assert trim_torn_tail(journal.log_path) == 0

    def test_unterminated_valid_json_is_torn(
        self, partitioner, tmp_path
    ):
        # A complete JSON object with no trailing newline is still a
        # torn append: the newline is the commit marker.
        journal = self._log_two(partitioner, tmp_path)
        line = '{"r":"m","s":2,"t":"ei","u":0,"v":11}'
        with journal.log_path.open("a") as handle:
            handle.write(line)
        assert trim_torn_tail(journal.log_path) == len(line)
        state = StreamJournal(tmp_path / "j").load()
        assert sorted(state.modifiers) == [0, 1]

    def test_append_after_torn_tail_does_not_merge(
        self, partitioner, tmp_path
    ):
        journal = self._log_two(partitioner, tmp_path)
        with journal.log_path.open("a") as handle:
            handle.write('{"r":"m","s":2,"t":"ei","u":0,')
        # A recovered process appends: the torn line must be truncated
        # first, or the new record glues onto the half-written one.
        fresh = StreamJournal(tmp_path / "j")
        fresh.log_modifier(2, EdgeInsert(3, 14))
        fresh.close()
        state = StreamJournal(tmp_path / "j").load()
        assert state.modifiers[2] == EdgeInsert(3, 14)
        assert sorted(state.modifiers) == [0, 1, 2]
