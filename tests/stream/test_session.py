"""StreamSession: the full pipeline, including crash recovery.

The acceptance bar for the subsystem: kill a journaled session
mid-stream, recover it, finish the trace — final cut AND partition
vector must equal the uninterrupted run's exactly.
"""

import numpy as np
import pytest

from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeDelete, EdgeInsert, HostGraph
from repro.partition import PartitionConfig
from repro.stream import SchedulerConfig, StreamSession
from repro.utils import BackpressureError, StreamError
from repro.utils.seeding import make_rng


def _churn_stream(csr, seed=5, iterations=6, modifiers=25, flip=0.3):
    """Flat modifier stream with redundancy (edge-insert flip-flops)."""
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=iterations,
            modifiers_per_iteration=modifiers,
            seed=seed,
        ),
    )
    rng = make_rng(seed, "session-churn")
    stream = []
    for batch in trace:
        for mod in batch:
            stream.append(mod)
            if isinstance(mod, EdgeInsert) and rng.random() < flip:
                stream.append(EdgeDelete(mod.u, mod.v))
                stream.append(mod)
    return stream


def _session(csr, tmp_path=None, target=16, **kwargs):
    journal_dir = None if tmp_path is None else str(tmp_path / "j")
    return StreamSession(
        csr,
        PartitionConfig(k=2, seed=2),
        journal_dir=journal_dir,
        scheduler=SchedulerConfig(target_batch_size=target),
        **kwargs,
    )


class TestLifecycle:
    def test_submit_before_start_rejected(self, small_circuit):
        session = _session(small_circuit)
        with pytest.raises(StreamError, match="start"):
            session.submit(EdgeInsert(0, 250))

    def test_double_start_rejected(self, small_circuit):
        session = _session(small_circuit)
        session.start()
        with pytest.raises(StreamError, match="already started"):
            session.start()

    def test_context_manager_starts_and_drains(self, small_circuit):
        with _session(small_circuit) as session:
            session.submit(EdgeInsert(0, 250))
        assert session.queue.is_empty()
        assert session.telemetry.applied_modifiers == 1

    def test_flush_on_empty_queue_returns_none(self, small_circuit):
        session = _session(small_circuit)
        session.start()
        assert session.flush() is None

    def test_checkpoint_without_journal_rejected(self, small_circuit):
        session = _session(small_circuit)
        session.start()
        with pytest.raises(StreamError, match="journal"):
            session.checkpoint()


class TestScheduling:
    def test_size_trigger_bounds_queue_depth(self, small_circuit):
        session = _session(small_circuit, target=8)
        session.start()
        for mod in _churn_stream(small_circuit)[:40]:
            session.submit(mod)
            assert session.queue.depth < 8
        assert session.telemetry.flushes_by_reason.get("size", 0) >= 4

    def test_reports_cover_contiguous_seq_ranges(self, small_circuit):
        session = _session(small_circuit, target=1000)
        session.start()
        stream = _churn_stream(small_circuit)[:40]
        reports = []
        for i, mod in enumerate(stream):
            session.submit(mod)
            if i % 7 == 6:  # irregular window boundaries
                reports.append(session.flush())
        reports.extend(session.drain())
        # Walk every applied window: no gaps, no overlaps.
        next_seq = 0
        for report in reports:
            assert report.first_seq == next_seq
            assert report.last_seq >= report.first_seq
            next_seq = report.last_seq + 1
        assert next_seq == len(stream)
        assert session.applied_seq == session.queue.next_seq - 1

    def test_deadline_trigger_fires_from_ingest_clock(
        self, small_circuit
    ):
        # Ingest charges host ops, so the modeled clock advances even
        # without GPU work; a tiny deadline must fire on the next
        # submission after the window opens.
        session = StreamSession(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            scheduler=SchedulerConfig(
                target_batch_size=1000, max_latency_cycles=1.0
            ),
        )
        session.start()
        session.submit(EdgeInsert(0, 250))
        session.submit(EdgeInsert(0, 251))
        assert session.telemetry.flushes_by_reason.get("deadline", 0) >= 1

    def test_explicit_flush_reason_recorded(self, small_circuit):
        session = _session(small_circuit)
        session.start()
        session.submit(EdgeInsert(0, 250))
        report = session.flush()
        assert report.reason == "explicit"
        assert session.telemetry.flushes_by_reason == {"explicit": 1}


class TestBackpressure:
    def test_reject_policy_raises_and_counts(self, small_circuit):
        session = _session(
            small_circuit,
            target=1000,  # never auto-flush
            queue_capacity=4,
            policy="reject",
        )
        session.start()
        for i in range(4):
            session.submit(EdgeInsert(0, 250 + i))
        with pytest.raises(BackpressureError):
            session.submit(EdgeInsert(0, 299))
        assert session.telemetry.rejected == 1

    def test_block_policy_flushes_for_the_producer(self, small_circuit):
        session = _session(
            small_circuit,
            target=1000,
            queue_capacity=4,
            policy="block",
        )
        session.start()
        for i in range(9):
            session.submit(EdgeInsert(0, 250 + i))
        assert session.telemetry.rejected == 0
        assert (
            session.telemetry.flushes_by_reason.get("backpressure", 0)
            >= 2
        )


class TestGraphEquivalence:
    def test_streamed_graph_matches_reference(self, small_circuit):
        # Coalescing + scheduling never change the net graph: the
        # session's final adjacency equals a plain HostGraph replay of
        # the raw stream.
        stream = _churn_stream(small_circuit)
        session = _session(small_circuit, target=12)
        session.start()
        for mod in stream:
            session.submit(mod)
        session.drain()

        reference = HostGraph.from_csr(small_circuit)
        reference.apply_batch(stream)
        streamed = session.partitioner.graph.to_host_graph()
        assert streamed.adj == reference.adj
        assert streamed.active == reference.active
        assert session.telemetry.coalesced_dropped > 0


class TestTelemetry:
    def test_counters_add_up(self, small_circuit):
        stream = _churn_stream(small_circuit)
        session = _session(small_circuit, target=10)
        session.start()
        for mod in stream:
            session.submit(mod)
        session.drain()
        t = session.telemetry
        assert t.ingested == len(stream)
        assert t.applied_modifiers + t.coalesced_dropped == len(stream)
        assert 0.0 < t.coalescing_ratio < 1.0
        assert t.last_cut == session.cut_size()
        metrics = session.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["simulated_cycles"] > 0

    def test_fallback_events_surface(self, small_circuit):
        session = StreamSession(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            scheduler=SchedulerConfig(target_batch_size=40),
            batch_threshold=0.05,  # 15 modifiers on 300 vertices
        )
        session.start()
        for mod in _churn_stream(small_circuit)[:40]:
            session.submit(mod)
        session.drain()
        assert session.telemetry.fallback_events >= 1
        assert session.partitioner.fallbacks_taken >= 1


class TestCrashRecovery:
    def _run_uninterrupted(self, csr, stream):
        session = _session(csr, target=12)
        session.start()
        for mod in stream:
            session.submit(mod)
        session.drain()
        return session

    def test_recover_replays_to_identical_state(
        self, small_circuit, tmp_path
    ):
        stream = _churn_stream(small_circuit)
        crash_at = int(len(stream) * 0.6)

        crashed = _session(
            small_circuit, tmp_path, target=12, checkpoint_every=3
        )
        crashed.start()
        for mod in stream[:crash_at]:
            crashed.submit(mod)
        # Crash: no close(), no final checkpoint.  The journal holds a
        # stale checkpoint plus the logged suffix.
        backlog_at_crash = crashed.queue.depth
        del crashed

        recovered = StreamSession.recover(tmp_path / "j")
        assert recovered.queue.depth == backlog_at_crash
        for mod in stream[crash_at:]:
            recovered.submit(mod)
        recovered.drain()

        reference = self._run_uninterrupted(small_circuit, stream)
        assert recovered.cut_size() == reference.cut_size()
        assert np.array_equal(
            recovered.partition, reference.partition
        )
        assert recovered.telemetry.recoveries == 1
        assert recovered.telemetry.ingested == len(stream)
        recovered.close()

    def test_recover_after_clean_close_matches(
        self, small_circuit, tmp_path
    ):
        stream = _churn_stream(small_circuit)[:60]
        session = _session(
            small_circuit, tmp_path, target=12, checkpoint_every=4
        )
        session.start()
        for mod in stream:
            session.submit(mod)
        session.drain()
        session.close()

        recovered = StreamSession.recover(tmp_path / "j")
        assert recovered.queue.is_empty()
        assert recovered.cut_size() == session.cut_size()
        assert np.array_equal(recovered.partition, session.partition)
        recovered.close()

    def test_recover_restores_session_parameters(
        self, small_circuit, tmp_path
    ):
        session = StreamSession(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            journal_dir=str(tmp_path / "j"),
            queue_capacity=77,
            scheduler=SchedulerConfig(target_batch_size=9),
            checkpoint_every=5,
            batch_threshold=0.2,
        )
        session.start()
        session.close()

        recovered = StreamSession.recover(tmp_path / "j")
        assert recovered.queue.capacity == 77
        assert recovered.scheduler.config.target_batch_size == 9
        assert recovered.checkpoint_every == 5
        assert recovered.partitioner.batch_threshold == 0.2
        recovered.close()

    def test_recovered_session_continues_streaming(
        self, small_circuit, tmp_path
    ):
        stream = _churn_stream(small_circuit)
        session = _session(small_circuit, tmp_path, target=12)
        session.start()
        for mod in stream[:30]:
            session.submit(mod)
        session.close()

        recovered = StreamSession.recover(tmp_path / "j")
        for mod in stream[30:60]:
            recovered.submit(mod)
        recovered.drain()
        assert recovered.telemetry.ingested == 60
        # The combined graph equals a straight replay of the prefix.
        reference = HostGraph.from_csr(small_circuit)
        reference.apply_batch(stream[:60])
        streamed = recovered.partitioner.graph.to_host_graph()
        assert streamed.adj == reference.adj
        recovered.close()


class TestInjectableClock:
    def test_injected_clock_drives_deadline_trigger(self, small_circuit):
        # A fake clock decoupled from the ledger: the deadline window
        # opens at t=0 and the second submit arrives "late" only
        # because the injected clock says so.
        now = {"t": 0.0}
        session = StreamSession(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            scheduler=SchedulerConfig(
                target_batch_size=1000, max_latency_cycles=10.0
            ),
            clock=lambda: now["t"],
        )
        session.start()
        session.submit(EdgeInsert(0, 250))
        assert session.telemetry.flushes_by_reason.get("deadline", 0) == 0
        now["t"] = 100.0
        session.submit(EdgeInsert(0, 251))
        assert session.telemetry.flushes_by_reason.get("deadline", 0) >= 1

    def test_frozen_clock_never_fires_deadline(self, small_circuit):
        session = StreamSession(
            small_circuit,
            PartitionConfig(k=2, seed=2),
            scheduler=SchedulerConfig(
                target_batch_size=1000, max_latency_cycles=1.0
            ),
            clock=lambda: 0.0,
        )
        session.start()
        for i in range(20):
            session.submit(EdgeInsert(0, 200 + i))
        assert session.telemetry.flushes_by_reason.get("deadline", 0) == 0

    def test_default_clock_still_ledger_cycles(self, small_circuit):
        session = StreamSession(small_circuit, PartitionConfig(k=2, seed=2))
        session.start()
        before = session._clock()
        session.submit(EdgeInsert(0, 250))
        assert session._clock() >= before

    def test_recover_accepts_injected_clock(self, small_circuit, tmp_path):
        session = _session(small_circuit, tmp_path)
        session.start()
        session.submit(EdgeInsert(0, 250))
        session.close()
        recovered = StreamSession.recover(
            tmp_path / "j", clock=lambda: 123.0
        )
        assert recovered._clock() == 123.0
        recovered.close()


class TestSuspend:
    def test_suspend_requires_journal(self, small_circuit):
        session = _session(small_circuit)
        session.start()
        with pytest.raises(StreamError, match="without a journal"):
            session.suspend()

    def test_suspended_session_rejects_streaming_calls(
        self, small_circuit, tmp_path
    ):
        session = _session(small_circuit, tmp_path)
        session.start()
        session.submit(EdgeInsert(0, 250))
        session.suspend()
        with pytest.raises(StreamError, match="suspended"):
            session.submit(EdgeInsert(0, 251))
        with pytest.raises(StreamError, match="suspended"):
            session.flush()

    def test_suspend_preserves_queued_suffix_bit_identically(
        self, small_circuit, tmp_path
    ):
        stream = _churn_stream(small_circuit)
        # Interrupted: suspend with a queued (unflushed) suffix, then
        # recover and finish.
        session = _session(small_circuit, tmp_path, target=16)
        session.start()
        for mod in stream[:40]:
            session.submit(mod)
        assert session.queue.depth > 0  # a genuine suffix is pending
        session.suspend()
        recovered = StreamSession.recover(tmp_path / "j")
        for mod in stream[40:80]:
            recovered.submit(mod)
        recovered.drain()

        # Uninterrupted reference.
        reference = _session(
            small_circuit, tmp_path / "ref", target=16
        )
        reference.start()
        for mod in stream[:80]:
            reference.submit(mod)
        reference.drain()

        assert np.array_equal(
            recovered.partitioner.partition, reference.partitioner.partition
        )
        assert (
            recovered.partitioner.cut_size()
            == reference.partitioner.cut_size()
        )
        recovered.close()
        reference.close()
