"""Stream-side coalescer wrapper: windows in, validated batches out."""

import pytest

from repro.graph import EdgeDelete, EdgeInsert, VertexDelete
from repro.stream import Coalescer, SequencedModifier
from repro.utils import ModifierError, StreamError


def _window(mods, start=0):
    return [
        SequencedModifier(start + i, mod) for i, mod in enumerate(mods)
    ]


class TestCollapse:
    def test_covers_full_seq_range(self):
        result = Coalescer().collapse(
            _window(
                [EdgeInsert(0, 1), EdgeDelete(0, 1), EdgeInsert(2, 3)],
                start=7,
            )
        )
        assert (result.first_seq, result.last_seq) == (7, 9)
        assert [type(m).__name__ for m in result.batch] == ["EdgeInsert"]
        assert result.raw_count == 3
        assert result.dropped == 2

    def test_fully_cancelled_window_yields_empty_batch(self):
        result = Coalescer().collapse(
            _window([EdgeInsert(0, 1), EdgeDelete(0, 1)])
        )
        assert len(result.batch) == 0
        # The seq range still advances the journal cursor.
        assert (result.first_seq, result.last_seq) == (0, 1)

    def test_stats_passed_through(self):
        result = Coalescer().collapse(
            _window(
                [
                    EdgeInsert(0, 1),
                    EdgeInsert(0, 1),
                    EdgeInsert(0, 2),
                    VertexDelete(0),
                ]
            )
        )
        assert result.stats["deduplicated"] == 1
        assert result.stats["subsumed"] == 2
        assert result.stats["input"] == 4

    def test_empty_window_rejected(self):
        with pytest.raises(StreamError, match="empty window"):
            Coalescer().collapse([])

    def test_survivors_are_validated(self):
        # VertexDelete then an edge op on the same vertex survives
        # coalescing structurally but is an invalid batch.
        with pytest.raises(ModifierError, match="deleted earlier"):
            Coalescer().collapse(
                _window([VertexDelete(0), EdgeInsert(0, 1)])
            )
