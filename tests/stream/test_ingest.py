"""Bounded ingest queue: sequencing, backpressure, recovery requeue."""

import pytest

from repro.graph import EdgeInsert
from repro.stream import IngestQueue, SequencedModifier
from repro.utils import BackpressureError


class TestSequencing:
    def test_offers_assign_monotonic_seqs(self):
        queue = IngestQueue(capacity=8)
        seqs = [queue.offer(EdgeInsert(0, i + 1)) for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert queue.next_seq == 5
        assert queue.depth == 5

    def test_drain_preserves_fifo_order(self):
        queue = IngestQueue(capacity=8)
        mods = [EdgeInsert(0, i + 1) for i in range(4)]
        for mod in mods:
            queue.offer(mod)
        window = queue.drain()
        assert [sm.modifier for sm in window] == mods
        assert [sm.seq for sm in window] == [0, 1, 2, 3]
        assert queue.is_empty()

    def test_drain_with_limit_pops_oldest(self):
        queue = IngestQueue(capacity=8)
        for i in range(5):
            queue.offer(EdgeInsert(0, i + 1))
        window = queue.drain(2)
        assert [sm.seq for sm in window] == [0, 1]
        assert queue.depth == 3
        assert queue.peek_oldest().seq == 2

    def test_seq_survives_drain(self):
        queue = IngestQueue(capacity=4)
        queue.offer(EdgeInsert(0, 1))
        queue.drain()
        assert queue.offer(EdgeInsert(0, 2)) == 1


class TestBounds:
    def test_offer_raises_when_full(self):
        queue = IngestQueue(capacity=2)
        queue.offer(EdgeInsert(0, 1))
        queue.offer(EdgeInsert(0, 2))
        assert queue.is_full()
        with pytest.raises(BackpressureError):
            queue.offer(EdgeInsert(0, 3))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            IngestQueue(capacity=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            IngestQueue(policy="drop-oldest")


class TestRecoveryPaths:
    def test_requeue_restores_original_seqs(self):
        queue = IngestQueue(capacity=8)
        queue.requeue(10, EdgeInsert(0, 1))
        queue.requeue(12, EdgeInsert(0, 2))
        assert queue.depth == 2
        assert queue.next_seq == 13
        assert [sm.seq for sm in queue.drain()] == [10, 12]

    def test_requeue_out_of_order_rejected(self):
        queue = IngestQueue(capacity=8)
        queue.requeue(5, EdgeInsert(0, 1))
        with pytest.raises(ValueError, match="out of order"):
            queue.requeue(4, EdgeInsert(0, 2))

    def test_reserve_seq_only_advances(self):
        queue = IngestQueue(capacity=4)
        queue.reserve_seq(100)
        queue.reserve_seq(50)  # never goes backwards
        assert queue.offer(EdgeInsert(0, 1)) == 100

    def test_sequenced_modifier_is_frozen(self):
        sm = SequencedModifier(0, EdgeInsert(0, 1))
        with pytest.raises(Exception):
            sm.seq = 9
