"""METIS and edge-list file I/O."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    read_edge_list,
    read_metis,
    write_edge_list,
    write_metis,
)
from repro.utils import GraphConsistencyError


@pytest.fixture
def weighted_csr():
    return CSRGraph.from_edges(
        4,
        np.array([[0, 1], [1, 2], [2, 3], [0, 3]]),
        edge_weights=np.array([2, 3, 4, 5]),
        vertex_weights=np.array([1, 2, 3, 4]),
    )


class TestMetis:
    def test_roundtrip(self, weighted_csr, tmp_path):
        path = tmp_path / "g.graph"
        write_metis(weighted_csr, path)
        back = read_metis(path)
        back.validate()
        assert back.num_vertices == weighted_csr.num_vertices
        assert back.num_edges == weighted_csr.num_edges
        assert np.array_equal(back.vwgt, weighted_csr.vwgt)
        assert back.total_edge_weight() == weighted_csr.total_edge_weight()

    def test_roundtrip_circuit(self, small_circuit, tmp_path):
        path = tmp_path / "c.graph"
        write_metis(small_circuit, path)
        back = read_metis(path)
        assert back.num_edges == small_circuit.num_edges
        got_e, _ = back.edge_array()
        exp_e, _ = small_circuit.edge_array()
        assert np.array_equal(got_e, exp_e)

    def test_reads_unweighted_format(self, tmp_path):
        path = tmp_path / "plain.graph"
        path.write_text("3 2\n2 3\n1\n1\n")
        g = read_metis(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_reads_comments_and_blank_vertices(self, tmp_path):
        path = tmp_path / "comments.graph"
        path.write_text("% header comment\n3 1\n2\n1\n\n")
        g = read_metis(path)
        assert g.num_edges == 1
        assert g.degree(2) == 0

    def test_edge_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 5\n2\n1\n\n")
        with pytest.raises(GraphConsistencyError):
            read_metis(path)

    def test_out_of_range_neighbor_rejected(self, tmp_path):
        path = tmp_path / "oob.graph"
        path.write_text("2 1\n5\n1\n")
        with pytest.raises(GraphConsistencyError):
            read_metis(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("")
        with pytest.raises(GraphConsistencyError):
            read_metis(path)

    def test_conflicting_weights_rejected(self, tmp_path):
        path = tmp_path / "conflict.graph"
        path.write_text("2 1 001\n2 5\n1 7\n")
        with pytest.raises(GraphConsistencyError):
            read_metis(path)


class TestEdgeList:
    def test_roundtrip(self, weighted_csr, tmp_path):
        path = tmp_path / "g.edges"
        write_edge_list(weighted_csr, path)
        back = read_edge_list(path)
        assert back.num_edges == weighted_csr.num_edges
        assert back.total_edge_weight() == weighted_csr.total_edge_weight()

    def test_default_weight_one(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("3\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.total_edge_weight() == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("")
        with pytest.raises(GraphConsistencyError):
            read_edge_list(path)

    def test_isolated_vertices_preserved(self, tmp_path):
        path = tmp_path / "iso.edges"
        path.write_text("5\n0 1\n")
        g = read_edge_list(path)
        assert g.num_vertices == 5
        assert g.degree(4) == 0
