"""Bucket-list graph structure (Section V.A / Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    EMPTY,
    SLOTS_PER_BUCKET,
    BucketListGraph,
    CSRGraph,
    HostGraph,
    circuit_graph,
)
from repro.utils import CapacityError, GraphConsistencyError


class TestFromCsr:
    def test_bucket_count_formula(self, small_circuit):
        """ceil(D(u) / 32) + gamma buckets per vertex (Section V.A)."""
        for gamma in (0, 1, 3):
            graph = BucketListGraph.from_csr(small_circuit, gamma=gamma)
            degrees = small_circuit.degrees()
            for u in range(0, small_circuit.num_vertices, 29):
                expected = max(
                    1, -(-int(degrees[u]) // SLOTS_PER_BUCKET) + gamma
                )
                assert graph.bucket_count[u] == expected

    def test_neighbors_preserved(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        for u in range(0, small_circuit.num_vertices, 13):
            assert sorted(graph.neighbors(u).tolist()) == sorted(
                small_circuit.neighbors(u).tolist()
            )

    def test_weights_preserved(self):
        csr = CSRGraph.from_edges(
            3,
            np.array([[0, 1], [1, 2]]),
            edge_weights=np.array([5, 9]),
            vertex_weights=np.array([2, 3, 4]),
        )
        graph = BucketListGraph.from_csr(csr)
        assert graph.edge_weight(0, 1) == 5
        assert graph.edge_weight(2, 1) == 9
        assert graph.vwgt[2] == 4

    def test_all_active(self, tiny_bucketlist):
        assert tiny_bucketlist.num_active_vertices() == 4

    def test_validates(self, small_circuit):
        BucketListGraph.from_csr(small_circuit).validate()

    def test_roundtrip_to_csr(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        back, id_map = graph.to_csr()
        assert back.num_edges == small_circuit.num_edges
        assert np.array_equal(id_map, np.arange(small_circuit.num_vertices))

    def test_capacity_reserved(self, small_circuit):
        graph = BucketListGraph.from_csr(
            small_circuit, capacity_factor=2.0
        )
        assert graph.capacity >= 2 * small_circuit.num_vertices

    def test_high_degree_vertex_spans_buckets(self):
        # A star: hub has 70 neighbors -> needs 3 data buckets + gamma.
        edges = np.array([[0, i] for i in range(1, 71)])
        csr = CSRGraph.from_edges(71, edges)
        graph = BucketListGraph.from_csr(csr, gamma=1)
        assert graph.bucket_count[0] == 4
        assert graph.degree(0) == 70


class TestSlotGeometry:
    def test_slot_range_is_contiguous(self, tiny_bucketlist):
        start, n_slots = tiny_bucketlist.slot_range(1)
        assert n_slots == tiny_bucketlist.bucket_count[1] * SLOTS_PER_BUCKET
        assert start == tiny_bucketlist.bucket_start[1] * SLOTS_PER_BUCKET

    def test_slots_view_reflects_mutation(self, tiny_bucketlist):
        slots = tiny_bucketlist.slots(0)
        slots[0] = 99  # view, not copy
        assert tiny_bucketlist.slots(0)[0] == 99

    def test_slot_index_arrays(self, tiny_bucketlist):
        idx, owner = tiny_bucketlist.slot_index_arrays(np.array([0, 2]))
        n0 = tiny_bucketlist.bucket_count[0] * SLOTS_PER_BUCKET
        n2 = tiny_bucketlist.bucket_count[2] * SLOTS_PER_BUCKET
        assert idx.size == n0 + n2
        assert np.all(owner[:n0] == 0)
        assert np.all(owner[n0:] == 1)

    def test_slot_index_arrays_empty(self, tiny_bucketlist):
        idx, owner = tiny_bucketlist.slot_index_arrays(
            np.array([], dtype=np.int64)
        )
        assert idx.size == 0 and owner.size == 0

    def test_degrees_vectorized_matches_scalar(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        vec = graph.degrees()
        for u in range(0, graph.num_vertices, 7):
            assert vec[u] == graph.degree(u)


class TestAllocation:
    def test_allocate_bumps_tail(self, tiny_bucketlist):
        before = tiny_bucketlist.num_buckets_used
        start = tiny_bucketlist.allocate_buckets(2)
        assert start == before
        assert tiny_bucketlist.num_buckets_used == before + 2

    def test_allocated_buckets_are_blank(self, tiny_bucketlist):
        start = tiny_bucketlist.allocate_buckets(1)
        first = start * SLOTS_PER_BUCKET
        assert np.all(
            tiny_bucketlist.bucket_list[first : first + SLOTS_PER_BUCKET]
            == EMPTY
        )

    def test_pool_exhaustion_raises(self, tiny_csr):
        graph = BucketListGraph.from_csr(tiny_csr, pool_slack_buckets=1)
        graph.allocate_buckets(1)
        with pytest.raises(CapacityError):
            graph.allocate_buckets(1)

    def test_invalid_allocation_size(self, tiny_bucketlist):
        with pytest.raises(ValueError):
            tiny_bucketlist.allocate_buckets(0)

    def test_new_vertex_id_sequential(self, tiny_bucketlist):
        n = tiny_bucketlist.num_vertices
        assert tiny_bucketlist.new_vertex_id() == n
        assert tiny_bucketlist.new_vertex_id() == n + 1

    def test_vertex_capacity_exhaustion(self, tiny_csr):
        graph = BucketListGraph.from_csr(tiny_csr, capacity_factor=1.0)
        with pytest.raises(CapacityError):
            graph.new_vertex_id()


class TestRelocation:
    def test_relocate_preserves_neighbors(self, tiny_bucketlist):
        before = sorted(tiny_bucketlist.neighbors(2).tolist())
        old_count = int(tiny_bucketlist.bucket_count[2])
        tiny_bucketlist.relocate_with_extra_buckets(2, extra=2)
        assert sorted(tiny_bucketlist.neighbors(2).tolist()) == before
        assert tiny_bucketlist.bucket_count[2] == old_count + 2

    def test_relocate_blanks_old_region(self, tiny_bucketlist):
        old_start, old_slots = tiny_bucketlist.slot_range(2)
        tiny_bucketlist.relocate_with_extra_buckets(2)
        assert np.all(
            tiny_bucketlist.bucket_list[old_start : old_start + old_slots]
            == EMPTY
        )

    def test_relocate_keeps_weights(self):
        csr = CSRGraph.from_edges(
            2, np.array([[0, 1]]), edge_weights=np.array([5])
        )
        graph = BucketListGraph.from_csr(csr)
        graph.relocate_with_extra_buckets(0)
        assert graph.edge_weight(0, 1) == 5


class TestValidateFailures:
    def test_self_loop_detected(self, tiny_bucketlist):
        start, _ = tiny_bucketlist.slot_range(0)
        # Overwrite a filled slot with a self-reference.
        tiny_bucketlist.bucket_list[start] = 0
        with pytest.raises(GraphConsistencyError):
            tiny_bucketlist.validate()

    def test_asymmetry_detected(self, tiny_bucketlist):
        start, _ = tiny_bucketlist.slot_range(0)
        tiny_bucketlist.bucket_list[start] = 3  # 0 -> 3 without 3 -> 0
        with pytest.raises(GraphConsistencyError):
            tiny_bucketlist.validate()

    def test_deleted_with_neighbors_detected(self, tiny_bucketlist):
        tiny_bucketlist.vertex_status[0] = 0
        with pytest.raises(GraphConsistencyError):
            tiny_bucketlist.validate()

    def test_duplicate_neighbor_detected(self, tiny_bucketlist):
        values = tiny_bucketlist.slots(0)
        first = values[values != EMPTY][0]
        empty_pos = np.flatnonzero(values == EMPTY)[0]
        start, _ = tiny_bucketlist.slot_range(0)
        tiny_bucketlist.bucket_list[start + empty_pos] = first
        with pytest.raises(GraphConsistencyError):
            tiny_bucketlist.validate()


class TestStats:
    def test_fill_ratio_bounds(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        assert 0.0 < graph.fill_ratio() <= 1.0

    def test_num_edges_matches_csr(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        assert graph.num_edges() == small_circuit.num_edges

    def test_total_active_weight(self, small_circuit):
        graph = BucketListGraph.from_csr(small_circuit)
        assert (
            graph.total_active_weight()
            == small_circuit.total_vertex_weight()
        )

    def test_nbytes_positive(self, tiny_bucketlist):
        assert tiny_bucketlist.nbytes() > 0


class TestFromHostGraph:
    def test_preserves_deleted_ids(self, small_circuit):
        host = HostGraph.from_csr(small_circuit)
        from repro.graph.modifiers import VertexDelete

        host.apply(VertexDelete(5))
        graph = BucketListGraph.from_host_graph(host)
        assert not graph.is_active(5)
        assert graph.is_active(4)
        graph.validate()

    def test_roundtrip_host(self, small_circuit):
        host = HostGraph.from_csr(small_circuit)
        graph = BucketListGraph.from_host_graph(host)
        back = graph.to_host_graph()
        assert back.num_edges() == host.num_edges()
        for u in range(host.num_vertex_slots):
            assert back.adj[u] == host.adj[u]


@given(
    st.integers(0, 2),
    st.integers(33, 120),
    st.integers(0, 100_000),
)
@settings(max_examples=25, deadline=None)
def test_overflow_relocation_property(gamma, n_inserts, seed):
    """Inserting arbitrarily many edges on one vertex always succeeds
    through the relocation path, preserving every existing neighbor and
    all invariants, for any gamma."""
    from repro.core.modification import apply_ops_vector, SlotInsert
    from repro.gpusim import GpuContext

    csr = circuit_graph(max(n_inserts + 40, 60), 1.3, seed=seed)
    graph = BucketListGraph.from_csr(csr, gamma=gamma)
    ctx = GpuContext()
    hub = 0
    existing = set(graph.neighbors(hub).tolist())
    targets = [
        v
        for v in range(1, graph.num_vertices)
        if v not in existing and v != hub
    ][:n_inserts]
    ops = []
    for v in targets:
        ops.append(SlotInsert(hub, v, 1))
        ops.append(SlotInsert(v, hub, 1))
    apply_ops_vector(ctx, graph, ops)
    graph.validate()
    assert graph.degree(hub) == len(existing) + len(targets)
    assert existing <= set(graph.neighbors(hub).tolist())


@given(st.integers(2, 60), st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(n, seed):
    """CSR -> bucket list -> host graph -> CSR is the identity."""
    g = circuit_graph(max(n, 2), edge_ratio=1.5, seed=seed)
    bl = BucketListGraph.from_csr(g)
    bl.validate()
    back, _ = bl.to_csr()
    back.validate()
    assert back.num_edges == g.num_edges
    assert back.num_vertices == g.num_vertices
    got_e, got_w = back.edge_array()
    exp_e, exp_w = g.edge_array()
    assert np.array_equal(got_e, exp_e)
    assert np.array_equal(got_w, exp_w)
