"""CSR graph construction, queries and validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.utils import GraphConsistencyError


class TestFromEdges:
    def test_simple_triangle(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2], [0, 2]]))
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_symmetric_arcs(self):
        g = CSRGraph.from_edges(2, np.array([[0, 1]]))
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0]

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(5, np.array([[0, 1]]))
        assert g.degree(4) == 0
        assert g.neighbors(4).size == 0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0
        g.validate()

    def test_edge_weights_carried(self):
        g = CSRGraph.from_edges(
            2, np.array([[0, 1]]), edge_weights=np.array([7])
        )
        assert g.neighbor_weights(0).tolist() == [7]
        assert g.total_edge_weight() == 7

    def test_vertex_weights_default_one(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1]]))
        assert g.total_vertex_weight() == 3

    def test_self_loop_rejected(self):
        with pytest.raises(GraphConsistencyError):
            CSRGraph.from_edges(2, np.array([[1, 1]]))

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphConsistencyError):
            CSRGraph.from_edges(2, np.array([[0, 1], [1, 0]]))

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphConsistencyError):
            CSRGraph.from_edges(2, np.array([[0, 2]]))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(
                2, np.array([[0, 1]]), edge_weights=np.array([1, 2])
            )


class TestFromAdjacency:
    def test_roundtrip(self):
        adjacency = {0: {1: 3}, 1: {0: 3, 2: 1}, 2: {1: 1}}
        g = CSRGraph.from_adjacency(adjacency)
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert g.neighbor_weights(1).sum() == 4

    def test_conflicting_weights_rejected(self):
        with pytest.raises(GraphConsistencyError):
            CSRGraph.from_adjacency({0: {1: 3}, 1: {0: 5}})

    def test_explicit_vertex_count(self):
        g = CSRGraph.from_adjacency({0: {1: 1}}, num_vertices=10)
        assert g.num_vertices == 10


class TestNetworkx:
    def test_roundtrip(self, small_circuit):
        nxg = small_circuit.to_networkx()
        back = CSRGraph.from_networkx(nxg)
        assert back.num_edges == small_circuit.num_edges
        got_e, got_w = back.edge_array()
        exp_e, exp_w = small_circuit.edge_array()
        assert np.array_equal(got_e, exp_e)
        assert np.array_equal(got_w, exp_w)

    def test_weights_carried(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_node(0, weight=3)
        nxg.add_node(1)
        nxg.add_edge(0, 1, weight=7)
        csr = CSRGraph.from_networkx(nxg)
        assert csr.vwgt.tolist() == [3, 1]
        assert csr.total_edge_weight() == 7

    def test_bad_labels_rejected(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(GraphConsistencyError):
            CSRGraph.from_networkx(nxg)

    def test_empty_graph(self):
        import networkx as nx

        csr = CSRGraph.from_networkx(nx.empty_graph(5))
        assert csr.num_vertices == 5
        assert csr.num_edges == 0


class TestQueries:
    def test_degrees_matches_degree(self, small_circuit):
        degrees = small_circuit.degrees()
        for u in range(0, small_circuit.num_vertices, 17):
            assert degrees[u] == small_circuit.degree(u)

    def test_edge_array_each_edge_once(self, small_circuit):
        edges, weights = small_circuit.edge_array()
        assert edges.shape[0] == small_circuit.num_edges
        assert np.all(edges[:, 0] < edges[:, 1])
        assert weights.shape[0] == edges.shape[0]

    def test_has_edge(self, tiny_csr):
        assert tiny_csr.has_edge(0, 1)
        assert tiny_csr.has_edge(2, 3)
        assert not tiny_csr.has_edge(0, 3)

    def test_nbytes_positive(self, tiny_csr):
        assert tiny_csr.nbytes() > 0


class TestValidate:
    def test_valid_graph_passes(self, small_circuit):
        small_circuit.validate()

    def test_detects_asymmetry(self, tiny_csr):
        broken = CSRGraph(
            xadj=tiny_csr.xadj.copy(),
            adjncy=tiny_csr.adjncy.copy(),
            adjwgt=tiny_csr.adjwgt.copy(),
            vwgt=tiny_csr.vwgt.copy(),
        )
        broken.adjncy[0] = 3  # break one direction
        with pytest.raises(GraphConsistencyError):
            broken.validate()

    def test_detects_bad_xadj(self, tiny_csr):
        broken = CSRGraph(
            xadj=tiny_csr.xadj.copy(),
            adjncy=tiny_csr.adjncy,
            adjwgt=tiny_csr.adjwgt,
            vwgt=tiny_csr.vwgt,
        )
        broken.xadj[-1] += 1
        with pytest.raises(GraphConsistencyError):
            broken.validate()

    def test_detects_weight_misalignment(self, tiny_csr):
        broken = CSRGraph(
            xadj=tiny_csr.xadj,
            adjncy=tiny_csr.adjncy,
            adjwgt=tiny_csr.adjwgt[:-1],
            vwgt=tiny_csr.vwgt,
        )
        with pytest.raises(GraphConsistencyError):
            broken.validate()

    def test_detects_asymmetric_weights(self, tiny_csr):
        broken = CSRGraph(
            xadj=tiny_csr.xadj.copy(),
            adjncy=tiny_csr.adjncy.copy(),
            adjwgt=tiny_csr.adjwgt.copy(),
            vwgt=tiny_csr.vwgt.copy(),
        )
        broken.adjwgt[0] = 9  # weight differs from the reverse arc
        with pytest.raises(GraphConsistencyError):
            broken.validate()


@given(st.integers(min_value=2, max_value=40), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_random_graphs_validate(n, seed):
    """from_edges output always satisfies its own invariants."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(0, n * 2))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    mask = src != dst
    lo = np.minimum(src[mask], dst[mask])
    hi = np.maximum(src[mask], dst[mask])
    edges = (
        np.unique(np.stack([lo, hi], axis=1), axis=0)
        if mask.any()
        else np.empty((0, 2), dtype=np.int64)
    )
    g = CSRGraph.from_edges(n, edges)
    g.validate()
    assert g.num_edges == edges.shape[0]
