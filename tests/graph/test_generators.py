"""Synthetic graph generators: structure, ratios, determinism."""

import numpy as np
import pytest

from repro.graph import (
    BENCHMARKS,
    circuit_graph,
    community_graph,
    forest_graph,
    make_benchmark_graph,
    mesh_graph_2d,
    mesh_graph_3d,
    random_graph,
    triangulated_mesh_graph,
)


class TestCircuitGraph:
    def test_hits_target_edge_count(self):
        g = circuit_graph(1000, edge_ratio=1.36, seed=3)
        assert g.num_edges == round(1000 * 1.36)

    def test_dense_ratio(self):
        g = circuit_graph(500, edge_ratio=8.0, seed=3)
        assert g.num_edges == 4000

    def test_connected_backbone(self):
        import networkx as nx

        g = circuit_graph(300, edge_ratio=1.3, seed=5)
        edges, _ = g.edge_array()
        nxg = nx.Graph(edges.tolist())
        nxg.add_nodes_from(range(300))
        assert nx.is_connected(nxg)

    def test_deterministic(self):
        a = circuit_graph(200, 1.3, seed=9)
        b = circuit_graph(200, 1.3, seed=9)
        assert np.array_equal(a.adjncy, b.adjncy)

    def test_seed_changes_graph(self):
        a = circuit_graph(200, 1.3, seed=9)
        b = circuit_graph(200, 1.3, seed=10)
        assert not np.array_equal(a.adjncy, b.adjncy)

    def test_locality(self):
        """Most nets span a short placement distance."""
        g = circuit_graph(2000, 1.3, locality=30.0, seed=1)
        edges, _ = g.edge_array()
        spans = np.abs(edges[:, 0] - edges[:, 1])
        assert np.median(spans) < 60

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            circuit_graph(1, 1.3)

    def test_sub_one_ratio_rejected(self):
        with pytest.raises(ValueError):
            circuit_graph(100, 0.5)

    def test_validates(self):
        circuit_graph(400, 2.0, seed=2).validate()


class TestRentCircuit:
    def test_validates(self):
        from repro.graph import rent_circuit_graph

        rent_circuit_graph(512, seed=1).validate()

    def test_connected(self):
        import networkx as nx

        from repro.graph import rent_circuit_graph

        g = rent_circuit_graph(256, seed=2)
        edges, _ = g.edge_array()
        nxg = nx.Graph(edges.tolist())
        nxg.add_nodes_from(range(256))
        assert nx.is_connected(nxg)

    def test_classifies_as_circuit(self):
        from repro.graph import classify_structure, rent_circuit_graph

        g = rent_circuit_graph(1024, seed=3)
        assert classify_structure(g) == "circuit-like"

    def test_bisection_cut_follows_rent(self):
        """The defining property: bisection cuts grow ~ n^p, i.e.
        strongly sub-linearly (unlike random graphs, where they grow
        linearly in n)."""
        from repro.graph import rent_circuit_graph
        from repro.partition import GKwayPartitioner, PartitionConfig

        cuts = {}
        for n in (512, 2048):
            g = rent_circuit_graph(n, rent_exponent=0.6, seed=4)
            result = GKwayPartitioner(
                PartitionConfig(k=2, seed=4)
            ).partition(g)
            cuts[n] = result.cut
        # Quadrupling n should far less than quadruple the cut
        # (ideal: 4^0.6 ~ 2.3; allow slack for heuristic noise).
        assert cuts[2048] < 3.2 * cuts[512]

    def test_deterministic(self):
        from repro.graph import rent_circuit_graph

        a = rent_circuit_graph(200, seed=5)
        b = rent_circuit_graph(200, seed=5)
        assert np.array_equal(a.adjncy, b.adjncy)

    def test_invalid_exponent(self):
        from repro.graph import rent_circuit_graph

        with pytest.raises(ValueError):
            rent_circuit_graph(100, rent_exponent=1.5)

    def test_higher_exponent_more_edges(self):
        from repro.graph import rent_circuit_graph

        sparse = rent_circuit_graph(512, rent_exponent=0.45, seed=6)
        dense = rent_circuit_graph(512, rent_exponent=0.75, seed=6)
        assert dense.num_edges > sparse.num_edges


class TestMeshes:
    def test_2d_ratio_near_two(self):
        g = mesh_graph_2d(2500)
        assert g.num_edges / g.num_vertices == pytest.approx(2.0, abs=0.1)

    def test_2d_corner_degree(self):
        g = mesh_graph_2d(25)  # 5x5
        assert g.degree(0) == 2
        assert g.degree(12) == 4  # center

    def test_3d_ratio_near_three(self):
        g = mesh_graph_3d(1000)
        assert g.num_edges / g.num_vertices == pytest.approx(3.0, abs=0.4)

    def test_triangulated_ratio_near_three(self):
        g = triangulated_mesh_graph(2500)
        assert g.num_edges / g.num_vertices == pytest.approx(3.0, abs=0.2)

    def test_meshes_validate(self):
        mesh_graph_2d(100).validate()
        mesh_graph_3d(64).validate()
        triangulated_mesh_graph(100).validate()


class TestForestAndCommunity:
    def test_forest_ratio(self):
        g = forest_graph(5000, edge_ratio=0.6, seed=1)
        assert g.num_edges / g.num_vertices == pytest.approx(0.6, abs=0.05)

    def test_forest_is_acyclic(self):
        import networkx as nx

        g = forest_graph(500, 0.6, seed=2)
        edges, _ = g.edge_array()
        nxg = nx.Graph(edges.tolist())
        assert nx.is_forest(nxg)

    def test_forest_ratio_bounds(self):
        with pytest.raises(ValueError):
            forest_graph(100, 1.5)

    def test_community_validates(self):
        community_graph(300, 4, seed=3).validate()

    def test_random_graph_ratio(self):
        g = random_graph(1000, edge_ratio=2.0, seed=4)
        assert g.num_edges == 2000

    def test_random_validates(self):
        random_graph(200, 1.5, seed=5).validate()


class TestBenchmarkSuite:
    def test_ten_graphs(self):
        assert len(BENCHMARKS) == 10

    def test_paper_rows_attached(self):
        spec = BENCHMARKS["usb"]
        assert spec.paper.vertices == 139_479
        assert spec.paper.speedup == pytest.approx(84.67)

    def test_scaled_sizes_proportional(self):
        # Bigger paper graph -> bigger (or equal, floor-clamped) scaled graph.
        assert (
            BENCHMARKS["mem_ctrl"].num_vertices
            > BENCHMARKS["tv80"].num_vertices
            > BENCHMARKS["usb"].num_vertices
        )

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_benchmark_builds_and_validates(self, name):
        spec = BENCHMARKS[name]
        g = make_benchmark_graph(name, seed=1)
        g.validate()
        assert g.num_vertices >= 1900
        # The |E|/|V| structure class survives scaling.
        paper_ratio = spec.paper.edges / spec.paper.vertices
        ours = g.num_edges / g.num_vertices
        if name == "NLR":
            # Table I's NLR edge count has a dropped digit; we model the
            # real DIMACS triangulation (see DESIGN.md).
            assert 2.5 < ours < 3.5
        else:
            assert ours == pytest.approx(paper_ratio, rel=0.35)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_benchmark_graph("nope")

    def test_benchmark_deterministic(self):
        a = make_benchmark_graph("usb", seed=7)
        b = make_benchmark_graph("usb", seed=7)
        assert np.array_equal(a.adjncy, b.adjncy)
