"""Graph structure analysis utilities."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    circuit_graph,
    community_graph,
    forest_graph,
    mesh_graph_2d,
    triangulated_mesh_graph,
)
from repro.graph.analysis import (
    classify_structure,
    component_sizes,
    connected_components,
    degree_statistics,
    edge_span_statistics,
    format_summary,
    graph_summary,
    largest_component_fraction,
    sampled_clustering_coefficient,
)


class TestDegreeStatistics:
    def test_path_graph(self):
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
        stats = degree_statistics(csr)
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.mean == pytest.approx(1.5)

    def test_empty_graph(self):
        csr = CSRGraph.from_edges(3, np.empty((0, 2), dtype=np.int64))
        stats = degree_statistics(csr)
        assert stats.maximum == 0
        assert stats.coefficient_of_variation == 0.0

    def test_cv_low_for_mesh(self):
        stats = degree_statistics(mesh_graph_2d(400))
        assert stats.coefficient_of_variation < 0.3

    def test_cv_high_for_social(self):
        stats = degree_statistics(community_graph(500, 4, seed=1))
        assert stats.coefficient_of_variation > 0.5


class TestComponents:
    def test_connected_graph_one_component(self, small_circuit):
        labels = connected_components(small_circuit)
        assert np.unique(labels).size == 1

    def test_two_components(self):
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        labels = connected_components(csr)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_component_sizes_sorted(self):
        csr = CSRGraph.from_edges(
            6, np.array([[0, 1], [1, 2], [3, 4]])
        )
        sizes = component_sizes(csr)
        assert sizes.tolist() == [3, 2, 1]

    def test_largest_fraction(self):
        csr = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2]]))
        assert largest_component_fraction(csr) == pytest.approx(0.75)

    def test_forest_has_many_components(self):
        csr = forest_graph(500, 0.6, seed=1)
        assert component_sizes(csr).size > 10


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        csr = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2], [0, 2]]))
        assert sampled_clustering_coefficient(csr) == pytest.approx(1.0)

    def test_grid_has_no_triangles(self):
        assert sampled_clustering_coefficient(
            mesh_graph_2d(400)
        ) == pytest.approx(0.0)

    def test_triangulated_mesh_clusters(self):
        value = sampled_clustering_coefficient(
            triangulated_mesh_graph(400)
        )
        assert value > 0.2

    def test_deterministic_for_seed(self, small_circuit):
        a = sampled_clustering_coefficient(small_circuit, seed=4)
        b = sampled_clustering_coefficient(small_circuit, seed=4)
        assert a == b

    def test_degenerate_graph(self):
        csr = CSRGraph.from_edges(3, np.array([[0, 1]]))
        assert sampled_clustering_coefficient(csr) == 0.0


class TestSpanAndClassify:
    def test_circuit_span_is_local(self):
        csr = circuit_graph(2000, 1.3, locality=20.0, seed=1)
        median, p90 = edge_span_statistics(csr)
        assert median < 50
        assert p90 >= median

    def test_empty_span(self):
        csr = CSRGraph.from_edges(2, np.empty((0, 2), dtype=np.int64))
        assert edge_span_statistics(csr) == (0.0, 0.0)

    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: forest_graph(800, 0.6, seed=1), "forest-like"),
            (lambda: mesh_graph_2d(900), "mesh-like"),
            (lambda: circuit_graph(900, 1.3, seed=1), "circuit-like"),
            (lambda: community_graph(900, 4, seed=1), "social-like"),
        ],
    )
    def test_classification(self, builder, expected):
        assert classify_structure(builder()) == expected


class TestSummary:
    def test_summary_fields(self, small_circuit):
        summary = graph_summary(small_circuit)
        assert summary["vertices"] == small_circuit.num_vertices
        assert summary["edges"] == small_circuit.num_edges
        assert "structure_class" in summary
        assert summary["largest_component"] <= 1.0

    def test_format_summary(self, small_circuit):
        text = format_summary(graph_summary(small_circuit))
        assert "structure_class" in text
        assert str(small_circuit.num_vertices) in text
