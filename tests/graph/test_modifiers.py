"""HostGraph reference semantics and modifier records."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
)
from repro.utils import ModifierError


@pytest.fixture
def host(tiny_csr):
    return HostGraph.from_csr(tiny_csr)


class TestConstruction:
    def test_from_csr_preserves_edges(self, host, tiny_csr):
        assert host.num_edges() == tiny_csr.num_edges
        assert host.has_edge(0, 1)
        assert host.has_edge(2, 3)

    def test_all_active_initially(self, host):
        assert host.num_active_vertices() == 4

    def test_copy_is_deep(self, host):
        clone = host.copy()
        clone.apply(EdgeDelete(0, 1))
        assert host.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestEdgeModifiers:
    def test_insert_both_directions(self, host):
        host.apply(EdgeInsert(0, 3, weight=4))
        assert host.adj[0][3] == 4
        assert host.adj[3][0] == 4

    def test_insert_duplicate_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(EdgeInsert(0, 1))

    def test_insert_self_loop_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(EdgeInsert(2, 2))

    def test_insert_to_inactive_rejected(self, host):
        host.apply(VertexDelete(3))
        with pytest.raises(ModifierError):
            host.apply(EdgeInsert(0, 3))

    def test_delete_removes_both_directions(self, host):
        host.apply(EdgeDelete(0, 1))
        assert 1 not in host.adj[0]
        assert 0 not in host.adj[1]

    def test_delete_missing_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(EdgeDelete(0, 3))


class TestVertexModifiers:
    def test_delete_clears_incident_edges(self, host):
        host.apply(VertexDelete(2))
        assert not host.is_active(2)
        assert 2 not in host.adj[0]
        assert 2 not in host.adj[1]
        assert 2 not in host.adj[3]

    def test_delete_inactive_rejected(self, host):
        host.apply(VertexDelete(2))
        with pytest.raises(ModifierError):
            host.apply(VertexDelete(2))

    def test_reinsert_deleted_id(self, host):
        host.apply(VertexDelete(2))
        host.apply(VertexInsert(2, weight=5))
        assert host.is_active(2)
        assert host.vwgt[2] == 5
        assert host.degree(2) == 0  # comes back isolated

    def test_insert_new_id_must_be_next(self, host):
        with pytest.raises(ModifierError):
            host.apply(VertexInsert(10))
        host.apply(VertexInsert(4))
        assert host.num_vertex_slots == 5

    def test_insert_active_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(VertexInsert(0))


class TestExportAndStats:
    def test_to_csr_compacts_ids(self, host):
        host.apply(VertexDelete(1))
        csr, id_map = host.to_csr()
        assert csr.num_vertices == 3
        assert id_map.tolist() == [0, 2, 3]
        csr.validate()

    def test_to_csr_empty_graph(self):
        host = HostGraph(2)
        host.apply(VertexDelete(0))
        host.apply(VertexDelete(1))
        csr, id_map = host.to_csr()
        assert csr.num_vertices == 0
        assert id_map.size == 0

    def test_rebuild_work_scales(self, host):
        w0 = host.rebuild_work()
        host.apply(EdgeInsert(0, 3))
        assert host.rebuild_work() == w0 + 2

    def test_total_active_weight(self, host):
        assert host.total_active_weight() == 4
        host.apply(VertexDelete(0))
        assert host.total_active_weight() == 3

    def test_roundtrip_through_csr(self, small_host):
        csr, id_map = small_host.to_csr()
        again = HostGraph.from_csr(csr)
        assert again.num_edges() == small_host.num_edges()


class TestModifierBatch:
    def test_counts(self):
        batch = ModifierBatch(
            [
                EdgeInsert(0, 1),
                EdgeInsert(1, 2),
                EdgeDelete(0, 2),
                VertexInsert(9),
                VertexDelete(3),
            ]
        )
        counts = batch.counts()
        assert counts == {
            "edge_insert": 2,
            "edge_delete": 1,
            "vertex_insert": 1,
            "vertex_delete": 1,
        }

    def test_len_and_iter(self):
        batch = ModifierBatch([EdgeInsert(0, 1)])
        batch.append(EdgeDelete(0, 1))
        assert len(batch) == 2
        assert [type(m).__name__ for m in batch] == [
            "EdgeInsert",
            "EdgeDelete",
        ]

    def test_apply_batch(self, host):
        host.apply_batch(
            ModifierBatch([EdgeDelete(0, 1), EdgeInsert(0, 3)])
        )
        assert not host.has_edge(0, 1)
        assert host.has_edge(0, 3)

    def test_unknown_modifier_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply("bogus")

    def test_modifiers_are_frozen(self):
        modifier = EdgeInsert(0, 1)
        with pytest.raises(Exception):
            modifier.u = 5


class TestCoalesce:
    """The stream coalescer's rules (cancel / dedup / subsume)."""

    def _coalesce(self, mods):
        from repro.graph.modifiers import coalesce_modifiers

        return coalesce_modifiers(mods)

    def test_insert_delete_pair_cancels(self):
        out, stats = self._coalesce([EdgeInsert(0, 1), EdgeDelete(0, 1)])
        assert out == []
        assert stats["cancelled"] == 2

    def test_delete_then_insert_survives(self):
        # Cannot cancel: the original edge's weight is unknown without
        # the base graph, so the pair is not a no-op.
        mods = [EdgeDelete(0, 1), EdgeInsert(0, 1)]
        out, stats = self._coalesce(mods)
        assert out == mods
        assert stats["cancelled"] == 0

    def test_duplicate_edge_insert_deduped(self):
        out, stats = self._coalesce([EdgeInsert(0, 1), EdgeInsert(0, 1)])
        assert out == [EdgeInsert(0, 1)]
        assert stats["deduplicated"] == 1

    def test_different_weight_not_deduped(self):
        mods = [EdgeInsert(0, 1, weight=1), EdgeInsert(0, 1, weight=2)]
        out, _stats = self._coalesce(mods)
        assert out == mods

    def test_endpoint_order_is_canonical(self):
        out, _stats = self._coalesce([EdgeInsert(0, 1), EdgeDelete(1, 0)])
        assert out == []

    def test_duplicate_vertex_insert_deduped(self):
        out, stats = self._coalesce([VertexInsert(7), VertexInsert(7)])
        assert out == [VertexInsert(7)]
        assert stats["deduplicated"] == 1

    def test_vertex_delete_subsumes_incident_edge_ops(self):
        mods = [
            EdgeInsert(0, 1),
            EdgeDelete(0, 2),
            EdgeInsert(3, 4),
            VertexDelete(0),
        ]
        out, stats = self._coalesce(mods)
        assert out == [EdgeInsert(3, 4), VertexDelete(0)]
        assert stats["subsumed"] == 2

    def test_vertex_pair_never_cancelled(self):
        # A VertexInsert of a brand-new ID extends the ID space; later
        # modifiers may rely on it, so the pair must survive.
        mods = [VertexInsert(9), VertexDelete(9)]
        out, _stats = self._coalesce(mods)
        assert out == mods

    def test_edge_op_after_subsuming_delete_survives(self):
        mods = [
            EdgeInsert(0, 1),
            VertexDelete(0),
            VertexInsert(0),
            EdgeInsert(0, 1),
        ]
        out, _stats = self._coalesce(mods)
        assert out == [VertexDelete(0), VertexInsert(0), EdgeInsert(0, 1)]

    def test_order_preserved(self):
        mods = [
            EdgeInsert(0, 3),
            VertexInsert(4),
            EdgeInsert(4, 2),
            EdgeDelete(0, 1),
        ]
        out, _stats = self._coalesce(mods)
        assert out == mods

    def test_batch_coalesce_returns_new_batch(self):
        batch = ModifierBatch([EdgeInsert(0, 1), EdgeDelete(0, 1)])
        collapsed = batch.coalesce()
        assert len(collapsed) == 0
        assert len(batch) == 2

    def test_stats_totals_consistent(self):
        mods = [
            EdgeInsert(0, 1),
            EdgeInsert(0, 1),
            EdgeDelete(0, 1),
            EdgeInsert(2, 3),
            VertexDelete(2),
        ]
        out, stats = self._coalesce(mods)
        assert stats["input"] == len(mods)
        assert stats["output"] == len(out)
        assert (
            stats["input"] - stats["output"]
            == stats["cancelled"]
            + stats["deduplicated"]
            + stats["subsumed"]
        )


class TestCoalescePreservesGraph:
    """Property: raw and coalesced sequences yield identical graphs."""

    def _random_valid_sequence(self, host, rng, length=60):
        """A valid modifier sequence with injected redundancy (dups and
        insert/delete flip-flops) against the evolving ``host``."""
        mods = []
        scratch = host.copy()
        for _ in range(length):
            active = scratch.active_vertices()
            roll = rng.random()
            mod = None
            if roll < 0.35 and len(active) >= 2:
                for _retry in range(16):
                    u = int(active[rng.integers(0, len(active))])
                    v = int(active[rng.integers(0, len(active))])
                    if u != v and not scratch.has_edge(u, v):
                        mod = EdgeInsert(u, v)
                        break
            elif roll < 0.6:
                for _retry in range(16):
                    u = int(active[rng.integers(0, len(active))])
                    nbrs = list(scratch.neighbors(u))
                    if nbrs:
                        v = int(nbrs[rng.integers(0, len(nbrs))])
                        mod = EdgeDelete(u, v)
                        break
            elif roll < 0.75:
                deleted = [
                    u for u, flag in scratch.active.items() if not flag
                ]
                u = (
                    int(deleted[rng.integers(0, len(deleted))])
                    if deleted
                    else scratch.num_vertex_slots
                )
                mod = VertexInsert(u)
            elif len(active) > 3:
                u = int(active[rng.integers(0, len(active))])
                mod = VertexDelete(u)
            if mod is None:
                continue
            scratch.apply(mod)
            mods.append(mod)
            # Inject redundancy the coalescer should remove.
            if isinstance(mod, EdgeInsert) and rng.random() < 0.4:
                scratch.apply(EdgeDelete(mod.u, mod.v))
                scratch.apply(mod)
                mods.extend([EdgeDelete(mod.u, mod.v), mod])
        return mods

    @pytest.mark.parametrize("seed", range(8))
    def test_adjacency_identical(self, seed):
        from repro.utils.seeding import make_rng

        base = HostGraph.from_csr(
            CSRGraph.from_edges(
                12,
                np.array(
                    [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 6],
                     [6, 7], [7, 8], [8, 9], [9, 10], [10, 11], [0, 6]]
                ),
            )
        )
        rng = make_rng(seed, "coalesce-property")
        mods = self._random_valid_sequence(base, rng)

        raw = base.copy()
        raw.apply_batch(mods)
        collapsed = base.copy()
        batch = ModifierBatch(mods).coalesce()
        batch.validate()
        collapsed.apply_batch(batch)

        assert raw.adj == collapsed.adj
        assert raw.active == collapsed.active


class TestValidateBatch:
    def test_self_loop_rejected(self):
        with pytest.raises(ModifierError, match="self-loop"):
            ModifierBatch([EdgeInsert(3, 3)]).validate()

    def test_edge_insert_after_vertex_delete_rejected(self):
        batch = ModifierBatch([VertexDelete(0), EdgeInsert(0, 1)])
        with pytest.raises(ModifierError, match="deleted earlier"):
            batch.validate()

    def test_edge_delete_after_vertex_delete_rejected(self):
        batch = ModifierBatch([VertexDelete(1), EdgeDelete(0, 1)])
        with pytest.raises(ModifierError, match="deleted earlier"):
            batch.validate()

    def test_reinsert_reenables_endpoint(self):
        ModifierBatch(
            [VertexDelete(0), VertexInsert(0), EdgeInsert(0, 1)]
        ).validate()

    def test_duplicate_pending_insert_rejected(self):
        batch = ModifierBatch([EdgeInsert(0, 1), EdgeInsert(1, 0)])
        with pytest.raises(ModifierError, match="duplicate pending"):
            batch.validate()

    def test_insert_then_delete_then_insert_ok(self):
        ModifierBatch(
            [EdgeInsert(0, 1), EdgeDelete(0, 1), EdgeInsert(0, 1)]
        ).validate()

    def test_double_vertex_delete_rejected(self):
        batch = ModifierBatch([VertexDelete(2), VertexDelete(2)])
        with pytest.raises(ModifierError, match="deleted twice"):
            batch.validate()

    def test_vertex_delete_clears_pending_edge_state(self):
        # The delete subsumes the pending insert, so a later delete of
        # the same edge is not a "duplicate pending delete".
        ModifierBatch(
            [
                EdgeInsert(0, 1),
                VertexDelete(0),
                VertexInsert(0),
                EdgeDelete(0, 1),
            ]
        ).validate()
