"""HostGraph reference semantics and modifier records."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
)
from repro.utils import ModifierError


@pytest.fixture
def host(tiny_csr):
    return HostGraph.from_csr(tiny_csr)


class TestConstruction:
    def test_from_csr_preserves_edges(self, host, tiny_csr):
        assert host.num_edges() == tiny_csr.num_edges
        assert host.has_edge(0, 1)
        assert host.has_edge(2, 3)

    def test_all_active_initially(self, host):
        assert host.num_active_vertices() == 4

    def test_copy_is_deep(self, host):
        clone = host.copy()
        clone.apply(EdgeDelete(0, 1))
        assert host.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestEdgeModifiers:
    def test_insert_both_directions(self, host):
        host.apply(EdgeInsert(0, 3, weight=4))
        assert host.adj[0][3] == 4
        assert host.adj[3][0] == 4

    def test_insert_duplicate_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(EdgeInsert(0, 1))

    def test_insert_self_loop_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(EdgeInsert(2, 2))

    def test_insert_to_inactive_rejected(self, host):
        host.apply(VertexDelete(3))
        with pytest.raises(ModifierError):
            host.apply(EdgeInsert(0, 3))

    def test_delete_removes_both_directions(self, host):
        host.apply(EdgeDelete(0, 1))
        assert 1 not in host.adj[0]
        assert 0 not in host.adj[1]

    def test_delete_missing_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(EdgeDelete(0, 3))


class TestVertexModifiers:
    def test_delete_clears_incident_edges(self, host):
        host.apply(VertexDelete(2))
        assert not host.is_active(2)
        assert 2 not in host.adj[0]
        assert 2 not in host.adj[1]
        assert 2 not in host.adj[3]

    def test_delete_inactive_rejected(self, host):
        host.apply(VertexDelete(2))
        with pytest.raises(ModifierError):
            host.apply(VertexDelete(2))

    def test_reinsert_deleted_id(self, host):
        host.apply(VertexDelete(2))
        host.apply(VertexInsert(2, weight=5))
        assert host.is_active(2)
        assert host.vwgt[2] == 5
        assert host.degree(2) == 0  # comes back isolated

    def test_insert_new_id_must_be_next(self, host):
        with pytest.raises(ModifierError):
            host.apply(VertexInsert(10))
        host.apply(VertexInsert(4))
        assert host.num_vertex_slots == 5

    def test_insert_active_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply(VertexInsert(0))


class TestExportAndStats:
    def test_to_csr_compacts_ids(self, host):
        host.apply(VertexDelete(1))
        csr, id_map = host.to_csr()
        assert csr.num_vertices == 3
        assert id_map.tolist() == [0, 2, 3]
        csr.validate()

    def test_to_csr_empty_graph(self):
        host = HostGraph(2)
        host.apply(VertexDelete(0))
        host.apply(VertexDelete(1))
        csr, id_map = host.to_csr()
        assert csr.num_vertices == 0
        assert id_map.size == 0

    def test_rebuild_work_scales(self, host):
        w0 = host.rebuild_work()
        host.apply(EdgeInsert(0, 3))
        assert host.rebuild_work() == w0 + 2

    def test_total_active_weight(self, host):
        assert host.total_active_weight() == 4
        host.apply(VertexDelete(0))
        assert host.total_active_weight() == 3

    def test_roundtrip_through_csr(self, small_host):
        csr, id_map = small_host.to_csr()
        again = HostGraph.from_csr(csr)
        assert again.num_edges() == small_host.num_edges()


class TestModifierBatch:
    def test_counts(self):
        batch = ModifierBatch(
            [
                EdgeInsert(0, 1),
                EdgeInsert(1, 2),
                EdgeDelete(0, 2),
                VertexInsert(9),
                VertexDelete(3),
            ]
        )
        counts = batch.counts()
        assert counts == {
            "edge_insert": 2,
            "edge_delete": 1,
            "vertex_insert": 1,
            "vertex_delete": 1,
        }

    def test_len_and_iter(self):
        batch = ModifierBatch([EdgeInsert(0, 1)])
        batch.append(EdgeDelete(0, 1))
        assert len(batch) == 2
        assert [type(m).__name__ for m in batch] == [
            "EdgeInsert",
            "EdgeDelete",
        ]

    def test_apply_batch(self, host):
        host.apply_batch(
            ModifierBatch([EdgeDelete(0, 1), EdgeInsert(0, 3)])
        )
        assert not host.has_edge(0, 1)
        assert host.has_edge(0, 3)

    def test_unknown_modifier_rejected(self, host):
        with pytest.raises(ModifierError):
            host.apply("bogus")

    def test_modifiers_are_frozen(self):
        modifier = EdgeInsert(0, 1)
        with pytest.raises(Exception):
            modifier.u = 5
