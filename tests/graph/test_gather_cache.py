"""Generation-stamped gather caches on the bucket-list graph.

``slot_index_arrays`` memoizes the per-vertex-set slot gather and
``slot_owner_array`` maintains a pool-wide slot->owner index; both are
invalidated/maintained through ``geometry_generation``, which modifier
kernels bump on any bucket allocation or relocation.  These properties
check the cached answers against independent reconstructions from
``bucket_start``/``bucket_count`` after arbitrary modifier batches.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modification import apply_batch
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import BucketListGraph, circuit_graph
from repro.graph.bucketlist import EMPTY, SLOTS_PER_BUCKET
from repro.gpusim import GpuContext


def _reference_slot_index(graph, vertices):
    """Recompute the gather arrays straight from the bucket geometry."""
    idx, owner = [], []
    for i, u in enumerate(vertices):
        start, n_slots = graph.slot_range(int(u))
        idx.extend(range(start, start + n_slots))
        owner.extend([i] * n_slots)
    return (
        np.array(idx, dtype=np.int64),
        np.array(owner, dtype=np.int64),
    )


def _churned_graph(seed, n=120, batches=3):
    """A bucket-list graph after ``batches`` seeded modifier batches."""
    csr = circuit_graph(n, 1.6, seed=seed)
    graph = BucketListGraph.from_csr(csr)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=batches,
            modifiers_per_iteration=(8, 20),
            seed=seed,
        ),
    )
    ctx = GpuContext()
    for batch in trace:
        apply_batch(ctx, graph, batch, mode="vector")
    return graph


class TestSlotIndexCache:
    @given(
        seed=st.integers(0, 5_000),
        stride=st.integers(1, 7),
    )
    @settings(max_examples=20, deadline=None)
    def test_cached_matches_reference_after_churn(self, seed, stride):
        """After inserts/deletes/relocations, the memoized gather equals
        a from-scratch reconstruction — on both the cold (miss) and the
        warm (hit) path."""
        graph = _churned_graph(seed)
        active = graph.active_vertices()
        vertices = active[::stride]
        ref_idx, ref_owner = _reference_slot_index(graph, vertices)
        for _ in range(2):  # first call populates, second must hit
            idx, owner = graph.slot_index_arrays(vertices)
            np.testing.assert_array_equal(idx, ref_idx)
            np.testing.assert_array_equal(owner, ref_owner)

    def test_relocation_invalidates_stale_entry(self):
        """Growing a vertex past its buckets relocates it; a cached
        gather from before the relocation must not be served."""
        csr = circuit_graph(80, 1.5, seed=1)
        graph = BucketListGraph.from_csr(csr)
        ctx = GpuContext()
        u = 0
        vertices = np.array([u], dtype=np.int64)
        graph.slot_index_arrays(vertices)  # warm the cache
        gen_before = graph.geometry_generation
        # Insert enough distinct edges at u to overflow its buckets.
        from repro.graph import EdgeInsert

        present = set(
            int(v)
            for v in graph.bucket_list[
                graph.slot_range(u)[0] : sum(graph.slot_range(u))
            ]
            if v != EMPTY
        )
        targets = [v for v in range(1, 75) if v not in present]
        batch = [EdgeInsert(u, v) for v in targets[:40]]
        apply_batch(ctx, graph, batch, mode="vector")
        assert graph.geometry_generation > gen_before
        idx, owner = graph.slot_index_arrays(vertices)
        ref_idx, ref_owner = _reference_slot_index(graph, vertices)
        np.testing.assert_array_equal(idx, ref_idx)
        np.testing.assert_array_equal(owner, ref_owner)


class TestSlotOwnerArray:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_owner_correct_on_filled_slots_after_churn(self, seed):
        """Every filled slot in the used pool maps back to the vertex
        whose current bucket range contains it.  (Abandoned relocation
        ranges may keep a stale owner, but they are permanently EMPTY,
        so only filled slots carry the contract.)"""
        graph = _churned_graph(seed)
        owner = graph.slot_owner_array()
        used = graph.num_buckets_used * SLOTS_PER_BUCKET
        ref = np.full(used, -1, dtype=np.int64)
        for u in graph.active_vertices():
            start, n_slots = graph.slot_range(int(u))
            ref[start : start + n_slots] = u
        filled = graph.bucket_list[:used] != EMPTY
        np.testing.assert_array_equal(owner[:used][filled], ref[filled])

    def test_incrementally_maintained_not_rebuilt(self):
        """Modifier batches keep the cached array object alive and
        correct — the O(pool) scatter happens exactly once."""
        from repro.graph import EdgeDelete, EdgeInsert

        graph = _churned_graph(seed=9, batches=1)
        first = graph.slot_owner_array()
        # Hand-built churn: drop three existing edges, add three fresh
        # ones, then grow vertex 2 until it relocates.
        used = graph.num_buckets_used * SLOTS_PER_BUCKET
        present = set()
        owner0 = graph.slot_owner_array()
        for pos in np.flatnonzero(graph.bucket_list[:used] != EMPTY):
            u, v = int(owner0[pos]), int(graph.bucket_list[pos])
            present.add((min(u, v), max(u, v)))
        doomed = sorted(present)[:3]
        n = graph.num_vertices
        fresh = []
        for u in range(3):
            for v in range(20, n):
                if (
                    graph.is_active(v)
                    and (u, v) not in present
                    and (v, u) not in present
                ):
                    fresh.append((u, v))
                    present.add((u, v))
                    break
        grow = [
            (2, v)
            for v in range(3, n)
            if graph.is_active(v)
            and (2, v) not in present
            and (v, 2) not in present
        ][:40]
        ctx = GpuContext()
        batch = (
            [EdgeDelete(u, v) for u, v in doomed]
            + [EdgeInsert(u, v) for u, v in fresh]
            + [EdgeInsert(u, v) for u, v in grow]
        )
        apply_batch(ctx, graph, batch, mode="vector")
        again = graph.slot_owner_array()
        assert again is first  # same buffer, updated in place
        used = graph.num_buckets_used * SLOTS_PER_BUCKET
        filled = graph.bucket_list[:used] != EMPTY
        for u in graph.active_vertices():
            start, n_slots = graph.slot_range(int(u))
            seg = slice(start, start + n_slots)
            np.testing.assert_array_equal(
                again[seg][filled[seg]],
                np.full(int(filled[seg].sum()), int(u)),
            )
