"""Utility modules: seeding and the error hierarchy."""

import numpy as np
import pytest

from repro.utils import (
    BucketListFullError,
    CapacityError,
    GraphConsistencyError,
    ModifierError,
    PartitionError,
    ReproError,
    derive_seed,
    make_rng,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_tag_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)

    def test_parent_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_no_tag_concatenation_collision(self):
        """("ab",) and ("a", "b") must differ (separator byte)."""
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_64_bit_range(self):
        value = derive_seed(123, "tag")
        assert 0 <= value < (1 << 64)

    def test_negative_parent_handled(self):
        assert derive_seed(-5, "x") == derive_seed(-5, "x")


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(1), np.random.Generator)

    def test_same_seed_same_stream(self):
        a = make_rng(7, "t").integers(0, 100, 10)
        b = make_rng(7, "t").integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_tags_decorrelate(self):
        a = make_rng(7, "t1").integers(0, 1 << 30, 10)
        b = make_rng(7, "t2").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphConsistencyError,
            CapacityError,
            BucketListFullError,
            ModifierError,
            PartitionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_bucketlist_full_is_capacity(self):
        assert issubclass(BucketListFullError, CapacityError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ModifierError("nope")
