"""Finding-key stability: symbol keys, legacy baselines, renames."""

import json
import textwrap

from repro.analysis.baseline import Baseline
from repro.analysis.lintcore import Finding, lint_paths
from repro.analysis.rules import get_rules


def _f(rule="r", path="p.py", line=1, message="m", symbol=""):
    return Finding(
        rule=rule, path=path, line=line, message=message, symbol=symbol
    )


class TestSymbolKeys:
    def test_key_prefers_symbol(self):
        f = _f(symbol="repro.core.mod.Cls.fn")
        assert f.key == ("r", "repro.core.mod.Cls.fn", "m")

    def test_key_falls_back_to_path(self):
        assert _f().key == ("r", "p.py", "m")

    def test_legacy_key_is_path_keyed(self):
        f = _f(symbol="repro.core.mod.fn")
        assert f.legacy_key == ("r", "p.py", "m")


class TestRenameStability:
    def test_file_move_keeps_the_baseline_match(self):
        before = _f(path="src/a.py", symbol="repro.core.mod.fn")
        baseline = Baseline.from_findings([before])
        after = _f(path="src/b.py", symbol="repro.core.mod.fn")
        new, stale = baseline.filter([after])
        assert new == [] and stale == []

    def test_symbol_rename_is_a_new_finding(self):
        before = _f(path="src/a.py", symbol="repro.core.mod.fn")
        baseline = Baseline.from_findings([before])
        after = _f(path="src/other.py", symbol="repro.core.mod.renamed")
        new, stale = baseline.filter([after])
        assert len(new) == 1 and len(stale) == 1

    def test_real_findings_key_identically_after_file_rename(self, tmp_path):
        code = textwrap.dedent(
            """
            def risky():
                try:
                    pass
                except Exception:
                    pass
            """
        )
        rules = get_rules(["blind-except"])
        for name in ("before.py", "after.py"):
            target = tmp_path / "src" / "repro" / "core" / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(code)
        first = lint_paths([tmp_path / "src/repro/core/before.py"], rules)
        second = lint_paths([tmp_path / "src/repro/core/after.py"], rules)
        assert first and second
        # Same rule+message, symbol differs only in module stem — the
        # key must not embed the path.
        assert first[0].key[0] == second[0].key[0]
        assert first[0].symbol == "repro.core.before.risky"
        assert second[0].symbol == "repro.core.after.risky"


class TestLegacyBaselines:
    def _legacy_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": "r",
                            "path": "p.py",
                            "message": "m",
                            "count": 1,
                            "reason": "grandfathered: reviewed",
                        }
                    ]
                }
            )
        )
        return path

    def test_legacy_entry_loads_as_path_keyed(self, tmp_path):
        baseline = Baseline.load(self._legacy_file(tmp_path))
        (entry,) = baseline.entries.values()
        assert entry.is_legacy
        assert entry.key == ("r", "p.py", "m")

    def test_legacy_entry_filters_symbol_carrying_finding(self, tmp_path):
        baseline = Baseline.load(self._legacy_file(tmp_path))
        finding = _f(symbol="repro.core.mod.fn")
        new, stale = baseline.filter([finding])
        assert new == [] and stale == []

    def test_update_migrates_to_symbol_keys_keeping_reason(self, tmp_path):
        legacy = Baseline.load(self._legacy_file(tmp_path))
        finding = _f(symbol="repro.core.mod.fn")
        migrated = Baseline.from_findings([finding], reasons=legacy.reasons)
        (entry,) = migrated.entries.values()
        assert not entry.is_legacy
        assert entry.key == ("r", "repro.core.mod.fn", "m")
        assert entry.reason == "grandfathered: reviewed"

    def test_migrated_save_roundtrips_symbol(self, tmp_path):
        finding = _f(symbol="repro.core.mod.fn")
        baseline = Baseline.from_findings([finding])
        out = tmp_path / "migrated.json"
        baseline.save(out)
        raw = json.loads(out.read_text())
        assert raw["findings"][0]["symbol"] == "repro.core.mod.fn"
        reloaded = Baseline.load(out)
        assert ("r", "repro.core.mod.fn", "m") in reloaded.entries
