"""Unit tests for the shadow-memory warp-access sanitizer."""

import pickle

import numpy as np
import pytest

from repro.analysis.fixtures import (
    run_clean_kernel,
    run_intra_warp_racy_kernel,
    run_racy_kernel,
)
from repro.analysis.shadow import (
    ShadowArray,
    ShadowSession,
    ShadowTracker,
    compare_traces,
    shadow_wrap,
)
from repro.gpusim.atomics import atomic_add
from repro.gpusim.context import WARP_SIZE, GpuContext
from repro.gpusim.kernel import launch_warps
from repro.gpusim.warp import Warp


def _run(body, n_warps=2, name="k", ordered=False, arrays=()):
    """Launch ``body`` under a fresh session with ``arrays`` wrapped."""
    ctx = GpuContext()
    tracker = ShadowTracker()
    with ShadowSession(ctx, tracker):
        wrapped = [shadow_wrap(a, f"t.a{i}", tracker) for i, a in enumerate(arrays)]

        def kernel(warp: Warp, item: int) -> None:
            body(ctx, warp, item, wrapped)

        launch_warps(ctx, list(range(n_warps)), kernel, name=name, ordered=ordered)
    return tracker


class TestFixtureKernels:
    def test_racy_kernel_flagged(self):
        tracker = run_racy_kernel()
        assert tracker.n_conflicts > 0
        kinds = {f.kind for f in tracker.findings}
        assert kinds <= {"read-write", "write-write"}
        f = tracker.findings[0]
        assert f.array == "fixture.out"
        assert f.address == 0
        assert f.first_warp != f.second_warp

    def test_racy_kernel_flagged_any_seed(self):
        # Detection is address-based, independent of the data written.
        for seed in (0, 1, 99):
            assert run_racy_kernel(seed=seed).n_conflicts > 0

    def test_intra_warp_scatter_flagged(self):
        tracker = run_intra_warp_racy_kernel()
        intra = [f for f in tracker.findings if f.kind == "intra-warp-write"]
        assert intra
        assert intra[0].address == 3
        assert "lanes" in intra[0].detail

    def test_clean_kernel_no_false_positive(self):
        tracker = run_clean_kernel()
        assert tracker.n_conflicts == 0
        assert tracker.findings == []
        # The launch still produced a trace digest.
        assert len(tracker.launches) == 1
        assert tracker.launches[0].n_events > 0


class TestConflictModel:
    def test_atomic_vs_atomic_is_mediated(self):
        def body(ctx, warp, item, arrays):
            atomic_add(ctx, arrays[0], 0, 1)

        tracker = _run(body, arrays=[np.zeros(4, dtype=np.int64)])
        assert tracker.n_conflicts == 0

    def test_atomic_vs_plain_is_flagged(self):
        def body(ctx, warp, item, arrays):
            if item == 0:
                atomic_add(ctx, arrays[0], 0, 1)
            else:
                arrays[0][0] = 5

        tracker = _run(body, arrays=[np.zeros(4, dtype=np.int64)])
        assert tracker.n_conflicts == 1
        assert "one side is atomic" in tracker.findings[0].detail

    def test_disjoint_writes_clean(self):
        def body(ctx, warp, item, arrays):
            arrays[0][item] = item

        tracker = _run(body, n_warps=4, arrays=[np.zeros(4, dtype=np.int64)])
        assert tracker.n_conflicts == 0

    def test_read_read_never_conflicts(self):
        def body(ctx, warp, item, arrays):
            _ = arrays[0][0]

        tracker = _run(body, n_warps=4, arrays=[np.zeros(4, dtype=np.int64)])
        assert tracker.n_conflicts == 0

    def test_ordered_launch_exempts_cross_warp(self):
        def body(ctx, warp, item, arrays):
            arrays[0][0] = item  # dependent by design

        tracker = _run(body, ordered=True, arrays=[np.zeros(4, dtype=np.int64)])
        assert tracker.n_conflicts == 0
        assert tracker.launches[0].ordered

    def test_ordered_launch_still_checks_intra_warp_scatter(self):
        def body(ctx, warp, item, arrays):
            warp.store(
                arrays[0], np.full(WARP_SIZE, 1, dtype=np.int64), warp.lane_id
            )

        tracker = _run(
            body, n_warps=1, ordered=True,
            arrays=[np.zeros(WARP_SIZE, dtype=np.int64)],
        )
        assert any(f.kind == "intra-warp-write" for f in tracker.findings)

    def test_boolean_mask_and_slice_indexing_tracked(self):
        def body(ctx, warp, item, arrays):
            mask = np.zeros(8, dtype=bool)
            mask[2] = True
            arrays[0][mask] = 1  # both warps write address 2
            _ = arrays[0][1:3]

        tracker = _run(body, arrays=[np.zeros(8, dtype=np.int64)])
        assert tracker.n_conflicts >= 1
        assert tracker.findings[0].address == 2

    def test_finding_cap_counts_all(self):
        def body(ctx, warp, item, arrays):
            for addr in range(8):
                arrays[0][addr] = item

        tracker = ShadowTracker(max_findings=3)
        ctx = GpuContext()
        with ShadowSession(ctx, tracker):
            arr = shadow_wrap(np.zeros(8, dtype=np.int64), "t.a0", tracker)

            def kernel(warp, item):
                body(ctx, warp, item, [arr])

            launch_warps(ctx, [0, 1], kernel, name="flood")
        assert len(tracker.findings) == 3
        assert tracker.n_conflicts == 8


class TestShadowArray:
    def test_wrapping_shares_buffer(self):
        base = np.zeros(4, dtype=np.int64)
        view = shadow_wrap(base, "x", ShadowTracker())
        view[1] = 7
        assert base[1] == 7

    def test_accesses_outside_launch_ignored(self):
        tracker = ShadowTracker()
        view = shadow_wrap(np.zeros(4, dtype=np.int64), "x", tracker)
        view[0] = 1
        _ = view[0]
        assert tracker.launches == []
        assert tracker.n_conflicts == 0

    def test_derived_views_lose_instrumentation(self):
        view = shadow_wrap(np.zeros(4, dtype=np.int64), "x", ShadowTracker())
        assert view[:2]._shadow_tracker is None
        assert (view + 1)._shadow_tracker is None

    def test_pickles_as_plain_array(self):
        view = shadow_wrap(np.arange(4), "x", ShadowTracker())
        restored = pickle.loads(pickle.dumps(view))
        assert not isinstance(restored, ShadowArray)
        np.testing.assert_array_equal(restored, np.arange(4))

    def test_suppressed_scope_hides_accesses(self):
        ctx = GpuContext()
        tracker = ShadowTracker()
        with ShadowSession(ctx, tracker):
            arr = shadow_wrap(np.zeros(2, dtype=np.int64), "x", tracker)

            def body(warp, item):
                with tracker.suppressed():
                    arr[0] = item  # both warps, same address: hidden

            launch_warps(ctx, [0, 1], body, name="quiet")
        assert tracker.n_conflicts == 0
        assert tracker.launches[0].n_events == 0


class TestSession:
    def test_nested_sessions_rejected(self):
        ctx = GpuContext()
        with ShadowSession(ctx):
            with pytest.raises(RuntimeError):
                ShadowSession(ctx).__enter__()

    def test_attach_restores_on_exit(self):
        class Holder:
            pass

        holder = Holder()
        holder.data = np.zeros(4, dtype=np.int64)
        original = holder.data
        ctx = GpuContext()
        with ShadowSession(ctx) as session:
            session.attach(holder, ("data",), "h")
            assert isinstance(holder.data, ShadowArray)
        assert holder.data is original
        assert ctx.shadow is None

    def test_attach_before_enter_rejected(self):
        session = ShadowSession(GpuContext())
        with pytest.raises(RuntimeError):
            session.attach(object(), (), "x")


class TestTraces:
    def test_same_kernel_same_digest(self):
        first = run_clean_kernel()
        second = run_clean_kernel()
        assert compare_traces(first.launches, second.launches) == []

    def test_divergent_streams_reported(self):
        a = run_clean_kernel(n_warps=2)
        b = run_clean_kernel(n_warps=3)
        assert compare_traces(a.launches, b.launches)

    def test_collectives_affect_digest(self):
        def run(pred_value):
            ctx = GpuContext()
            tracker = ShadowTracker()
            with ShadowSession(ctx, tracker):

                def body(warp, item):
                    warp.ballot_sync(
                        0xFFFFFFFF,
                        np.full(WARP_SIZE, pred_value, dtype=bool),
                    )

                launch_warps(ctx, [0], body, name="ballot-only")
            return tracker.launches[0].digest

        assert run(True) != run(False)
