"""Golden-finding tests: one fixture snippet per lint rule.

Each snippet is written to a path that matches the rule's scope (the
pool/ordering/ledger rules are path-scoped) and linted in isolation;
the expected findings are asserted by rule id and message fragment.
"""

import textwrap

from repro.analysis.lintcore import lint_paths, load_module
from repro.analysis.rules import ALL_RULES, get_rules


def _lint_snippet(tmp_path, relpath, code, rules=None):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return lint_paths([target], get_rules(rules) if rules else list(ALL_RULES))


class TestHotPathLoop:
    def test_loop_in_marked_file_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/hot.py",
            """
            # repro-lint: hot-path
            def drain(buffer):
                for u in buffer:
                    buffer.remove(u)
            """,
        )
        assert [f.rule for f in findings] == ["hot-path-loop"]
        assert "'u'" in findings[0].message

    def test_unmarked_file_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/cold.py",
            """
            def drain(buffer):
                for u in buffer:
                    pass
            """,
        )
        assert findings == []

    def test_warp_body_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/hot.py",
            """
            # repro-lint: hot-path
            def kernel(items):
                def body(warp, item):
                    while item:
                        item -= 1
                return body
            """,
        )
        assert findings == []

    def test_allow_pragma_with_reason(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/hot.py",
            """
            # repro-lint: hot-path
            def drain(rounds):
                # repro-lint: allow[hot-path-loop] bounded round loop
                while rounds:
                    rounds -= 1
            """,
        )
        assert findings == []

    def test_allow_pragma_without_reason_is_reported(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/hot.py",
            """
            # repro-lint: hot-path
            def drain(rounds):
                # repro-lint: allow[hot-path-loop]
                while rounds:
                    rounds -= 1
            """,
        )
        rules = sorted(f.rule for f in findings)
        assert rules == ["bad-pragma", "hot-path-loop"]


class TestUnseededRng:
    def test_global_numpy_rng_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            import numpy as np
            def jitter():
                return np.random.rand(3)
            """,
        )
        assert [f.rule for f in findings] == ["unseeded-rng"]
        assert "np.random.rand" in findings[0].message

    def test_seedless_default_rng_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
        )
        assert [f.rule for f in findings] == ["unseeded-rng"]

    def test_seeded_default_rng_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            import numpy as np
            def make(seed):
                return np.random.default_rng(seed), np.random.default_rng(seed=3)
            """,
        )
        assert findings == []

    def test_stdlib_global_rng_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            import random
            def pick(xs):
                return random.choice(xs)
            """,
        )
        assert [f.rule for f in findings] == ["unseeded-rng"]

    def test_seeded_random_instance_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            import random
            def pick(xs, seed):
                return random.Random(seed).choice(xs)
            """,
        )
        assert findings == []

    def test_seeding_module_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/utils/seeding.py",
            """
            import numpy as np
            def fresh():
                return np.random.default_rng()
            """,
        )
        assert findings == []


class TestSetIterOrder:
    def test_for_over_set_call_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def visit(vertices):
                for v in set(vertices):
                    print(v)
            """,
        )
        assert [f.rule for f in findings] == ["set-iter-order"]
        assert "sorted()" in findings[0].message

    def test_list_of_set_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/partition/x.py",
            """
            def order(vertices):
                return list({v for v in vertices})
            """,
        )
        assert [f.rule for f in findings] == ["set-iter-order"]

    def test_sorted_set_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def visit(vertices):
                for v in sorted(set(vertices)):
                    print(v)
                return sorted({1, 2})
            """,
        )
        assert findings == []

    def test_rule_scoped_to_partition_and_core(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            def visit(vertices):
                for v in set(vertices):
                    print(v)
            """,
        )
        assert findings == []


class TestUnchargedKernel:
    def test_charge_outside_scope_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def kernel(ctx, n):
                ctx.charge_wavefront(n, 5)
            """,
        )
        assert [f.rule for f in findings] == ["uncharged-kernel"]
        assert "never be priced" in findings[0].message

    def test_charge_inside_scope_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def kernel(ctx, n):
                with ctx.ledger.kernel("k"):
                    ctx.charge_wavefront(n, 5)
                    ctx.ledger.charge_transactions(n)
            """,
        )
        assert findings == []

    def test_rule_scoped_to_kernel_layers(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/gpusim/x.py",
            """
            def helper(ledger, n):
                ledger.charge_instructions(n)
            """,
        )
        assert findings == []


class TestUntrackedPoolWrite:
    def test_slot_write_without_undo_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def clobber(graph, idx, value):
                graph.bucket_list[idx] = value
            """,
        )
        assert [f.rule for f in findings] == ["untracked-pool-write"]
        assert ".bucket_list" in findings[0].message

    def test_slot_write_with_undo_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def mutate(graph, idx, value):
                graph._undo_slots(idx)
                graph.bucket_list[idx] = value
                graph.slot_wgt[idx] = value
            """,
        )
        assert findings == []

    def test_status_write_requires_status_undo(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def toggle(graph, u):
                graph._undo_slots(u)  # wrong recorder for vertex_status
                graph.vertex_status[u] = 1
            """,
        )
        assert [f.rule for f in findings] == ["untracked-pool-write"]

    def test_begin_undo_covers_both_families(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            def txn(graph, u, idx):
                graph.begin_undo()
                graph.vertex_status[u] = 1
                graph.bucket_list[idx] = u
            """,
        )
        assert findings == []

    def test_pool_implementation_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/graph/bucketlist.py",
            """
            def from_csr(graph, idx, value):
                graph.bucket_list[idx] = value
            """,
        )
        assert findings == []


class TestBlindExcept:
    def test_bare_except_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            def risky():
                try:
                    return 1
                except:
                    return 0
            """,
        )
        assert [f.rule for f in findings] == ["blind-except"]
        assert "bare except" in findings[0].message

    def test_silent_broad_except_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            def risky():
                try:
                    return 1
                except Exception:
                    pass
            """,
        )
        assert [f.rule for f in findings] == ["blind-except"]
        assert "swallows" in findings[0].message

    def test_handled_broad_except_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            def risky(log):
                try:
                    return 1
                except Exception as exc:
                    log.warning("failed: %s", exc)
                    raise
            """,
        )
        assert findings == []

    def test_narrow_silent_except_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            def probe(path):
                try:
                    return path.read_text()
                except FileNotFoundError:
                    pass
            """,
        )
        assert findings == []


class TestFramework:
    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = _lint_snippet(tmp_path, "src/x.py", "def broken(:\n")
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_hot_path_marker_detected(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text('"""Doc."""\n# repro-lint: hot-path\nx = 1\n')
        assert load_module(target).hot_path

    def test_rule_ids_unique_and_kebab(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids)) == 12
        assert all(i == i.lower() and " " not in i for i in ids)


class TestSpanLiteral:
    def test_fstring_span_name_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/phase.py",
            """
            from repro.obs import span

            def run(i):
                with span(f"batch-{i}"):
                    pass
            """,
            rules=["span-literal"],
        )
        assert [f.rule for f in findings] == ["span-literal"]
        assert "literal" in findings[0].message

    def test_variable_timed_name_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/bench.py",
            """
            from repro.utils.timing import timed

            def run(name):
                with timed(name):
                    pass
            """,
            rules=["span-literal"],
        )
        assert [f.rule for f in findings] == ["span-literal"]

    def test_attribute_call_and_keyword_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/stream/x.py",
            """
            from repro import obs

            def run(label):
                with obs.span(name=label):
                    pass
            """,
            rules=["span-literal"],
        )
        assert [f.rule for f in findings] == ["span-literal"]

    def test_literal_names_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/phase.py",
            """
            from repro.obs import span
            from repro.utils.timing import timed

            def run(i):
                with span("apply.batch", batch=i):
                    with timed("inner"):
                        pass
            """,
            rules=["span-literal"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/phase.py",
            """
            from repro.obs import span

            def run(name):
                # repro-lint: allow[span-literal] generated bench harness
                with span(name):
                    pass
            """,
            rules=["span-literal"],
        )
        assert findings == []


class TestUnsortedDictExport:
    def test_dict_copy_in_as_dict_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/stream/t.py",
            """
            class Telemetry:
                def __init__(self):
                    self.flushes_by_reason = {}

                def as_dict(self):
                    return {
                        "flushes_by_reason": dict(self.flushes_by_reason),
                    }
            """,
            rules=["unsorted-dict-export"],
        )
        assert [f.rule for f in findings] == ["unsorted-dict-export"]
        assert "insertion order" in findings[0].message

    def test_dict_copy_in_as_meta_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/stream/q.py",
            """
            class Quarantine:
                def as_meta(self, now):
                    return dict(self.entries)
            """,
            rules=["unsorted-dict-export"],
        )
        assert [f.rule for f in findings] == ["unsorted-dict-export"]

    def test_sorted_comprehension_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/stream/t.py",
            """
            class Telemetry:
                def __init__(self):
                    self.flushes_by_reason = {}

                def as_dict(self):
                    return {
                        "flushes_by_reason": {
                            k: self.flushes_by_reason[k]
                            for k in sorted(self.flushes_by_reason)
                        },
                    }
            """,
            rules=["unsorted-dict-export"],
        )
        assert findings == []

    def test_dict_copy_outside_export_methods_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/graph/g.py",
            """
            class HostGraph:
                def copy(self):
                    out = HostGraph()
                    out.active = dict(self.active)
                    return out

            def merge(meta):
                meta = dict(meta)
                return meta
            """,
            rules=["unsorted-dict-export"],
        )
        assert findings == []


class TestBlockingCallInAsync:
    def test_time_sleep_in_async_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/h.py",
            """
            import time

            async def handler(request):
                time.sleep(0.1)
                return request
            """,
            rules=["blocking-call-in-async"],
        )
        assert [f.rule for f in findings] == ["blocking-call-in-async"]
        assert "blocks" in findings[0].message
        assert "'handler'" in findings[0].message

    def test_bare_sleep_from_time_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/h.py",
            """
            from time import sleep

            async def handler(request):
                sleep(1)
            """,
            rules=["blocking-call-in-async"],
        )
        assert [f.rule for f in findings] == ["blocking-call-in-async"]
        assert "time.sleep" in findings[0].message

    def test_socket_method_on_sock_receiver_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/h.py",
            """
            import select
            import socket

            async def pump(sock, conn):
                data = sock.recv(4096)
                conn.sendall(data)
                select.select([sock], [], [])
                peer = socket.create_connection(("h", 1))
                return peer
            """,
            rules=["blocking-call-in-async"],
        )
        assert [f.rule for f in findings] == ["blocking-call-in-async"] * 4

    def test_sync_function_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/client.py",
            """
            import time

            def call(sock, payload):
                time.sleep(0.1)
                return sock.recv(4096)
            """,
            rules=["blocking-call-in-async"],
        )
        assert findings == []

    def test_asyncio_sleep_and_generator_send_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/h.py",
            """
            import asyncio

            async def handler(gen, writer):
                await asyncio.sleep(0.1)
                gen.send(None)
                writer.write(b"x")
            """,
            rules=["blocking-call-in-async"],
        )
        assert findings == []

    def test_sync_helper_nested_in_async_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/h.py",
            """
            import time

            async def handler(pool):
                def work():
                    time.sleep(0.1)
                return await pool.run(work)
            """,
            rules=["blocking-call-in-async"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/h.py",
            """
            import time

            async def handler(request):
                time.sleep(0.0)  # repro-lint: allow[blocking-call-in-async] bounded spin
            """,
            rules=["blocking-call-in-async"],
        )
        assert findings == []


class TestPoolScanOutsideSanitizer:
    def test_scan_in_product_code_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/stream/x.py",
            """
            from repro.partition.metrics import cut_size_bucketlist

            def telemetry(graph, state):
                return cut_size_bucketlist(graph, state.partition)
            """,
            rules=["pool-scan-outside-sanitizer"],
        )
        assert [f.rule for f in findings] == ["pool-scan-outside-sanitizer"]
        assert "cut_size_bucketlist" in findings[0].message

    def test_arc_matrix_attribute_call_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/core/x.py",
            """
            from repro.partition import metrics

            def rebuild(graph, partition, k):
                return metrics.arc_matrix_bucketlist(graph, partition, k)
            """,
            rules=["pool-scan-outside-sanitizer"],
        )
        assert [f.rule for f in findings] == ["pool-scan-outside-sanitizer"]

    def test_metrics_and_cutcheck_modules_exempt(self, tmp_path):
        for relpath in (
            "src/repro/partition/metrics.py",
            "src/repro/partition/cutcheck.py",
        ):
            findings = _lint_snippet(
                tmp_path,
                relpath,
                """
                def verify(graph, partition, k):
                    return arc_matrix_bucketlist(graph, partition, k)
                """,
                rules=["pool-scan-outside-sanitizer"],
            )
            assert findings == []

    def test_accumulator_cut_matrix_read_not_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/x.py",
            """
            def telemetry(state):
                # O(k^2) incremental read, not a pool scan.
                return state.cut_acc.cut_matrix(state.partition)
            """,
            rules=["pool-scan-outside-sanitizer"],
        )
        assert findings == []

    def test_csr_cut_matrix_scan_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/eval/x.py",
            """
            from repro.partition.metrics import cut_matrix

            def report(csr, partition, k):
                return cut_matrix(csr, partition, k)
            """,
            rules=["pool-scan-outside-sanitizer"],
        )
        assert [f.rule for f in findings] == ["pool-scan-outside-sanitizer"]

    def test_allow_pragma_with_reason(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/partition/x.py",
            """
            def bootstrap(graph, partition, k):
                # repro-lint: allow[pool-scan-outside-sanitizer] one-time bootstrap
                return arc_matrix_bucketlist(graph, partition, k)
            """,
            rules=["pool-scan-outside-sanitizer"],
        )
        assert findings == []


class TestUnjitteredRetryLoop:
    def test_no_sleep_retry_loop_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/net.py",
            """
            def fetch(call, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return call()
                    except OSError:
                        continue
            """,
        )
        assert [f.rule for f in findings] == ["unjittered-retry-loop"]
        assert "never sleeps" in findings[0].message

    def test_constant_sleep_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/net.py",
            """
            import time

            def fetch(call, retries):
                while retries:
                    try:
                        return call()
                    except OSError:
                        retries -= 1
                        time.sleep(0.1)
            """,
        )
        assert [f.rule for f in findings] == ["unjittered-retry-loop"]
        assert "constant delay" in findings[0].message

    def test_backoff_call_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/net.py",
            """
            def fetch(client, call, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return call()
                    except OSError:
                        client._backoff(attempt)
            """,
        )
        assert findings == []

    def test_computed_sleep_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/net.py",
            """
            import time

            def fetch(call, max_attempts, rng):
                for attempt in range(max_attempts):
                    try:
                        return call()
                    except OSError:
                        time.sleep(0.01 * 2**attempt * rng.random())
            """,
        )
        assert findings == []

    def test_attempt_loop_without_except_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/gen.py",
            """
            def expand(max_attempts):
                try:
                    out = []
                    for attempt in range(max_attempts):
                        out.append(attempt)
                except MemoryError:
                    raise
                return out
            """,
        )
        assert findings == []

    def test_non_attempt_drain_loop_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/drain.py",
            """
            def drain(pending, call):
                while pending:
                    try:
                        call(pending.pop())
                    except KeyError:
                        continue
            """,
        )
        assert findings == []

    def test_reraising_handler_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/net.py",
            """
            def fetch(call, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return call()
                    except OSError:
                        raise
            """,
        )
        assert findings == []

    def test_allow_pragma_with_reason(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/anywhere/net.py",
            """
            def fetch(call, max_attempts):
                # repro-lint: allow[unjittered-retry-loop] simulated time
                for attempt in range(max_attempts):
                    try:
                        return call()
                    except OSError:
                        continue
            """,
        )
        assert findings == []


class TestUnlabeledTenantMetric:
    def test_global_registration_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/bad_server.py",
            """
            class PartitionServer:
                def __init__(self, metrics):
                    self.requests = metrics.counter(
                        "serve_tenant_requests_total", "doc"
                    )
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert [f.rule for f in findings] == ["unlabeled-tenant-metric"]
        assert "tenant-scoped registry" in findings[0].message

    def test_fstring_head_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/bad_hist.py",
            """
            def register(metrics, op):
                return metrics.histogram(
                    f"serve_tenant_op_latency_seconds_{op}", "doc"
                )
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert [f.rule for f in findings] == ["unlabeled-tenant-metric"]
        assert "module scope" in findings[0].message

    def test_tenant_scoped_registration_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/good_quotas.py",
            """
            class TenantAccount:
                def __init__(self, registry):
                    self.requests = registry.counter(
                        "serve_tenant_requests_total", "doc"
                    )
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert findings == []

    def test_other_metric_names_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/good_server.py",
            """
            class PartitionServer:
                def __init__(self, metrics):
                    self.requests = metrics.counter(
                        "serve_requests_total", "doc"
                    )
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert findings == []

    def test_unlabeled_export_of_account_registry_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/bad_scrape.py",
            """
            def scrape(accounts):
                parts = []
                for account in accounts.values():
                    parts.append(account.registry.to_prometheus())
                return "".join(parts)
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert [f.rule for f in findings] == ["unlabeled-tenant-metric"]
        assert "to_prometheus_labeled" in findings[0].message

    def test_global_registry_export_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/good_scrape.py",
            """
            def scrape(server):
                return server.metrics.to_prometheus()
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert findings == []

    def test_allow_pragma_with_reason(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "src/repro/serve/shim.py",
            """
            def scrape(account):
                # repro-lint: allow[unlabeled-tenant-metric] migration shim
                return account.registry.to_prometheus()
            """,
            rules=["unlabeled-tenant-metric"],
        )
        assert findings == []
