"""Effect extraction and fixed-point propagation."""

import textwrap

from repro.analysis.effects.infer import infer_effects


def _engine(tmp_path, tree):
    for relpath, code in tree.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
    return infer_effects([tmp_path])


class TestDirectEffects:
    def test_wal_append_detected(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/serve/a.py": """
                class Server:
                    def op(self):
                        self.wal.append_create("t", "s", {})
                """
            },
        )
        sig = engine.signature("repro.serve.a.Server.op")
        assert "wal.append" in sig.direct

    def test_ledger_charge_detected(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/core/b.py": """
                def bill(ledger):
                    ledger.charge_instructions(4)
                """
            },
        )
        assert "ledger.charge" in engine.signature(
            "repro.core.b.bill"
        ).direct

    def test_rng_detected_and_seed_param_recorded(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/core/c.py": """
                import numpy as np

                def seeded(seed):
                    return np.random.default_rng(seed)

                def unseeded():
                    return np.random.default_rng()
                """
            },
        )
        seeded = engine.signature("repro.core.c.seeded")
        unseeded = engine.signature("repro.core.c.unseeded")
        assert "rng" in seeded.direct and seeded.has_seed_param
        assert "rng" in unseeded.direct and not unseeded.has_seed_param

    def test_device_write_charged_inside_kernel_scope(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/core/d.py": """
                def charged(ctx, graph):
                    with ctx.ledger.kernel("scatter"):
                        graph.bucket_list[0] = 1

                def uncharged(graph):
                    graph.bucket_list[0] = 1
                """
            },
        )
        charged = engine.signature("repro.core.d.charged")
        uncharged = engine.signature("repro.core.d.uncharged")
        assert "device.write" in charged.direct
        assert "device.write.uncharged" not in charged.direct
        assert "device.write.uncharged" in uncharged.direct


class TestPropagation:
    def test_effects_propagate_transitively(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/serve/e.py": """
                class Wal:
                    def append_create(self):
                        pass

                class Server:
                    def _persist(self):
                        self.wal.append_create()

                    def _dispatch(self):
                        self._persist()

                    def op(self):
                        self._dispatch()
                """
            },
        )
        # Wal.append_create is itself the wal.append primitive by name.
        assert "wal.append" in engine.signature(
            "repro.serve.e.Server.op"
        ).effects

    def test_kernel_scoped_call_discharges_uncharged_write(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/core/f.py": """
                def scatter(graph):
                    graph.bucket_list[0] = 1

                def covered(ctx, graph):
                    with ctx.ledger.kernel("scatter"):
                        scatter(graph)

                def exposed(graph):
                    scatter(graph)
                """
            },
        )
        assert "device.write.uncharged" in engine.signature(
            "repro.core.f.scatter"
        ).effects
        assert "device.write.uncharged" not in engine.signature(
            "repro.core.f.covered"
        ).effects
        assert "device.write.uncharged" in engine.signature(
            "repro.core.f.exposed"
        ).effects

    def test_recursive_cycle_reaches_fixed_point(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/core/g.py": """
                def ping(ledger, n):
                    if n:
                        pong(ledger, n - 1)

                def pong(ledger, n):
                    ledger.charge_instructions(1)
                    ping(ledger, n)
                """
            },
        )
        assert "ledger.charge" in engine.signature(
            "repro.core.g.ping"
        ).effects
        assert "ledger.charge" in engine.signature(
            "repro.core.g.pong"
        ).effects


class TestEventOrdering:
    def test_events_preserve_source_order(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/serve/h.py": """
                def ok_response(**fields):
                    return dict(fields)

                class Server:
                    def good(self):
                        self.wal.append_create()
                        return ok_response(ok=True)

                    def bad(self):
                        response = ok_response(ok=True)
                        self.wal.append_create()
                        return response
                """
            },
        )
        wal = frozenset({"wal.append"})
        ack = frozenset({"ack"})
        good = engine.signature("repro.serve.h.Server.good")
        bad = engine.signature("repro.serve.h.Server.bad")
        assert good.first_index(wal, engine) < good.first_index(ack, engine)
        assert bad.first_index(ack, engine) < bad.first_index(wal, engine)


class TestExposure:
    def test_exposed_functions_stop_at_kernel_scoped_edges(self, tmp_path):
        engine = _engine(
            tmp_path,
            {
                "src/repro/core/i.py": """
                def leaf(graph):
                    graph.bucket_list[0] = 1

                def covered_entry(ctx, graph):
                    with ctx.ledger.kernel("k"):
                        leaf(graph)
                """
            },
        )
        exposed = engine.exposed_functions()
        # covered_entry is a root, but the only edge to leaf is
        # kernel-scoped, so leaf itself is not root-exposed.
        assert "repro.core.i.covered_entry" in exposed
        assert "repro.core.i.leaf" not in exposed
