"""Golden fixtures: every invariant fires on its seeded-bad tree.

The same pairs back ``tools/effects_gate.py``'s self-test stage; the
tests here additionally pin per-invariant details (finding symbol,
pragma suppression, real-tree cleanliness and the performance budget).
"""

import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.effects.fixtures import (
    FIXTURES,
    materialize,
    run_fixture,
    run_selftest,
)
from repro.analysis.effects.invariants import (
    INVARIANTS,
    run_effects_analysis,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestCatalog:
    def test_every_invariant_has_a_fixture_pair(self):
        assert {inv.id for inv in INVARIANTS} == set(FIXTURES)

    def test_selftest_passes(self):
        assert run_selftest() == []


@pytest.mark.parametrize("invariant_id", sorted(FIXTURES))
class TestGoldenFixtures:
    def test_bad_tree_flagged(self, invariant_id):
        findings = run_fixture(FIXTURES[invariant_id][0])
        assert invariant_id in {f.rule for f in findings}

    def test_good_tree_clean(self, invariant_id):
        findings = run_fixture(FIXTURES[invariant_id][1])
        assert [f for f in findings if f.rule == invariant_id] == []


class TestFindingShape:
    def test_wal_after_ack_finding_names_the_op(self):
        findings = run_fixture(FIXTURES["wal-after-ack"][0])
        hit = next(f for f in findings if f.rule == "wal-after-ack")
        assert hit.symbol.endswith("BadServer._op_create")

    def test_digest_leak_is_interprocedural(self):
        # The bad fixture reaches cut_acc through a helper, so a hit
        # proves the checker followed the call edge.
        findings = run_fixture(FIXTURES["digest-reaches-cutacc"][0])
        hit = next(f for f in findings if f.rule == "digest-reaches-cutacc")
        assert "state_digest" in hit.symbol

    def test_backend_billing_is_transitive(self):
        findings = run_fixture(FIXTURES["ledgered-backend-kernel"][0])
        hit = next(
            f for f in findings if f.rule == "ledgered-backend-kernel"
        )
        assert "CheatingBackend" in hit.symbol


class TestPragmaSuppression:
    def test_allow_pragma_silences_an_invariant(self, tmp_path):
        tree = {
            "src/repro/core/pragma_write.py": textwrap.dedent(
                """
                def blank_slots(graph, positions):
                    # repro-lint: allow[uncharged-device-write] host-side rebuild priced by the caller
                    graph.bucket_list[positions] = -1
                """
            )
        }
        findings = run_fixture(tree)
        assert [
            f for f in findings if f.rule == "uncharged-device-write"
        ] == []

    def test_unrelated_allow_does_not_suppress(self, tmp_path):
        tree = {
            "src/repro/core/pragma_other.py": textwrap.dedent(
                """
                def blank_slots(graph, positions):
                    # repro-lint: allow[unseeded-rng] wrong rule on purpose
                    graph.bucket_list[positions] = -1
                """
            )
        }
        findings = run_fixture(tree)
        assert "uncharged-device-write" in {f.rule for f in findings}


class TestMutationSeeding:
    """Mutate a copy of the *real* serve tree and re-find the bug."""

    def test_wal_moved_after_ack_in_real_server_is_caught(self, tmp_path):
        source = (REPO_SRC / "serve" / "wal.py").read_text()
        server = (REPO_SRC / "serve" / "server.py").read_text()
        # Seed the bug: an op that acks before persisting.
        server += textwrap.dedent(
            """

            class SeededBadServer:
                def _op_create_seeded(self, request):
                    response = ok_response(ok=True)
                    self.wal.append_create("t", "s", {})
                    return response
            """
        )
        tree_root = tmp_path / "seeded"
        materialize(
            {
                "src/repro/serve/wal.py": source,
                "src/repro/serve/server.py": server,
            },
            tree_root,
        )
        findings, _ = run_effects_analysis([tree_root])
        hits = [f for f in findings if f.rule == "wal-after-ack"]
        assert hits, "seeded WAL-after-ack mutation was not re-found"
        assert any(
            "SeededBadServer._op_create_seeded" in f.symbol for f in hits
        )

    def test_digest_leak_seeded_into_real_transaction_is_caught(
        self, tmp_path
    ):
        # Mutate the *real* state_digest to fold the derived cut
        # accumulator into the hash — the classic way this invariant
        # would regress.
        transaction = (REPO_SRC / "core" / "transaction.py").read_text()
        marker = "    h = hashlib.sha256()\n"
        assert marker in transaction
        transaction = transaction.replace(
            marker,
            marker + "    _leak = state.cut_acc if state is not None else None\n",
            1,
        )
        tree_root = tmp_path / "seeded"
        materialize(
            {"src/repro/core/transaction.py": transaction}, tree_root
        )
        findings, _ = run_effects_analysis([tree_root])
        hits = [f for f in findings if f.rule == "digest-reaches-cutacc"]
        assert any("state_digest" in f.symbol for f in hits), [
            str(f) for f in findings
        ]


class TestRealTree:
    def test_repo_is_clean_and_fast(self):
        start = time.perf_counter()
        findings, timing = run_effects_analysis([REPO_SRC])
        elapsed = time.perf_counter() - start
        assert findings == [], [str(f) for f in findings]
        assert elapsed < 10.0, f"effects pass took {elapsed:.1f}s"
        # Sanity: the pass actually analyzed the tree.
        assert timing.n_functions > 500
