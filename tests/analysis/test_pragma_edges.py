"""Pragma parsing edge cases: decorators, multi-rule allows, f-strings."""

import textwrap

from repro.analysis.lintcore import lint_paths, load_module
from repro.analysis.rules import ALL_RULES


def _load(tmp_path, code, relpath="src/repro/core/mod.py"):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return load_module(target)


class TestDecoratorLinePragma:
    def test_pragma_on_decorator_covers_the_def(self, tmp_path):
        info = _load(
            tmp_path,
            """
            def deco(fn):
                return fn

            @deco  # repro-lint: allow[blind-except] decorator wraps the handler
            def handler():
                pass
            """,
        )
        # The def itself sits one line below the decorator; findings
        # about the function anchor there.
        assert info.is_allowed("blind-except", 6)

    def test_pragma_on_one_of_several_decorators(self, tmp_path):
        info = _load(
            tmp_path,
            """
            def a(fn):
                return fn

            def b(fn):
                return fn

            @a
            @b  # repro-lint: allow[unseeded-rng] rng comes from the b wrapper
            def handler():
                pass
            """,
        )
        assert info.is_allowed("unseeded-rng", 10)

    def test_decorator_pragma_does_not_leak_to_other_defs(self, tmp_path):
        info = _load(
            tmp_path,
            """
            def deco(fn):
                return fn

            @deco  # repro-lint: allow[blind-except] scoped to handler only
            def handler():
                pass

            def other():
                pass
            """,
        )
        assert not info.is_allowed("blind-except", 9)


class TestMultiRuleAllow:
    def test_allow_two_rules_on_one_line(self, tmp_path):
        info = _load(
            tmp_path,
            """
            x = 1  # repro-lint: allow[blind-except,unseeded-rng] both justified here
            """,
        )
        assert info.is_allowed("blind-except", 2)
        assert info.is_allowed("unseeded-rng", 2)
        assert not info.is_allowed("hot-path-loop", 2)

    def test_spaces_after_comma_accepted(self, tmp_path):
        info = _load(
            tmp_path,
            """
            x = 1  # repro-lint: allow[blind-except, unseeded-rng] spaced list
            """,
        )
        assert info.is_allowed("unseeded-rng", 2)

    def test_multi_rule_shares_one_reason(self, tmp_path):
        info = _load(
            tmp_path,
            """
            x = 1  # repro-lint: allow[blind-except,unseeded-rng] one reason for both
            """,
        )
        assert (
            info.allowed[2]["blind-except"]
            == info.allowed[2]["unseeded-rng"]
            == "one reason for both"
        )


class TestMissingReason:
    def test_single_rule_without_reason_rejected(self, tmp_path):
        info = _load(tmp_path, "x = 1  # repro-lint: allow[blind-except]\n")
        assert not info.is_allowed("blind-except", 1)
        assert any(
            f.rule == "bad-pragma" and "missing" in f.message
            for f in info.pragma_findings
        )

    def test_multi_rule_without_reason_rejected(self, tmp_path):
        info = _load(
            tmp_path, "x = 1  # repro-lint: allow[blind-except,unseeded-rng]\n"
        )
        assert not info.is_allowed("blind-except", 1)
        assert not info.is_allowed("unseeded-rng", 1)
        assert any(f.rule == "bad-pragma" for f in info.pragma_findings)

    def test_missing_reason_surfaces_through_lint(self, tmp_path):
        target = tmp_path / "src/repro/core/mod.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("x = 1  # repro-lint: allow[blind-except]\n")
        findings = lint_paths([target], list(ALL_RULES))
        assert any(f.rule == "bad-pragma" for f in findings)


class TestFStringCorners:
    def test_pragma_text_inside_fstring_is_inert(self, tmp_path):
        info = _load(
            tmp_path,
            """
            note = f"{1} # repro-lint: allow[blind-except] not a comment"
            """,
        )
        assert not info.is_allowed("blind-except", 2)
        assert info.pragma_findings == []

    def test_pragma_text_inside_plain_string_is_inert(self, tmp_path):
        info = _load(
            tmp_path,
            '''
            doc = """
            # repro-lint: allow[blind-except] documentation example
            """
            ''',
        )
        assert info.allowed == {}

    def test_real_comment_after_fstring_still_works(self, tmp_path):
        info = _load(
            tmp_path,
            """
            note = f"{1}"  # repro-lint: allow[blind-except] real trailing comment
            """,
        )
        assert info.is_allowed("blind-except", 2)

    def test_hot_path_marker_inside_string_is_inert(self, tmp_path):
        info = _load(
            tmp_path,
            """
            doc = "# repro-lint: hot-path"
            """,
        )
        assert not info.hot_path


class TestStandaloneComment:
    def test_standalone_pragma_covers_next_line(self, tmp_path):
        info = _load(
            tmp_path,
            """
            # repro-lint: allow[blind-except] statement below is long
            x = 1
            """,
        )
        assert info.is_allowed("blind-except", 2)
        assert info.is_allowed("blind-except", 3)
