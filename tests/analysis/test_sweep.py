"""Sanitized-sweep acceptance tests.

These pin the gate's dynamic contracts as regular tests: the seeded
incremental workload is race-free under shadow mode, its access traces
are deterministic, and instrumentation is cost-neutral — the ledger and
the produced partition are bit-identical with the sanitizer on and off.
"""

from repro.analysis.sweep import (
    SWEEP_BATCHES,
    SWEEP_SEED,
    SWEEP_VERTICES,
    check_determinism,
    run_sanitized_sweep,
)
from repro.core.igkway import IGKway
from repro.gpusim.context import GpuContext
from repro.partition.config import PartitionConfig


def test_seeded_sweep_is_race_free():
    report = run_sanitized_sweep()
    assert report.clean, report.summary() + "\n" + "\n".join(
        str(f) for f in report.findings[:5]
    )
    # The sweep must actually exercise the incremental kernels.
    assert len(report.launches) >= 3
    kernels = {launch.kernel for launch in report.launches}
    assert "apply-modifiers" in kernels


def test_seeded_sweep_is_deterministic():
    report, problems = check_determinism()
    assert problems == []
    assert report.clean


def test_vector_mode_sweep_also_clean():
    report = run_sanitized_sweep(mode="vector")
    assert report.clean, report.summary()


def test_sanitizer_is_ledger_neutral():
    """Same workload with and without shadow: identical cost and output."""
    from repro.analysis.sweep import _sweep_workload

    csr, trace = _sweep_workload(SWEEP_VERTICES, SWEEP_BATCHES, SWEEP_SEED)
    ctx = GpuContext()
    ig = IGKway(csr, PartitionConfig(k=4, mode="warp"), ctx=ctx)
    ig.full_partition()
    for batch in trace:
        ig.apply(batch)
    bare_total = ctx.ledger.total
    bare_cut = ig.cut_size()

    shadowed = run_sanitized_sweep()
    assert shadowed.ledger_instructions == bare_total.warp_instructions
    assert shadowed.ledger_transactions == bare_total.transactions
    assert shadowed.final_cut == bare_cut
