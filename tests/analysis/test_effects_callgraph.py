"""Call-graph construction: resolution rules the invariants rely on."""

import textwrap

from repro.analysis.effects.callgraph import build_callgraph


def _graph(tmp_path, tree):
    for relpath, code in tree.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
    return build_callgraph([tmp_path])


def _callees(graph, qualname):
    out = set()
    for site in graph.calls.get(qualname, []):
        out.update(site.callees)
    return out


class TestDirectCalls:
    def test_same_module_call(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/a.py": """
                def helper():
                    pass

                def driver():
                    helper()
                """
            },
        )
        assert "repro.core.a.helper" in _callees(graph, "repro.core.a.driver")

    def test_imported_module_qualified_call(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/util.py": """
                def clamp(x):
                    return x
                """,
                "src/repro/core/b.py": """
                from repro.core import util

                def driver(x):
                    return util.clamp(x)
                """,
            },
        )
        assert "repro.core.util.clamp" in _callees(graph, "repro.core.b.driver")

    def test_from_import_call(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/util.py": """
                def clamp(x):
                    return x
                """,
                "src/repro/core/c.py": """
                from repro.core.util import clamp

                def driver(x):
                    return clamp(x)
                """,
            },
        )
        assert "repro.core.util.clamp" in _callees(graph, "repro.core.c.driver")


class TestMethodResolution:
    def test_self_method(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/d.py": """
                class Engine:
                    def _step(self):
                        pass

                    def run(self):
                        self._step()
                """
            },
        )
        assert "repro.core.d.Engine._step" in _callees(
            graph, "repro.core.d.Engine.run"
        )

    def test_annotated_parameter_receiver(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/e.py": """
                class Ledger:
                    def charge(self, n):
                        pass

                def bill(ledger: Ledger):
                    ledger.charge(1)
                """
            },
        )
        assert "repro.core.e.Ledger.charge" in _callees(
            graph, "repro.core.e.bill"
        )

    def test_init_attribute_receiver(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/f.py": """
                class Wal:
                    def append_create(self):
                        pass

                class Server:
                    def __init__(self):
                        self.wal = Wal()

                    def op(self):
                        self.wal.append_create()
                """
            },
        )
        assert "repro.core.f.Wal.append_create" in _callees(
            graph, "repro.core.f.Server.op"
        )

    def test_inherited_method_resolves_through_base(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/g.py": """
                class Base:
                    def work(self):
                        pass

                class Child(Base):
                    def run(self):
                        self.work()
                """
            },
        )
        assert "repro.core.g.Base.work" in _callees(
            graph, "repro.core.g.Child.run"
        )

    def test_ambiguous_name_not_resolved_by_unique_definer(self, tmp_path):
        # ``copy`` is on the deny-list: a bare ``x.copy()`` with an
        # unknown receiver must not link to some class's copy method.
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/h.py": """
                class State:
                    def copy(self):
                        pass

                def driver(x):
                    return x.copy()
                """
            },
        )
        assert "repro.core.h.State.copy" not in _callees(
            graph, "repro.core.h.driver"
        )


class TestBackendDispatch:
    def test_backend_call_expands_to_all_subclasses(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/backend/__init__.py": """
                class KernelBackend:
                    pass

                def get_backend():
                    return KernelBackend()
                """,
                "src/repro/core/backend/np_impl.py": """
                from repro.core.backend import KernelBackend

                class NumpyBackend(KernelBackend):
                    def scan(self, xs):
                        return xs
                """,
                "src/repro/core/i.py": """
                from repro.core.backend import get_backend

                def driver(xs):
                    return get_backend().scan(xs)
                """,
            },
        )
        assert "repro.core.backend.np_impl.NumpyBackend.scan" in _callees(
            graph, "repro.core.i.driver"
        )


class TestKernelScope:
    def test_call_inside_ledger_kernel_is_kernel_scoped(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/j.py": """
                def scatter(graph):
                    graph.bucket_list[0] = 1

                def driver(ctx, graph):
                    with ctx.ledger.kernel("scatter"):
                        scatter(graph)
                    scatter(graph)
                """
            },
        )
        sites = [
            s
            for s in graph.calls["repro.core.j.driver"]
            if "repro.core.j.scatter" in s.callees
        ]
        assert [s.kernel_scoped for s in sites] == [True, False]


class TestHigherOrder:
    def test_function_valued_argument_becomes_callee(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/k.py": """
                def work():
                    pass

                def schedule(fn):
                    fn()

                def driver():
                    schedule(work)
                """
            },
        )
        assert "repro.core.k.work" in _callees(graph, "repro.core.k.driver")


class TestRoots:
    def test_uncalled_function_is_a_root(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "src/repro/core/m.py": """
                def helper():
                    pass

                def entry():
                    helper()
                """
            },
        )
        roots = graph.roots()
        assert "repro.core.m.entry" in roots
        assert "repro.core.m.helper" not in roots
