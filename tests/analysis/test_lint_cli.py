"""repro-lint CLI behavior: exit codes, baseline modes, JSON output."""

import json
import textwrap

from repro.analysis.cli import main

RACY_SNIPPET = """
import numpy as np
def jitter():
    return np.random.rand(3)
"""


def _write(tmp_path, code=RACY_SNIPPET):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(code))
    return target


def test_clean_tree_exits_zero(tmp_path, capsys):
    target = _write(tmp_path, "x = 1\n")
    assert main([str(target)]) == 0
    assert "clean" in capsys.readouterr().out


def test_finding_exits_one(tmp_path, capsys):
    target = _write(tmp_path)
    assert main([str(target)]) == 1
    assert "unseeded-rng" in capsys.readouterr().out


def test_baseline_absorbs_findings(tmp_path):
    target = _write(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["--update-baseline", str(baseline), str(target)]) == 0
    assert main(["--baseline", str(baseline), str(target)]) == 0


def test_stale_baseline_entry_fails(tmp_path, capsys):
    target = _write(tmp_path)
    baseline = tmp_path / "baseline.json"
    main(["--update-baseline", str(baseline), str(target)])
    target.write_text("x = 1\n")  # finding fixed; baseline now stale
    assert main(["--baseline", str(baseline), str(target)]) == 1
    assert "stale" in capsys.readouterr().out


def test_rule_selection(tmp_path):
    target = _write(tmp_path)
    assert main(["--rules", "blind-except", str(target)]) == 0
    assert main(["--rules", "unseeded-rng", str(target)]) == 1


def test_json_output(tmp_path, capsys):
    target = _write(tmp_path)
    assert main(["--json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "unseeded-rng"
    assert payload[0]["line"] == 4


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "hot-path-loop", "unseeded-rng", "set-iter-order",
        "uncharged-kernel", "untracked-pool-write", "blind-except",
    ):
        assert rule_id in out
