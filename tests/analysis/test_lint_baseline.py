"""Baseline diff logic: absorb counts, expose extras, report stale."""

from repro.analysis.baseline import Baseline
from repro.analysis.lintcore import Finding


def _f(rule="r", path="p.py", line=1, message="m"):
    return Finding(rule=rule, path=path, line=line, message=message)


class TestFilter:
    def test_baselined_finding_absorbed(self):
        baseline = Baseline.from_findings([_f()])
        new, stale = baseline.filter([_f(line=99)])  # line moved: still same key
        assert new == []
        assert stale == []

    def test_extra_occurrence_is_new(self):
        baseline = Baseline.from_findings([_f()])
        new, stale = baseline.filter([_f(line=1), _f(line=2)])
        assert len(new) == 1
        assert stale == []

    def test_unmatched_entry_reported_stale(self):
        baseline = Baseline.from_findings([_f(), _f(message="other")])
        new, stale = baseline.filter([_f()])
        assert new == []
        assert len(stale) == 1
        assert "other" in stale[0]

    def test_empty_baseline_passes_everything_through(self):
        new, stale = Baseline().filter([_f(), _f(rule="q")])
        assert len(new) == 2
        assert stale == []


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline.from_findings([_f(), _f(), _f(rule="q")])
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries.keys() == original.entries.keys()
        assert loaded.entries[("r", "p.py", "m")].count == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}

    def test_update_preserves_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        first = Baseline.from_findings([_f()])
        first.entries[("r", "p.py", "m")].reason = "grandfathered: reviewed"
        first.save(path)
        regenerated = Baseline.from_findings(
            [_f(), _f(rule="q")], reasons=Baseline.load(path).reasons
        )
        assert (
            regenerated.entries[("r", "p.py", "m")].reason
            == "grandfathered: reviewed"
        )
        assert regenerated.entries[("q", "p.py", "m")].reason == "TODO: justify"
