"""Distributed trace context + flight recorder unit tests.

Covers the wire ``trace`` field (mint/validate), the shared
:class:`TraceRecorder` (span allocation, engine-trace folding,
grouping, determinism digest, export schema), and the
:class:`FlightRecorder` ring (capacity, dump artifact, validator).
"""

import pytest

from repro.obs.distrib import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    TraceRecorder,
    load_flight,
    make_trace_id,
    parse_wire_trace,
    validate_flight,
    wire_trace,
)
from repro.obs.export import load_trace, validate_trace
from repro.obs.tracer import Tracer, span


class TestWireTrace:
    def test_trace_id_is_counter_derived(self):
        assert make_trace_id("acme", "submit", 3) == "acme/submit#3"

    def test_wire_roundtrip(self):
        request = {
            "op": "submit",
            "trace": wire_trace("acme/submit#0", parent_span=7, attempt=2),
        }
        parsed = parse_wire_trace(request)
        assert parsed == {
            "id": "acme/submit#0",
            "parent": 7,
            "attempt": 2,
        }

    def test_untraced_request_is_none(self):
        assert parse_wire_trace({"op": "hello"}) is None

    def test_parent_omitted_when_absent(self):
        assert "parent" not in wire_trace("t/x#0")
        parsed = parse_wire_trace({"trace": wire_trace("t/x#0")})
        assert parsed["parent"] is None and parsed["attempt"] == 0

    @pytest.mark.parametrize(
        "trace",
        [
            "not-a-dict",
            {"id": ""},
            {"id": 7},
            {"id": "t/x#0", "parent": "root"},
            {"id": "t/x#0", "parent": True},
            {"id": "t/x#0", "attempt": -1},
            {"id": "t/x#0", "attempt": "second"},
        ],
    )
    def test_malformed_context_raises(self, trace):
        with pytest.raises(ValueError):
            parse_wire_trace({"trace": trace})


class TestTraceRecorder:
    def test_span_ids_allocate_sequentially(self):
        recorder = TraceRecorder()
        a = recorder.record_span("client.hello")
        b = recorder.record_span("client.hello")
        assert (a.span_id, b.span_id) == (0, 1)

    def test_record_span_stamps_context(self):
        recorder = TraceRecorder()
        event = recorder.record_span(
            "serve.submit",
            trace={"id": "t/submit#0", "tenant": "t"},
            parent=4,
            depth=1,
            device_cycles=12.5,
        )
        assert event.trace == {"id": "t/submit#0", "tenant": "t"}
        assert event.parent == 4
        assert recorder.events[-1] is event

    def test_fold_remaps_reparents_and_stamps(self):
        recorder = TraceRecorder()
        root = recorder.record_span("serve.submit", depth=1)
        tracer = Tracer(session="t/submit#0")
        with tracer.activate():
            with span("outer"):
                with span("inner"):
                    pass
        grafted = recorder.fold(
            tracer.events,
            trace={"id": "t/submit#0"},
            parent=root.span_id,
            base_depth=2,
            start_offset=5.0,
        )
        by_name = {event.name: event for event in grafted}
        outer, inner = by_name["outer"], by_name["inner"]
        # Engine ids are remapped through the recorder's counter...
        assert {outer.span_id, inner.span_id} == {1, 2}
        # ...the engine root re-parents under the op span, internal
        # parent/child links survive, depths shift, context lands.
        assert outer.parent == root.span_id
        assert inner.parent == outer.span_id
        assert (outer.depth, inner.depth) == (2, 3)
        assert inner.start >= 5.0
        assert all(e.trace == {"id": "t/submit#0"} for e in grafted)

    def test_traces_groups_by_id(self):
        recorder = TraceRecorder()
        recorder.record_span("client.a", trace={"id": "t/a#0"})
        recorder.record_span("serve.a", trace={"id": "t/a#0"})
        recorder.record_span("client.b", trace={"id": "t/b#1"})
        recorder.record_span("loose")
        groups = recorder.traces()
        assert {k: len(v) for k, v in groups.items()} == {
            "t/a#0": 2,
            "t/b#1": 1,
            "": 1,
        }

    def test_structure_digest_ignores_host_time_only(self):
        def build(duration):
            recorder = TraceRecorder()
            recorder.record_span(
                "serve.submit",
                trace={"id": "t/submit#0"},
                start=duration,
                duration=duration,
                device_cycles=99.0,
            )
            return recorder

        assert (
            build(0.1).structure_digest()
            == build(0.9).structure_digest()
        )
        other = TraceRecorder()
        other.record_span(
            "serve.submit",
            trace={"id": "t/submit#1"},
            device_cycles=99.0,
        )
        assert build(0.1).structure_digest() != other.structure_digest()

    def test_export_is_valid_trace_schema(self, tmp_path):
        recorder = TraceRecorder(session="unit")
        root = recorder.record_span(
            "client.submit", trace={"id": "t/submit#0", "attempt": 0}
        )
        recorder.record_span(
            "serve.submit",
            trace={"id": "t/submit#0"},
            parent=root.span_id,
            depth=1,
        )
        path = recorder.export(tmp_path / "trace.jsonl")
        assert validate_trace(path) == []
        header, events = load_trace(path)
        assert header["session"] == "unit"
        assert [e.name for e in events] == ["client.submit", "serve.submit"]
        assert events[0].trace == {"id": "t/submit#0", "attempt": 0}


class TestFlightRecorder:
    def test_capacity_rolls_oldest_off(self):
        flight = FlightRecorder(capacity=3)
        for index in range(5):
            flight.record("request", op=f"op{index}")
        ops = [record["op"] for record in flight.snapshot()]
        assert ops == ["op2", "op3", "op4"]
        # seq keeps counting even as entries roll off.
        assert [r["seq"] for r in flight.snapshot()] == [2, 3, 4]

    def test_unknown_kind_rejected(self):
        flight = FlightRecorder(capacity=4)
        with pytest.raises(ValueError, match="unknown flight event"):
            flight.record("explosion")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_note_span_compacts_event(self):
        flight = FlightRecorder(capacity=4)
        recorder = TraceRecorder()
        event = recorder.record_span(
            "serve.submit",
            trace={"id": "t/submit#0"},
            device_cycles=3.5,
        )
        flight.note_span(event)
        (record,) = flight.snapshot()
        assert record["kind"] == "span"
        assert record["name"] == "serve.submit"
        assert record["trace"] == {"id": "t/submit#0"}
        assert record["device_cycles"] == 3.5

    def test_dump_validates_and_roundtrips(self, tmp_path):
        flight = FlightRecorder(capacity=8, session="unit")
        flight.record("request", op="submit", tenant="acme")
        flight.record("worker_dead", worker=0)
        path = flight.dump(tmp_path, reason="worker-0-dead")
        assert path.name.startswith("flightrec-")
        assert validate_flight(path) == []
        header, events = load_flight(path)
        assert header["schema"] == FLIGHT_SCHEMA
        assert header["reason"] == "worker-0-dead"
        assert header["events"] == 2
        assert [e["kind"] for e in events] == ["request", "worker_dead"]

    def test_dumps_in_same_second_do_not_collide(self, tmp_path):
        flight = FlightRecorder(capacity=2)
        flight.record("crash", reason="test")
        first = flight.dump(tmp_path, reason="a")
        second = flight.dump(tmp_path, reason="b")
        assert first != second
        assert validate_flight(second) == []

    def test_validator_rejects_corruption(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        flight.record("request", op="submit")
        flight.record("response", op="submit")
        path = flight.dump(tmp_path, reason="ok")
        lines = path.read_text().splitlines()
        # Swap the two events: seq goes non-increasing.
        path.write_text("\n".join([lines[0], lines[2], lines[1]]) + "\n")
        assert any("not increasing" in e for e in validate_flight(path))
        # Decapitate: missing header is the first thing reported.
        path.write_text("")
        assert validate_flight(path) == [
            "empty flight dump (missing header line)"
        ]
