"""Dashboard unit tests: scrape parsing, dataset, HTML round-trip.

The dashboard's contract is that its page is a pure function of one
Prometheus scrape: ``dashboard_data`` extracts the dataset,
``render_dashboard`` embeds it, ``extract_data_block`` reads it back
bit-identically (what ``tools/serve_obs_gate.py`` enforces against a
live server).
"""

import pytest

from repro.obs.dashboard import (
    DASHBOARD_SCHEMA,
    dashboard_data,
    extract_data_block,
    parse_prometheus,
    render_dashboard,
)

#: A hand-written two-tenant scrape in the exact shapes the server
#: emits (labeled tenant series + unlabeled server series).
SCRAPE = """\
# HELP serve_tenant_requests_total requests handled for this tenant
# TYPE serve_tenant_requests_total counter
serve_tenant_requests_total{tenant="acme"} 6
serve_tenant_requests_total{tenant="bravo"} 4
serve_tenant_rejected_total{tenant="acme"} 1
serve_tenant_rejected_total{tenant="bravo"} 0
serve_tenant_shed_total{tenant="acme"} 2
serve_tenant_shed_total{tenant="bravo"} 0
serve_tenant_device_cycles_total{tenant="acme"} 1234.5
serve_tenant_device_cycles_total{tenant="bravo"} 600.25
serve_tenant_sessions_live{tenant="acme"} 1
serve_tenant_sessions_live{tenant="bravo"} 2
# TYPE serve_tenant_op_latency_seconds_submit histogram
serve_tenant_op_latency_seconds_submit_bucket{tenant="acme",le="0.005"} 2
serve_tenant_op_latency_seconds_submit_bucket{tenant="acme",le="0.025"} 3
serve_tenant_op_latency_seconds_submit_bucket{tenant="acme",le="+Inf"} 4
serve_tenant_op_latency_seconds_submit_sum{tenant="acme"} 0.08
serve_tenant_op_latency_seconds_submit_count{tenant="acme"} 4
serve_tenant_op_latency_seconds_submit_bucket{tenant="bravo",le="0.005"} 1
serve_tenant_op_latency_seconds_submit_bucket{tenant="bravo",le="0.025"} 1
serve_tenant_op_latency_seconds_submit_bucket{tenant="bravo",le="+Inf"} 1
serve_tenant_op_latency_seconds_submit_sum{tenant="bravo"} 0.001
serve_tenant_op_latency_seconds_submit_count{tenant="bravo"} 1
serve_requests_total 10
serve_rejected_total 1
serve_flight_dumps_total 2
serve_workers_alive 2
serve_workers_dead 1
"""


class TestParsePrometheus:
    def test_samples_grouped_by_name(self):
        samples = parse_prometheus(SCRAPE)
        assert samples["serve_tenant_requests_total"] == [
            ({"tenant": "acme"}, 6.0),
            ({"tenant": "bravo"}, 4.0),
        ]
        assert samples["serve_workers_dead"] == [({}, 1.0)]

    def test_multi_label_samples(self):
        samples = parse_prometheus(
            'lat_bucket{tenant="a",le="+Inf"} 3\n'
        )
        assert samples["lat_bucket"] == [
            ({"tenant": "a", "le": "+Inf"}, 3.0)
        ]

    def test_escaped_label_values_unescaped(self):
        samples = parse_prometheus(
            'm{tenant="a\\"b\\\\c\\nd"} 1\n'
        )
        ((labels, _value),) = samples["m"]
        assert labels["tenant"] == 'a"b\\c\nd'

    def test_comments_and_blanks_skipped(self):
        assert parse_prometheus("# HELP x y\n\n# TYPE x counter\n") == {}

    def test_garbage_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus("!!! not a sample\n")

    def test_non_numeric_value_raises(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus("m{} up\n")


class TestDashboardData:
    def test_tenants_and_ops_discovered(self):
        data = dashboard_data(SCRAPE)
        assert data["schema"] == DASHBOARD_SCHEMA
        assert sorted(data["tenants"]) == ["acme", "bravo"]
        assert data["ops"] == ["submit"]

    def test_tenant_figures(self):
        acme = dashboard_data(SCRAPE)["tenants"]["acme"]
        assert acme["requests"] == 6.0
        assert acme["rejected"] == 1.0
        assert acme["shed"] == 2.0
        assert acme["device_cycles"] == 1234.5
        assert acme["sessions_live"] == 1.0

    def test_latency_buckets_keep_scrape_spelling(self):
        submit = dashboard_data(SCRAPE)["tenants"]["acme"]["latency"][
            "submit"
        ]
        assert submit["count"] == 4.0
        assert submit["sum"] == 0.08
        assert submit["buckets"] == [
            ["0.005", 2.0],
            ["0.025", 3.0],
            ["+Inf", 4.0],
        ]

    def test_within_slo_reads_the_exact_bucket(self):
        data = dashboard_data(SCRAPE, slo_seconds=0.025)
        acme = data["tenants"]["acme"]["latency"]["submit"]
        bravo = data["tenants"]["bravo"]["latency"]["submit"]
        assert acme["within_slo"] == 3.0 / 4.0
        assert bravo["within_slo"] == 1.0

    def test_server_and_worker_sections(self):
        data = dashboard_data(SCRAPE)
        assert data["workers"] == {"alive": 2.0, "dead": 1.0}
        assert data["server"] == {
            "requests_total": 10.0,
            "rejected_total": 1.0,
            "flight_dumps_total": 2.0,
        }

    def test_empty_scrape_yields_empty_dataset(self):
        data = dashboard_data("")
        assert data["tenants"] == {}
        assert data["ops"] == []


class TestRenderDashboard:
    def test_page_is_self_contained_html(self):
        page = render_dashboard(SCRAPE, title="unit dashboard")
        assert page.lstrip().lower().startswith("<!doctype html")
        assert "unit dashboard" in page
        assert "<svg" in page and "</html>" in page
        assert "<script src=" not in page
        assert "<link rel=" not in page

    def test_embedded_dataset_roundtrips_exactly(self):
        page = render_dashboard(SCRAPE)
        assert extract_data_block(page) == dashboard_data(SCRAPE)

    def test_custom_slo_threads_through(self):
        page = render_dashboard(SCRAPE, slo_seconds=0.005)
        assert extract_data_block(page)["slo_seconds"] == 0.005

    def test_empty_scrape_still_renders(self):
        page = render_dashboard("")
        assert page.lstrip().lower().startswith("<!doctype html")
        assert extract_data_block(page)["tenants"] == {}

    def test_corrupt_scrape_raises(self):
        with pytest.raises(ValueError):
            render_dashboard("!!! torn scrape")
