"""Trace serialization: JSONL round-trip, validation, Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.gpusim.context import GpuContext
from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    chrome_trace,
    load_trace,
    span,
    validate_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_trace,
)


def _traced_run() -> Tracer:
    ctx = GpuContext()
    tracer = Tracer(ledger=ctx.ledger, session="export-test")
    with tracer.activate():
        with span("outer", batch=3):
            with span("inner"):
                with ctx.ledger.section("s"), ctx.ledger.kernel("k"):
                    ctx.ledger.charge_instructions(64)
                    ctx.ledger.charge_transactions(8)
    return tracer


def test_jsonl_round_trip(tmp_path):
    tracer = _traced_run()
    path = write_trace(tracer, tmp_path / "t.jsonl")
    header, events = load_trace(path)
    assert header["schema"] == TRACE_SCHEMA
    assert header["session"] == "export-test"
    assert header["has_ledger"] is True
    assert [e.as_dict() for e in events] == [
        e.as_dict() for e in tracer.events
    ]
    assert validate_trace(path) == []


def test_jsonl_lines_have_sorted_keys(tmp_path):
    path = write_trace(_traced_run(), tmp_path / "t.jsonl")
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert list(record) == sorted(record)


def test_validate_reports_schema_violations(tmp_path):
    tracer = _traced_run()
    path = write_trace(tracer, tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()

    bad_header = tmp_path / "bad_header.jsonl"
    bad_header.write_text(
        json.dumps({"schema": "other-v9"}) + "\n" + "\n".join(lines[1:])
    )
    assert any("schema" in e for e in validate_trace(bad_header))

    bad_field = tmp_path / "bad_field.jsonl"
    record = json.loads(lines[1])
    record["warp_instructions"] = "lots"
    bad_field.write_text("\n".join([lines[0], json.dumps(record)]))
    assert any("warp_instructions" in e for e in validate_trace(bad_field))

    dangling = tmp_path / "dangling.jsonl"
    record = json.loads(lines[1])
    record["parent"] = 10_000
    dangling.write_text("\n".join([lines[0], json.dumps(record)]))
    assert any("parent" in e for e in validate_trace(dangling))

    with pytest.raises(ValueError):
        load_trace(bad_field)


def test_children_before_parents_is_valid(tmp_path):
    # The tracer appends spans on *close*, so children precede their
    # parent in the file; validation must accept forward parent refs.
    tracer = Tracer()
    with tracer.activate():
        with span("parent"):
            with span("child"):
                pass
    assert [e.name for e in tracer.events] == ["child", "parent"]
    path = write_trace(tracer, tmp_path / "t.jsonl")
    assert validate_trace(path) == []


def test_chrome_export_shape_and_validation(tmp_path):
    tracer = _traced_run()
    rendered = chrome_trace(tracer.header(), tracer.events)
    assert validate_chrome_trace(rendered) == []
    events = rendered["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in slices} == {"outer", "inner"}
    assert [e["name"] for e in instants] == ["kernel:k"]
    inner = next(e for e in slices if e["name"] == "inner")
    assert inner["dur"] >= 0
    assert inner["args"]["warp_instructions"] == 64
    path = write_chrome_trace(
        tracer.header(), tracer.events, tmp_path / "t.json"
    )
    assert validate_chrome_trace(json.loads(path.read_text())) == []
    assert validate_chrome_trace(path) == []


def test_validate_chrome_trace_catches_bad_events():
    assert validate_chrome_trace({"no": "traceEvents"})
    missing_dur = {
        "traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0}
        ]
    }
    assert any("dur" in e for e in validate_chrome_trace(missing_dur))
