"""Metrics registry contracts: typing, idempotency, sorted exports."""

from __future__ import annotations

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    c.sync(17)
    assert c.value == 17


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(10)
    g.dec(3)
    g.inc()
    assert g.value == 8


def test_histogram_cumulative_buckets_and_quantiles():
    h = Histogram("h", buckets=(1.0, 10.0))
    for v in (0.5, 2.0, 5.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(107.5)
    # Cumulative: le=1 sees 1, le=10 sees 3, +Inf sees all 4.
    assert h.buckets == (1.0, 10.0, float("inf"))
    assert h.counts == [1, 3, 4]
    assert h.quantile_bound(0.5) == 10.0
    assert h.quantile_bound(1.0) == float("inf")
    assert Histogram("empty").quantile_bound(0.9) == 0.0


def test_histogram_always_inf_terminated():
    h = Histogram("h", buckets=(5.0, 1.0))
    assert h.buckets == (1.0, 5.0, float("inf"))


def test_registry_idempotent_and_type_checked():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "help text")
    again = registry.counter("x_total")
    assert first is again
    with pytest.raises(TypeError):
        registry.gauge("x_total")
    assert "x_total" in registry
    assert len(registry) == 1


def test_as_dict_sorted_regardless_of_registration_order():
    a = MetricsRegistry()
    a.counter("zeta_total").inc(1)
    a.gauge("alpha").set(2)
    b = MetricsRegistry()
    b.gauge("alpha").set(2)
    b.counter("zeta_total").inc(1)
    assert a.as_dict() == b.as_dict()
    assert list(a.as_dict()) == sorted(a.as_dict())


def test_as_dict_flattens_histograms():
    registry = MetricsRegistry()
    h = registry.histogram("lat", buckets=(1.0,))
    h.observe(0.5)
    snapshot = registry.as_dict()
    assert snapshot["lat_count"] == 1
    assert snapshot["lat_sum"] == 0.5
    assert snapshot["lat_bucket_1.0"] == 1
    assert snapshot["lat_bucket_+Inf"] == 1


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("requests_total", "requests seen").inc(3)
    registry.gauge("depth").set(2.5)
    registry.histogram("lat", buckets=(1.0,)).observe(0.25)
    text = registry.to_prometheus()
    assert "# TYPE requests_total counter" in text
    assert "requests_total 3" in text
    assert "# HELP requests_total requests seen" in text
    assert "# TYPE depth gauge" in text
    assert "depth 2.5" in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text
    assert text.endswith("\n")
    assert MetricsRegistry().to_prometheus() == ""


def test_default_registry_reset():
    reset_default_registry()
    default_registry().counter("seen_total").inc()
    assert default_registry().as_dict() == {"seen_total": 1}
    fresh = reset_default_registry()
    assert fresh is default_registry()
    assert default_registry().as_dict() == {}
