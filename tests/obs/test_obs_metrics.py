"""Metrics registry contracts: typing, idempotency, sorted exports."""

from __future__ import annotations

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    c.sync(17)
    assert c.value == 17


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(10)
    g.dec(3)
    g.inc()
    assert g.value == 8


def test_histogram_cumulative_buckets_and_quantiles():
    h = Histogram("h", buckets=(1.0, 10.0))
    for v in (0.5, 2.0, 5.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(107.5)
    # Cumulative: le=1 sees 1, le=10 sees 3, +Inf sees all 4.
    assert h.buckets == (1.0, 10.0, float("inf"))
    assert h.counts == [1, 3, 4]
    assert h.quantile_bound(0.5) == 10.0
    assert h.quantile_bound(1.0) == float("inf")
    assert Histogram("empty").quantile_bound(0.9) == 0.0


def test_histogram_always_inf_terminated():
    h = Histogram("h", buckets=(5.0, 1.0))
    assert h.buckets == (1.0, 5.0, float("inf"))


def test_registry_idempotent_and_type_checked():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "help text")
    again = registry.counter("x_total")
    assert first is again
    with pytest.raises(TypeError):
        registry.gauge("x_total")
    assert "x_total" in registry
    assert len(registry) == 1


def test_as_dict_sorted_regardless_of_registration_order():
    a = MetricsRegistry()
    a.counter("zeta_total").inc(1)
    a.gauge("alpha").set(2)
    b = MetricsRegistry()
    b.gauge("alpha").set(2)
    b.counter("zeta_total").inc(1)
    assert a.as_dict() == b.as_dict()
    assert list(a.as_dict()) == sorted(a.as_dict())


def test_as_dict_flattens_histograms():
    registry = MetricsRegistry()
    h = registry.histogram("lat", buckets=(1.0,))
    h.observe(0.5)
    snapshot = registry.as_dict()
    assert snapshot["lat_count"] == 1
    assert snapshot["lat_sum"] == 0.5
    assert snapshot["lat_bucket_1.0"] == 1
    assert snapshot["lat_bucket_+Inf"] == 1


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("requests_total", "requests seen").inc(3)
    registry.gauge("depth").set(2.5)
    registry.histogram("lat", buckets=(1.0,)).observe(0.25)
    text = registry.to_prometheus()
    assert "# TYPE requests_total counter" in text
    assert "requests_total 3" in text
    assert "# HELP requests_total requests seen" in text
    assert "# TYPE depth gauge" in text
    assert "depth 2.5" in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text
    assert text.endswith("\n")
    assert MetricsRegistry().to_prometheus() == ""


def test_default_registry_reset():
    reset_default_registry()
    default_registry().counter("seen_total").inc()
    assert default_registry().as_dict() == {"seen_total": 1}
    fresh = reset_default_registry()
    assert fresh is default_registry()
    assert default_registry().as_dict() == {}


class TestMergeInto:
    def test_counters_and_gauges_merge(self):
        from repro.obs import merge_into

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("reqs", "h").inc(3)
        a.gauge("depth", "h").set(7)
        b.counter("reqs", "h").inc(4)
        b.counter("only_b", "h").inc(1)
        merged = MetricsRegistry()
        merge_into(merged, a)
        merge_into(merged, b)
        snapshot = merged.as_dict()
        assert snapshot["reqs"] == 7
        assert snapshot["depth"] == 7
        assert snapshot["only_b"] == 1

    def test_histograms_merge_bucketwise(self):
        from repro.obs import merge_into

        a, b = MetricsRegistry(), MetricsRegistry()
        bounds = (1.0, 10.0)
        a.histogram("lat", "h", buckets=bounds).observe(0.5)
        b.histogram("lat", "h", buckets=bounds).observe(5.0)
        merged = MetricsRegistry()
        merge_into(merged, a)
        merge_into(merged, b)
        hist = merged.get("lat")
        assert hist.count == 2
        assert hist.sum == 5.5

    def test_mismatched_buckets_rejected(self):
        from repro.obs import merge_into

        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", "h", buckets=(1.0,)).observe(0.5)
        b.histogram("lat", "h", buckets=(2.0,)).observe(0.5)
        merged = MetricsRegistry()
        merge_into(merged, a)
        with pytest.raises(ValueError, match="bucket"):
            merge_into(merged, b)


class TestLabeledExport:
    def _registries(self):
        from collections import OrderedDict

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("reqs_total", "requests").inc(3)
        b.counter("reqs_total", "requests").inc(5)
        b.gauge("depth", "queue depth").set(2)
        # Deliberately insertion-ordered b-first: export must sort.
        return OrderedDict((("beta", b), ("alpha", a)))

    def test_help_type_once_sample_per_label(self):
        from repro.obs import to_prometheus_labeled

        text = to_prometheus_labeled(self._registries(), label="tenant")
        assert text.count("# HELP reqs_total") == 1
        assert text.count("# TYPE reqs_total counter") == 1
        assert 'reqs_total{tenant="alpha"} 3' in text
        assert 'reqs_total{tenant="beta"} 5' in text
        # Only beta has the gauge; alpha contributes no sample for it.
        assert 'depth{tenant="beta"} 2' in text
        assert 'depth{tenant="alpha"}' not in text
        # Label values sorted within a metric block.
        assert text.index('reqs_total{tenant="alpha"}') < text.index(
            'reqs_total{tenant="beta"}'
        )

    def test_histogram_labels_ride_with_le(self):
        from repro.obs import to_prometheus_labeled

        a = MetricsRegistry()
        a.histogram("lat", "h", buckets=(1.0,)).observe(0.5)
        text = to_prometheus_labeled({"t0": a}, label="tenant")
        assert 'lat_bucket{tenant="t0",le="1.0"} 1' in text
        assert 'lat_bucket{tenant="t0",le="+Inf"} 1' in text
        assert 'lat_count{tenant="t0"} 1' in text

    def test_cross_registry_type_conflict_rejected(self):
        from repro.obs import to_prometheus_labeled

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", "h")
        b.gauge("x", "h")
        with pytest.raises(TypeError):
            to_prometheus_labeled({"a": a, "b": b}, label="tenant")

    def test_label_values_escaped(self):
        from repro.obs import escape_label_value, to_prometheus_labeled

        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        a = MetricsRegistry()
        a.counter("x", "h").inc()
        text = to_prometheus_labeled({'we"ird': a}, label="tenant")
        assert 'x{tenant="we\\"ird"} 1' in text
