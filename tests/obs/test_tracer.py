"""Tracer contracts: nesting, attribution, batching, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.gpusim.context import GpuContext
from repro.obs import Tracer, active_tracer, span


def test_span_is_noop_without_tracer():
    assert active_tracer() is None
    with span("never-recorded"):
        pass
    assert active_tracer() is None


def test_span_records_host_times_and_nesting():
    tracer = Tracer(session="t")
    with tracer.activate():
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
    names = [e.name for e in tracer.events]
    # Children close (and append) before their parent.
    assert names == ["inner", "inner", "outer"]
    outer = tracer.events[-1]
    inner_first = tracer.events[0]
    assert outer.depth == 0 and outer.parent is None
    assert inner_first.depth == 1 and inner_first.parent == outer.span_id
    assert outer.duration >= inner_first.duration >= 0.0
    # Same-name spans accumulate in the phase dict.
    assert tracer.phase_seconds["inner"] == pytest.approx(
        tracer.events[0].duration + tracer.events[1].duration
    )


def test_ledger_attribution_covers_charged_work():
    ctx = GpuContext()
    tracer = Tracer(ledger=ctx.ledger, session="t")
    with tracer.activate():
        with span("work"):
            with ctx.ledger.section("s"), ctx.ledger.kernel("k"):
                ctx.ledger.charge_instructions(640)
                ctx.ledger.charge_transactions(32)
    spans = [e for e in tracer.events if e.kind == "span"]
    kernels = [e for e in tracer.events if e.kind == "kernel"]
    assert len(spans) == 1 and len(kernels) == 1
    work = spans[0]
    assert work.warp_instructions == 640
    assert work.transactions == 32
    assert work.kernel_launches == 1
    assert work.device_seconds > 0
    model = ctx.ledger.model
    assert work.device_cycles == pytest.approx(
        work.device_seconds * model.device.clock_ghz * 1e9
    )
    k = kernels[0]
    assert k.name == "k" and k.section == "s" and k.count == 1
    assert k.parent == work.span_id


def test_kernel_launches_aggregate_per_name_under_innermost_span():
    ctx = GpuContext()
    tracer = Tracer(ledger=ctx.ledger)
    with tracer.activate():
        with span("phase"):
            for _ in range(5):
                with ctx.ledger.section("s"), ctx.ledger.kernel("again"):
                    ctx.ledger.charge_instructions(32)
    kernels = [e for e in tracer.events if e.kind == "kernel"]
    assert len(kernels) == 1
    assert kernels[0].count == 5
    assert kernels[0].kernel_launches == 5
    assert kernels[0].warp_instructions == 5 * 32


def test_batch_correlation_propagates_and_restores():
    tracer = Tracer()
    with tracer.activate():
        with span("window", batch=42):
            with span("child"):
                pass
        with span("after"):
            pass
    by_name = {e.name: e for e in tracer.events}
    assert by_name["window"].batch == 42
    assert by_name["child"].batch == 42
    assert by_name["after"].batch is None


def test_nested_tracer_wins_and_outer_restored():
    outer = Tracer()
    inner = Tracer()
    with outer.activate():
        with span("outer-only"):
            pass
        with inner.activate():
            assert active_tracer() is inner
            with span("inner-only"):
                pass
        assert active_tracer() is outer
    assert [e.name for e in outer.events] == ["outer-only"]
    assert [e.name for e in inner.events] == ["inner-only"]


def test_cross_thread_activation_raises():
    outer = Tracer()
    errors: list[BaseException] = []

    def other_thread():
        try:
            with Tracer().activate():
                pass
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    with outer.activate():
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
    assert len(errors) == 1
    assert isinstance(errors[0], RuntimeError)
    # After the contested activation, the owning thread still works.
    with Tracer().activate() as t:
        with span("ok"):
            pass
    assert [e.name for e in t.events] == ["ok"]


def test_exception_inside_span_still_closes_it():
    tracer = Tracer()
    with tracer.activate():
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
    assert [e.name for e in tracer.events] == ["doomed"]
    assert active_tracer() is None


def test_ledger_delta_tracks_activation_window():
    ctx = GpuContext()
    with ctx.ledger.section("pre"), ctx.ledger.kernel("warmup"):
        ctx.ledger.charge_instructions(100)
    tracer = Tracer(ledger=ctx.ledger)
    with tracer.activate():
        with span("work"):
            with ctx.ledger.section("s"), ctx.ledger.kernel("k"):
                ctx.ledger.charge_instructions(64)
    delta = tracer.ledger_delta()
    assert delta is not None
    assert delta.warp_instructions == 64
    assert Tracer().ledger_delta() is None
