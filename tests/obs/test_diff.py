"""Trace diffing and the ``repro-obs`` CLI."""

from __future__ import annotations

import json

from repro.obs import (
    TraceEvent,
    aggregate,
    diff_traces,
    event_key,
    format_diff,
    format_summary,
    summarize,
    write_trace_records,
)
from repro.obs.cli import main as obs_main
from repro.obs.tracer import TRACE_SCHEMA


def _span(name, span_id, cycles=0.0, host=0.0, instr=0, **kw):
    return TraceEvent(
        kind="span",
        name=name,
        span_id=span_id,
        parent=kw.pop("parent", None),
        depth=kw.pop("depth", 0),
        duration=host,
        device_cycles=cycles,
        warp_instructions=instr,
        **kw,
    )


def _kernel(name, span_id, parent, section="s", count=1, cycles=0.0):
    return TraceEvent(
        kind="kernel",
        name=name,
        span_id=span_id,
        parent=parent,
        depth=1,
        section=section,
        count=count,
        device_cycles=cycles,
    )


def test_event_key_distinguishes_kernels_by_section():
    s = _span("phase", 0)
    k1 = _kernel("scan", 1, 0, section="a")
    k2 = _kernel("scan", 2, 0, section="b")
    assert event_key(s) == "phase"
    assert event_key(k1) == "kernel:scan@a"
    assert event_key(k1) != event_key(k2)


def test_aggregate_sums_same_key_and_counts_kernel_launches():
    events = [
        _span("phase", 0, cycles=10.0, host=0.5),
        _span("phase", 1, cycles=5.0, host=0.25),
        _kernel("scan", 2, 0, count=7, cycles=3.0),
    ]
    totals = aggregate(events)
    assert totals["phase"].count == 2
    assert totals["phase"].device_cycles == 15.0
    assert totals["phase"].host_seconds == 0.75
    # Kernel rows contribute their launch count, not 1.
    assert totals["kernel:scan@s"].count == 7


def test_diff_detects_device_regression_and_ranks_it_first():
    before = [_span("a", 0, cycles=100.0), _span("b", 1, cycles=50.0)]
    after = [_span("a", 0, cycles=100.0), _span("b", 1, cycles=90.0)]
    diff = diff_traces(before, after)
    assert diff.deltas[0].key == "b"
    regressions = diff.device_regressions()
    assert [d.key for d in regressions] == ["b"]
    assert diff.max_abs_device_delta() == 40.0
    assert not diff.has_structural_change
    assert "b" in format_diff(diff)


def test_diff_flags_structural_change():
    before = [_span("a", 0)]
    after = [_span("a", 0), _span("new-phase", 1)]
    diff = diff_traces(before, after)
    assert diff.only_after == ["new-phase"]
    assert diff.has_structural_change
    assert "new-phase" in format_diff(diff)


def test_host_regression_needs_tolerance_and_floor():
    before = [_span("a", 0, host=1.0)]
    after = [_span("a", 0, host=1.3)]
    delta = diff_traces(before, after).deltas[0]
    # 30% over with 20% tolerance + 0.05s floor: 1.3 > 1.25 regresses.
    assert delta.is_host_regression(tolerance=0.20, floor=0.05)
    assert not delta.is_host_regression(tolerance=0.30, floor=0.05)
    # Sub-floor jitter never regresses, whatever the percentage.
    small_b = [_span("a", 0, host=0.001)]
    small_a = [_span("a", 0, host=0.010)]
    assert not diff_traces(small_b, small_a).deltas[0].is_host_regression()


def test_summarize_spans_only_by_default():
    events = [
        _span("phase", 0, cycles=10.0),
        _kernel("scan", 1, 0, cycles=99.0),
    ]
    assert [key for key, _ in summarize(events)] == ["phase"]
    keys = [key for key, _ in summarize(events, spans_only=False)]
    assert set(keys) == {"phase", "kernel:scan@s"}
    assert "phase" in format_summary(events)


def _write(tmp_path, name, events):
    header = {"schema": TRACE_SCHEMA, "session": "t", "has_ledger": True}
    return write_trace_records(header, events, tmp_path / name)


def test_cli_diff_zero_delta_exits_zero(tmp_path, capsys):
    events = [_span("a", 0, cycles=10.0, host=0.01)]
    before = _write(tmp_path, "before.jsonl", events)
    after = _write(tmp_path, "after.jsonl", events)
    out_json = tmp_path / "diff.json"
    code = obs_main(
        ["diff", str(before), str(after), "--json", str(out_json)]
    )
    assert code == 0
    assert "0 device-cycle regressions" in capsys.readouterr().out
    payload = json.loads(out_json.read_text())
    assert payload["deltas"][0]["device_cycles_delta"] == 0.0


def test_cli_diff_device_regression_exits_one(tmp_path):
    before = _write(tmp_path, "b.jsonl", [_span("a", 0, cycles=10.0)])
    after = _write(tmp_path, "a.jsonl", [_span("a", 0, cycles=20.0)])
    assert obs_main(["diff", str(before), str(after)]) == 1


def test_cli_diff_host_only_fails_only_with_flag(tmp_path):
    before = _write(tmp_path, "b.jsonl", [_span("a", 0, host=1.0)])
    after = _write(tmp_path, "a.jsonl", [_span("a", 0, host=5.0)])
    assert obs_main(["diff", str(before), str(after)]) == 0
    assert (
        obs_main(["diff", str(before), str(after), "--fail-on-host"]) == 1
    )


def test_cli_summary_and_chrome(tmp_path, capsys):
    trace = _write(
        tmp_path,
        "t.jsonl",
        [_span("phase", 0, cycles=10.0, host=0.01)],
    )
    assert obs_main(["summary", str(trace)]) == 0
    assert "phase" in capsys.readouterr().out
    out = tmp_path / "t.chrome.json"
    assert obs_main(["chrome", str(trace), "-o", str(out)]) == 0
    rendered = json.loads(out.read_text())
    assert rendered["traceEvents"][0]["name"] == "phase"


def test_cli_rejects_invalid_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema": "nope"}\n')
    try:
        obs_main(["summary", str(bad)])
    except SystemExit as exc:
        assert exc.code == 1
    else:  # pragma: no cover - the call must raise
        raise AssertionError("invalid trace was accepted")
    assert "schema" in capsys.readouterr().err
