"""Legacy setup shim.

The evaluation environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable installs fail with ``invalid command
'bdist_wheel'``.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``) work offline.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
