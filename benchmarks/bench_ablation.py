"""Ablation benches for the design choices DESIGN.md calls out.

1. **Constrained coarsening** (Section IV): vs plain union-find — the
   constrained strategy keeps coarse vertex weights balanced.
2. **Spare buckets (gamma)** (Section V.A): a higher gamma absorbs more
   edge insertions before the relocation fallback fires.
3. **Execution modes**: the warp-faithful path and the vectorized path
   produce identical partitions; vector is much faster wall-clock.
4. **FM refinement**: the reproduction's quality booster in G-kway —
   improves cuts at some wall-clock cost (it exists so that the
   baseline's quality is a fair stand-in for the real G-kway).
5. **Affected-vertex filtering** (Algorithm 3): filtering out vertices
   with ``adj_int >= adj_ext`` keeps the pseudo-partition (and hence the
   refinement work) small.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import once
from repro import IGKway, PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import (
    BucketListGraph,
    CSRGraph,
    EdgeInsert,
    ModifierBatch,
    circuit_graph,
    mesh_graph_2d,
)
from repro.gpusim import GpuContext
from repro.partition import (
    GKwayPartitioner,
    build_groups_constrained,
    build_groups_unionfind,
    coarse_weight_imbalance,
    group_vertices,
)


# -- 1. coarsening strategy ---------------------------------------------------


@pytest.mark.parametrize("strategy", ["unionfind", "constrained"])
def test_ablation_coarsening_fgp(benchmark, strategy):
    csr = mesh_graph_2d(4096)
    config = PartitionConfig(k=8, seed=3, coarsening=strategy)
    result = once(benchmark, GKwayPartitioner(config).partition, csr)
    benchmark.extra_info["cut"] = result.cut
    benchmark.extra_info["balanced"] = result.balanced
    assert result.balanced


def test_ablation_coarse_weight_balance(benchmark):
    csr = mesh_graph_2d(4096)

    def compute():
        roots, labels = group_vertices(csr, match_iterations=3, seed=3)
        uf = coarse_weight_imbalance(
            build_groups_unionfind(roots), csr.vwgt
        )
        con = coarse_weight_imbalance(
            build_groups_constrained(roots, labels, 6), csr.vwgt
        )
        return uf, con

    uf, con = once(benchmark, compute)
    benchmark.extra_info["unionfind_imbalance"] = round(uf, 2)
    benchmark.extra_info["constrained_imbalance"] = round(con, 2)
    # The Section IV claim: constrained grouping is flatter.
    assert con < uf


# -- 2. gamma (spare buckets) ---------------------------------------------------


@pytest.mark.parametrize("gamma", [0, 1, 4])
def test_ablation_gamma_relocations(benchmark, gamma):
    """Insert many edges on few vertices; count forced relocations."""
    csr = circuit_graph(600, 1.3, seed=2)

    def run():
        graph = BucketListGraph.from_csr(csr, gamma=gamma)
        ctx = GpuContext()
        from repro.core import apply_batch

        relocations_before = graph.num_buckets_used
        batch = ModifierBatch()
        hubs = [0, 1, 2]
        partner = 50
        for hub in hubs:
            existing = set(graph.neighbors(hub).tolist())
            added = 0
            p = partner
            while added < 40:
                if p not in existing and p != hub and not graph.has_edge(
                    hub, p
                ):
                    batch.append(EdgeInsert(hub, p))
                    existing.add(p)
                    added += 1
                p += 1
            partner = p
        apply_batch(ctx, graph, batch, mode="vector")
        graph.validate()
        grown = graph.num_buckets_used - relocations_before
        return grown

    grown = once(benchmark, run)
    benchmark.extra_info["pool_buckets_grown"] = int(grown)
    if gamma == 4:
        # Enough spare capacity: (almost) no relocation needed for the
        # 40-edge bursts (40 extra neighbors fit in 4 spare buckets).
        assert grown <= 3


def test_ablation_gamma_monotone():
    """Higher gamma -> fewer pool growths, at a memory cost."""
    csr = circuit_graph(600, 1.3, seed=2)
    grown_by_gamma = {}
    nbytes_by_gamma = {}
    for gamma in (0, 1, 4):
        graph = BucketListGraph.from_csr(csr, gamma=gamma)
        ctx = GpuContext()
        from repro.core import apply_batch

        before = graph.num_buckets_used
        batch = ModifierBatch(
            [EdgeInsert(0, v) for v in range(100, 140)]
        )
        apply_batch(ctx, graph, batch, mode="vector")
        grown_by_gamma[gamma] = graph.num_buckets_used - before
        nbytes_by_gamma[gamma] = graph.nbytes()
    assert grown_by_gamma[0] >= grown_by_gamma[1] >= grown_by_gamma[4]


# -- 3. execution mode ---------------------------------------------------------


@pytest.mark.parametrize("mode", ["warp", "vector"])
def test_ablation_mode_wall_time(benchmark, mode):
    csr = circuit_graph(800, 1.4, seed=4)
    trace = generate_trace(
        csr, TraceConfig(iterations=3, modifiers_per_iteration=40, seed=4)
    )

    def run():
        ig = IGKway(csr, PartitionConfig(k=2, seed=4, mode=mode))
        ig.full_partition()
        for batch in trace:
            ig.apply(batch)
        return ig.partition.copy()

    partition = once(benchmark, run)
    benchmark.extra_info["checksum"] = int(
        np.sum(partition[partition >= 0])
    )


def test_ablation_modes_identical():
    """The two paths are bit-identical (the differential guarantee)."""
    csr = circuit_graph(500, 1.4, seed=4)
    trace = generate_trace(
        csr, TraceConfig(iterations=2, modifiers_per_iteration=30, seed=4)
    )
    outputs = {}
    for mode in ("warp", "vector"):
        ig = IGKway(csr, PartitionConfig(k=4, seed=4, mode=mode))
        ig.full_partition()
        for batch in trace:
            ig.apply(batch)
        outputs[mode] = ig.partition.copy()
    assert np.array_equal(outputs["warp"], outputs["vector"])


# -- 4. FM refinement ------------------------------------------------------------


@pytest.mark.parametrize("fm_passes", [0, 2])
def test_ablation_fm_quality(benchmark, fm_passes):
    csr = mesh_graph_2d(2500)
    config = PartitionConfig(k=2, seed=5, fm_passes=fm_passes)
    result = once(benchmark, GKwayPartitioner(config).partition, csr)
    benchmark.extra_info["cut"] = result.cut
    assert result.balanced


# -- 5. affected-vertex filtering --------------------------------------------------


def test_ablation_filter_limits_pseudo(benchmark):
    """The adj_ext > adj_int filter keeps refinement work bounded: the
    pseudo set stays a small fraction of the affected set."""
    csr = circuit_graph(3000, 1.4, seed=6)
    trace = generate_trace(
        csr, TraceConfig(iterations=5, modifiers_per_iteration=100, seed=6)
    )

    def run():
        ig = IGKway(csr, PartitionConfig(k=2, seed=6))
        ig.full_partition()
        affected = pseudo = 0
        for batch in trace:
            report = ig.apply(batch)
            affected += report.balance_stats.affected_marked
            pseudo += report.balance_stats.pseudo_total
        return affected, pseudo

    affected, pseudo = once(benchmark, run)
    benchmark.extra_info["affected"] = affected
    benchmark.extra_info["pseudo"] = pseudo
    assert pseudo < affected
