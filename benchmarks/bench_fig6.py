"""Figure 6: usb over incremental iterations at two k values.

Paper claims: (1) at the first iteration there is no significant
advantage (both flows just did an FGP); (2) the speedup grows with the
number of incremental iterations; (3) the cut ratio stays comparable
(within a few percent band on average) for both k values.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import once
from repro.eval.figures import build_fig6

_ITERATIONS = 25


def test_fig6_speedup_and_cut(benchmark):
    data = once(
        benchmark,
        build_fig6,
        graph="usb",
        iterations=_ITERATIONS,
        seed=0,
        k_values=(2, 4),
    )
    for k, result in data.results.items():
        speedups = result.cumulative_speedups()
        # (1) FGP-dominated start: the cumulative ratio begins small...
        assert speedups[0] < speedups[-1] / 2
        # (2) ...and grows with iteration count (compare halves).
        first_half = speedups[: _ITERATIONS // 2].mean()
        second_half = speedups[_ITERATIONS // 2 :].mean()
        assert second_half > first_half
        # (3) comparable cut quality on average.
        cut_ratios = np.array(
            [r.cut_improvement for r in result.records]
        )
        assert 0.5 < cut_ratios.mean() < 2.0
        benchmark.extra_info[f"k{k}_final_speedup"] = round(
            float(speedups[-1]), 1
        )
        benchmark.extra_info[f"k{k}_cut_ratio"] = round(
            float(cut_ratios.mean()), 3
        )
