"""Transactional-layer overhead and recovery-cost benchmark.

Measures what the fault-tolerance machinery costs on the hot path and
what a rollback costs when a batch actually fails:

* **undo-log overhead** — the same seeded incremental sweep with
  ``transactional=True`` (the default: pre-image undo log + partition
  snapshot armed on every batch) and ``transactional=False``.  The
  deterministic device-side ledger must be *identical* (the success
  path charges nothing for arming the log — the cost-parity contract
  from docs/ARCHITECTURE.md); the host overhead is reported.

* **rollback cost** — repeated failed batches (an injected mid-kernel
  abort after real writes have landed) and the modeled device seconds
  of the ``"rollback"`` ledger section per event, versus the forward
  cost of the failed attempt.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke
    PYTHONPATH=src python benchmarks/bench_chaos.py --out run.json

Also collected by pytest as a smoke test asserting the success-path
cost-parity contract.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import bench_record, partition_digest, seeded_workload
from repro.core.igkway import IGKway
from repro.core.transaction import state_digest
from repro.graph.modifiers import EdgeInsert, ModifierBatch
from repro.partition.config import PartitionConfig
from repro.utils.faultinject import FaultInjector, InjectedAbort

FULL_SCALE = {"n_vertices": 20_000, "batches": 8}
SMOKE_SCALE = {"n_vertices": 2_000, "batches": 4}


def run_sweep(n_vertices, batches, seed=7, k=8, mode="vector",
              transactional=True):
    """One incremental sweep; returns (record, ledger_totals)."""
    csr, trace = seeded_workload(n_vertices, batches, seed=seed)
    ig = IGKway(csr, PartitionConfig(k=k, mode=mode))
    ig.full_partition()
    dev_mod = dev_part = 0.0
    t0 = time.perf_counter()
    for batch in trace:
        report = ig.apply(batch, transactional=transactional)
        dev_mod += report.modification_seconds
        dev_part += report.partitioning_seconds
    sweep_total = time.perf_counter() - t0
    ledger = ig.ctx.ledger.total
    record = bench_record(
        "chaos_txn" if transactional else "chaos_raw",
        workload={
            "n_vertices": csr.num_vertices,
            "n_edges": int(csr.num_edges),
            "batches": batches,
            "k": k,
            "mode": mode,
            "seed": seed,
        },
        host_seconds={"sweep_total": sweep_total},
        device_seconds={
            "modification": dev_mod,
            "partitioning": dev_part,
        },
        ledger={
            "warp_instructions": ledger.warp_instructions,
            "transactions": ledger.transactions,
        },
        final_cut=ig.cut_size(),
        partition_sha256=partition_digest(ig.state.partition),
    )
    return record


def measure_rollback(n_vertices=2_000, events=20, seed=7, k=8,
                     mode="vector"):
    """Average modeled cost of a rollback vs its failed forward attempt."""
    csr, _trace = seeded_workload(n_vertices, 1, seed=seed)
    ig = IGKway(csr, PartitionConfig(k=k, mode=mode))
    ig.full_partition()
    injector = FaultInjector(seed)
    rng = np.random.default_rng(seed + 1)
    ledger = ig.ctx.ledger
    active = ig.graph.active_vertices()
    rollback_s = forward_s = 0.0
    fired = 0
    taken = set()
    for _ in range(events):
        mods = []
        while len(mods) < 6:
            u = int(active[rng.integers(len(active))])
            v = int(active[rng.integers(len(active))])
            if u != v and (u, v) not in taken and not ig.graph.has_edge(u, v):
                taken.add((u, v))
                taken.add((v, u))
                mods.append(EdgeInsert(u, v))
        before_total = ledger.seconds()
        before_rollback = ledger.seconds("rollback")
        try:
            with injector.kernel_abort(ig.graph, after_writes=4):
                ig.apply(ModifierBatch(mods))
        except InjectedAbort:
            fired += 1
        event_rollback = ledger.seconds("rollback") - before_rollback
        rollback_s += event_rollback
        forward_s += (ledger.seconds() - before_total) - event_rollback
    return {
        "events": fired,
        "rollback_seconds_per_event": rollback_s / max(fired, 1),
        "forward_seconds_per_event": forward_s / max(fired, 1),
    }


def run_bench(n_vertices, batches, seed=7):
    txn = run_sweep(n_vertices, batches, seed=seed, transactional=True)
    raw = run_sweep(n_vertices, batches, seed=seed, transactional=False)
    # Cost-parity contract: arming the undo log is free on the device.
    assert txn["ledger"] == raw["ledger"], (
        "transactional sweep changed the deterministic ledger: "
        f"{txn['ledger']} != {raw['ledger']}"
    )
    assert txn["partition_sha256"] == raw["partition_sha256"], (
        "transactional sweep changed the partition"
    )
    txn["rollback"] = measure_rollback(
        n_vertices=min(n_vertices, 2_000), seed=seed
    )
    txn["host_overhead_ratio"] = (
        txn["host_seconds"]["sweep_total"]
        / max(raw["host_seconds"]["sweep_total"], 1e-12)
    )
    return txn


def test_cost_parity_smoke():
    """Pytest entry point: undo log must not move the ledger."""
    record = run_bench(seed=11, **SMOKE_SCALE)
    assert record["rollback"]["events"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    record = run_bench(seed=args.seed, **scale)
    text = json.dumps(record, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
    print(
        f"\nundo-log host overhead: "
        f"{(record['host_overhead_ratio'] - 1) * 100:+.1f}% "
        f"(device ledger identical by assertion)",
        file=sys.stderr,
    )
    rollback = record["rollback"]
    print(
        f"rollback: {rollback['rollback_seconds_per_event']:.3e}s/event "
        f"vs forward {rollback['forward_seconds_per_event']:.3e}s/event",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
