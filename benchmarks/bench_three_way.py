"""Extension bench: iG-kway vs CPU-IGP vs G-kway† (three-way).

The paper's related work argues CPU incremental partitioners "can
become inefficient when handling large graphs or when affected regions
are large" and that GPU-resident applications additionally pay CPU-GPU
transfers per iteration.  This bench measures all three systems across
small and large affected regions.

Asserted shape (the honest version — see core/cpu_baseline.py):

* both incremental systems beat re-partitioning from scratch by a wide
  margin at every batch size.

The CPU-vs-GPU incremental ordering is *reported, not asserted*: at
reproduction scale both are dominated by batch-size-independent fixed
terms (the CPU's |V|-proportional transfers, the GPU's per-|V| warp
dispatch), so their relative growth with the affected region is a tie
within model noise.  The regime where the GPU pulls away — multi-
million-vertex graphs with thousands of affected vertices — is beyond
this reproduction's scale; EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro import GKwayDagger, IGKway, PartitionConfig
from repro.core.cpu_baseline import CpuIncremental
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import circuit_graph

_GRAPH_SIZE = 6000
_ITERATIONS = 6


def _run(system_name: str, modifiers: int):
    csr = circuit_graph(_GRAPH_SIZE, 1.35, seed=31)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=_ITERATIONS,
            modifiers_per_iteration=modifiers,
            seed=31,
        ),
    )
    config = PartitionConfig(k=4, seed=31)
    system = {
        "igkway": IGKway,
        "cpu": CpuIncremental,
        "fgp": GKwayDagger,
    }[system_name](csr, config)
    system.full_partition()
    total = 0.0
    for batch in trace:
        report = system.apply(batch)
        total += report.partitioning_seconds
    return total, system.cut_size()


@pytest.mark.parametrize("system_name", ["igkway", "cpu", "fgp"])
@pytest.mark.parametrize("modifiers", [10, 300])
def test_three_way(benchmark, system_name, modifiers):
    total, cut = once(benchmark, _run, system_name, modifiers)
    benchmark.extra_info["modeled_seconds"] = round(total, 5)
    benchmark.extra_info["cut"] = cut
    assert cut > 0


def test_three_way_shape(benchmark):
    def run_all():
        out = {}
        for mods in (10, 300):
            out[mods] = {
                name: _run(name, mods)[0]
                for name in ("igkway", "cpu", "fgp")
            }
        return out

    results = once(benchmark, run_all)
    for mods, by_system in results.items():
        benchmark.extra_info[f"mods{mods}"] = {
            name: round(sec, 5) for name, sec in by_system.items()
        }
        # Incremental (either kind) crushes from-scratch FGP.
        assert by_system["fgp"] > 5 * by_system["igkway"]
        assert by_system["fgp"] > 5 * by_system["cpu"]
    # Report (not assert) the growth trend with the affected region.
    benchmark.extra_info["cpu_growth"] = round(
        results[300]["cpu"] / results[10]["cpu"], 3
    )
    benchmark.extra_info["gpu_growth"] = round(
        results[300]["igkway"] / results[10]["igkway"], 3
    )
