"""Hot-path phase timings for the incremental sweep (perf harness).

Runs a seeded incremental workload (``seeded_workload``) through
``IGKway`` and reports, per phase, both

* **host seconds** — Python wall-clock of the vectorized kernels, the
  quantity the vector fast path optimizes and ``tools/perf_gate.py``
  guards against regression, and
* **device seconds** — the simulated-GPU ledger's modeled time, which
  must stay bit-identical no matter how the host code is reorganized
  (the cost-parity contract; see docs/ARCHITECTURE.md).

Phases are measured in-tree via ``repro.obs`` spans (through the
``repro.utils.timing`` compat shim) — the pipeline is instrumented
with ``span(...)`` scopes that only collect while a tracer is active
(``collect_phase_times()`` block), so production runs pay no overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --out run.json

Also collected by pytest (``pytest benchmarks/bench_hotpath.py``) as a
fast smoke test that additionally asserts warp/vector equivalence.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import bench_record, partition_digest, seeded_workload
from repro.core.backend import (
    active_backend_name,
    available_backends,
    registered_backends,
    set_backend,
)
from repro.core.igkway import IGKway
from repro.gpusim.context import GpuContext
from repro.partition.config import PartitionConfig
from repro.utils.timing import collect_phase_times

FULL_SCALE = {"n_vertices": 77_000, "batches": 10}
SMOKE_SCALE = {"n_vertices": 5_000, "batches": 5}
EQUIVALENCE_SCALE = {"n_vertices": 600, "batches": 3}


def run_hotpath(
    n_vertices: int,
    batches: int,
    seed: int = 7,
    k: int = 8,
    mode: str = "vector",
    backend: str | None = None,
) -> dict:
    """One measured incremental sweep; returns a ``repro-bench-v1``
    record (host phase seconds + deterministic device-side outputs).

    ``backend`` selects the compute backend for the sweep (restored
    afterwards); deterministic outputs must be identical under every
    backend — that is the bit-identity contract ``tools/perf_gate.py``
    certifies.
    """
    prior_backend = active_backend_name()
    if backend is not None:
        set_backend(backend)
    try:
        csr, trace = seeded_workload(n_vertices, batches, seed=seed)
        ig = IGKway(csr, PartitionConfig(k=k, mode=mode))
        ig.full_partition()

        dev_mod = dev_part = dev_cut = 0.0
        with collect_phase_times() as phases:
            t0 = time.perf_counter()
            for batch in trace:
                report = ig.apply(batch)
                dev_mod += report.modification_seconds
                dev_part += report.partitioning_seconds
                dev_cut += report.cut_maintenance_seconds
            sweep_total = time.perf_counter() - t0

        host = dict(phases)
        host["sweep_total"] = sweep_total
        ledger = ig.ctx.ledger.total
        return bench_record(
            "hotpath",
            workload={
                "n_vertices": csr.num_vertices,
                "n_edges": int(csr.num_edges),
                "batches": batches,
                "k": k,
                "mode": mode,
                "seed": seed,
                "backend": active_backend_name(),
            },
            host_seconds=host,
            device_seconds={
                "modification": dev_mod,
                "partitioning": dev_part,
                "cut_maintenance": dev_cut,
            },
            ledger={
                "warp_instructions": ledger.warp_instructions,
                "transactions": ledger.transactions,
            },
            final_cut=ig.cut_size(),
            partition_sha256=partition_digest(ig.state.partition),
        )
    finally:
        if backend is not None:
            set_backend(prior_backend)


def measure_backend_timings(
    n_vertices: int = 1_200,
    batches: int = 3,
    seed: int = 7,
    k: int = 4,
) -> dict:
    """Run the smoke sweep once per *available* compute backend.

    Asserts the bit-identity contract along the way: every backend must
    produce the same final cut, ledger counters, and partition digest —
    only host wall-clock may differ.
    """
    out: dict = {}
    reference: dict | None = None
    for name in available_backends():
        record = run_hotpath(
            n_vertices, batches, seed=seed, k=k, backend=name
        )
        out[name] = {
            "sweep_total": record["host_seconds"]["sweep_total"],
            "final_cut": record["final_cut"],
            "partition_sha256": record["partition_sha256"],
            "ledger": record["ledger"],
        }
        if reference is None:
            reference = record
        else:
            for key in ("final_cut", "partition_sha256", "ledger"):
                assert record[key] == reference[key], (
                    f"backend {name!r} diverged on {key}: "
                    f"{record[key]!r} != {reference[key]!r}"
                )
    return out


def check_mode_equivalence(
    n_vertices: int = EQUIVALENCE_SCALE["n_vertices"],
    batches: int = EQUIVALENCE_SCALE["batches"],
    seed: int = 11,
    k: int = 4,
) -> dict:
    """Run the same workload in warp and vector mode; assert the
    partitions are bit-identical.

    The two modes' *ledgers* are not compared: they model some kernels
    at different fidelity (the warp path charges per-warp, the vector
    path closed-form) and have differed since the seed — the parity
    contract is identical partitions plus each mode's own ledger being
    deterministic, not cross-mode cost equality.  Both ledgers are
    returned so callers can track them over time."""
    results = {}
    for mode in ("warp", "vector"):
        csr, trace = seeded_workload(n_vertices, batches, seed=seed)
        ig = IGKway(csr, PartitionConfig(k=k, mode=mode), ctx=GpuContext())
        ig.full_partition()
        for batch in trace:
            ig.apply(batch)
        results[mode] = {
            "partition": ig.state.partition.copy(),
            "cut": ig.cut_size(),
            "warp_instructions": ig.ctx.ledger.total.warp_instructions,
            "transactions": ig.ctx.ledger.total.transactions,
        }
    warp, vector = results["warp"], results["vector"]
    assert np.array_equal(warp["partition"], vector["partition"]), (
        "warp and vector modes diverged on the equivalence workload"
    )
    assert warp["cut"] == vector["cut"]
    return {
        "n_vertices": n_vertices,
        "batches": batches,
        "cut": int(warp["cut"]),
        "partition_sha256": partition_digest(vector["partition"]),
        "ledger": {
            mode: {
                "warp_instructions": int(r["warp_instructions"]),
                "transactions": int(r["transactions"]),
            }
            for mode, r in results.items()
        },
    }


def measure_sanitizer_overhead(
    n_vertices: int = 400,
    batches: int = 2,
    seed: int = 7,
    k: int = 4,
    mode: str = "warp",
) -> dict:
    """Run the incremental sweep bare and under shadow-memory mode.

    Two contracts are asserted, not just measured:

    * **zero-cost when disabled** — the bare run's ledger must equal the
      shadowed run's ledger exactly (instrumentation never charges), and
      both runs must produce the same cut; the only price of the
      sanitizer is host wall-clock while a session is active.
    * **race-free** — the shadowed run reports zero conflicts on the
      seeded workload (the analysis gate's bar, kept visible here).
    """
    from repro.analysis.shadow import ShadowSession, ShadowTracker

    def one_run(shadowed: bool) -> tuple[float, object, int, int]:
        csr, trace = seeded_workload(n_vertices, batches, seed=seed)
        ctx = GpuContext()
        ig = IGKway(csr, PartitionConfig(k=k, mode=mode), ctx=ctx)
        ig.full_partition()
        tracker = ShadowTracker()
        t0 = time.perf_counter()
        if shadowed:
            with ShadowSession(ctx, tracker) as session:
                session.attach_graph(ig.graph)
                session.attach_state(ig.state)
                for batch in trace:
                    ig.apply(batch)
        else:
            for batch in trace:
                ig.apply(batch)
        elapsed = time.perf_counter() - t0
        return elapsed, ctx.ledger.total, ig.cut_size(), tracker.n_conflicts

    bare_seconds, bare_ledger, bare_cut, _ = one_run(shadowed=False)
    shadow_seconds, shadow_ledger, shadow_cut, races = one_run(shadowed=True)

    assert bare_ledger.warp_instructions == shadow_ledger.warp_instructions, (
        "sanitizer charged the ledger: instrumentation must be cost-free"
    )
    assert bare_ledger.transactions == shadow_ledger.transactions
    assert bare_ledger.atomic_ops == shadow_ledger.atomic_ops
    assert bare_cut == shadow_cut, "sanitizer changed the computed partition"
    assert races == 0, f"seeded workload raced under shadow mode ({races})"

    return {
        "workload": {
            "n_vertices": n_vertices,
            "batches": batches,
            "seed": seed,
            "k": k,
            "mode": mode,
        },
        "bare_seconds": bare_seconds,
        "shadow_seconds": shadow_seconds,
        "overhead_ratio": (
            shadow_seconds / bare_seconds if bare_seconds > 0 else 0.0
        ),
        "ledger_identical": True,
        "races": races,
    }


def measure_tracing_overhead(
    n_vertices: int = 400,
    batches: int = 2,
    seed: int = 7,
    k: int = 4,
    mode: str = "vector",
) -> dict:
    """Run the incremental sweep bare and under ``repro.obs`` tracing.

    Same contract as :func:`measure_sanitizer_overhead`, for the
    tracer: with a tracer active the ledger counters and the computed
    partition must be *identical* to the bare run (spans observe cost,
    they never charge it), and the only price is host wall-clock.  The
    measured ratio is recorded next to ``sanitizer_overhead`` in the
    smoke bench record, and ``tools/obs_gate.py`` asserts the
    tracing-*off* path stays unmeasurable.
    """
    from repro.obs import Tracer

    def one_run(traced: bool) -> tuple[float, object, int, int]:
        csr, trace = seeded_workload(n_vertices, batches, seed=seed)
        ctx = GpuContext()
        ig = IGKway(csr, PartitionConfig(k=k, mode=mode), ctx=ctx)
        ig.full_partition()
        n_events = 0
        t0 = time.perf_counter()
        if traced:
            tracer = Tracer(ledger=ctx.ledger, session="bench")
            with tracer.activate():
                for batch in trace:
                    ig.apply(batch)
            n_events = len(tracer.events)
        else:
            for batch in trace:
                ig.apply(batch)
        elapsed = time.perf_counter() - t0
        return elapsed, ctx.ledger.total, ig.cut_size(), n_events

    bare_seconds, bare_ledger, bare_cut, _ = one_run(traced=False)
    traced_seconds, traced_ledger, traced_cut, events = one_run(traced=True)

    assert bare_ledger.warp_instructions == traced_ledger.warp_instructions, (
        "tracer charged the ledger: span attribution must be cost-free"
    )
    assert bare_ledger.transactions == traced_ledger.transactions
    assert bare_ledger.atomic_ops == traced_ledger.atomic_ops
    assert bare_cut == traced_cut, "tracer changed the computed partition"
    assert events > 0, "traced sweep produced no span events"

    return {
        "workload": {
            "n_vertices": n_vertices,
            "batches": batches,
            "seed": seed,
            "k": k,
            "mode": mode,
        },
        "bare_seconds": bare_seconds,
        "traced_seconds": traced_seconds,
        "overhead_ratio": (
            traced_seconds / bare_seconds if bare_seconds > 0 else 0.0
        ),
        "ledger_identical": True,
        "events": events,
    }


# -- pytest smoke entry -----------------------------------------------------


def test_hotpath_smoke():
    """Tiny sweep: phases are populated and warp == vector."""
    record = run_hotpath(n_vertices=1_200, batches=3)
    assert record["host_seconds"]["sweep_total"] > 0
    for phase in ("modifiers", "balance", "cut-size"):
        assert phase in record["host_seconds"]
    assert "cut_maintenance" in record["device_seconds"]
    check_mode_equivalence(n_vertices=400, batches=2)


def test_backend_timings_bit_identical():
    """Every available backend reproduces the same sweep outputs."""
    timings = measure_backend_timings(n_vertices=400, batches=2)
    assert "numpy" in timings


def test_sanitizer_overhead_contracts():
    """Shadow mode is ledger-neutral and the seeded sweep is race-free."""
    result = measure_sanitizer_overhead(n_vertices=300, batches=2)
    assert result["ledger_identical"]
    assert result["races"] == 0


def test_tracing_overhead_contracts():
    """An active tracer is ledger-neutral and produces span events."""
    result = measure_tracing_overhead(n_vertices=300, batches=2)
    assert result["ledger_identical"]
    assert result["events"] > 0


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload (%(default)s scale is the full sweep)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument(
        "--mode", choices=["vector", "warp"], default="vector"
    )
    parser.add_argument(
        "--backend",
        choices=registered_backends(),
        default=None,
        help="compute backend for the sweep (default: active backend)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSON record here (default: stdout only)",
    )
    parser.add_argument(
        "--no-equivalence",
        action="store_true",
        help="skip the warp-vs-vector equivalence check",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    record = run_hotpath(
        scale["n_vertices"],
        scale["batches"],
        seed=args.seed,
        k=args.k,
        mode=args.mode,
        backend=args.backend,
    )
    if not args.no_equivalence:
        record["equivalence"] = check_mode_equivalence()
    if args.smoke:
        # Per-backend smoke timings (and the bit-identity assertion
        # across every available backend).
        record["backends"] = measure_backend_timings()
        # Shadow-mode cost check rides along at smoke scale: asserts the
        # ledger is untouched by instrumentation and reports the host
        # wall-clock factor of running under the sanitizer.
        record["sanitizer_overhead"] = measure_sanitizer_overhead()
        # Same contract for the obs tracer: ledger-identical with a
        # tracer active, overhead visible as a host wall-clock ratio.
        record["tracing_overhead"] = measure_tracing_overhead()

    text = json.dumps(record, indent=2)
    if args.out is not None:
        args.out.write_text(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
