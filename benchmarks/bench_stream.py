"""Streaming-service bench: throughput and coalescing vs batch size.

The stream path adds two knobs the batch-replay experiments don't have:
the scheduler's size target and the coalescer.  This bench feeds the
same churny modifier stream (a TAU-style trace where a fraction of edge
inserts immediately flip-flop: insert, delete, re-insert — the
redundancy real ECO churn produces) through sessions with increasing
size targets and records

* host-side ingest throughput in modifiers/second,
* the coalescing ratio (work removed before it reaches the simulated
  GPU), and
* how many GPU round-trips (batches) the stream cost.

Shape claims: bigger windows coalesce at least as much as smaller ones
(more flip-flops land inside one window) and need fewer batches.  The
summary table is written to ``results/stream.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from conftest import once
from repro.eval.stream import run_stream_experiment
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeDelete, EdgeInsert, circuit_graph
from repro.partition.config import PartitionConfig
from repro.stream import SchedulerConfig, StreamSession
from repro.utils.seeding import make_rng

_BATCH_SIZES = (16, 64, 256)
_VERTICES = 1500
_ITERATIONS = 12
_MODIFIERS = 60
_FLIP_PROB = 0.3
_RESULTS = Path(__file__).resolve().parent.parent / "results"


def _churn_stream(seed: int = 7):
    """A modifier stream with genuine redundancy.

    Every edge insert flip-flops (insert, delete, insert again) with
    probability ``_FLIP_PROB``.  Each prefix of the stream stays valid,
    so any window boundary the scheduler picks is applicable, and the
    coalescer cancels the two middle operations whenever a flip-flop
    lands inside one window.
    """
    csr = circuit_graph(_VERTICES, 1.3, seed=seed)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=_ITERATIONS,
            modifiers_per_iteration=_MODIFIERS,
            seed=seed,
        ),
    )
    rng = make_rng(seed, "churn")
    stream = []
    for batch in trace:
        for modifier in batch:
            stream.append(modifier)
            if (
                isinstance(modifier, EdgeInsert)
                and rng.random() < _FLIP_PROB
            ):
                stream.append(EdgeDelete(modifier.u, modifier.v))
                stream.append(modifier)
    return csr, stream


def _run(batch_size: int):
    csr, stream = _churn_stream()
    session = StreamSession(
        csr,
        PartitionConfig(k=4, seed=7),
        scheduler=SchedulerConfig(target_batch_size=batch_size),
    )
    session.start()
    import time

    started = time.perf_counter()
    for modifier in stream:
        session.submit(modifier)
    session.drain()
    wall = time.perf_counter() - started
    metrics = session.metrics()
    return {
        "batch_size": batch_size,
        "submitted": len(stream),
        "throughput": len(stream) / wall if wall > 0 else 0.0,
        "coalescing_ratio": metrics["coalescing_ratio"],
        "batches": metrics["batches"],
        "cut": session.cut_size(),
    }


@pytest.mark.parametrize("batch_size", _BATCH_SIZES)
def test_stream_batch_size(benchmark, batch_size):
    stats = once(benchmark, _run, batch_size)
    benchmark.extra_info.update(
        {
            "throughput_mods_per_s": round(stats["throughput"]),
            "coalescing_ratio": round(stats["coalescing_ratio"], 4),
            "batches": stats["batches"],
        }
    )
    assert stats["cut"] > 0
    assert stats["batches"] >= 1


def test_stream_sweep_and_report(benchmark):
    """Sweep the size targets, assert the shape, emit results/stream.txt."""

    def run_all():
        return [_run(size) for size in _BATCH_SIZES]

    rows = once(benchmark, run_all)

    # Bigger windows -> at least as much coalescing, fewer GPU trips.
    for small, large in zip(rows, rows[1:]):
        assert large["coalescing_ratio"] >= small["coalescing_ratio"]
        assert large["batches"] <= small["batches"]
    # The churn workload gives the coalescer real work at window sizes
    # that can hold a whole flip-flop.
    assert rows[-1]["coalescing_ratio"] > 0.05

    lines = [
        "Streaming service: throughput and coalescing vs size target",
        f"(|V|={_VERTICES}, {rows[0]['submitted']} modifiers, "
        f"{_FLIP_PROB:.0%} of edge inserts flip-flop)",
        "",
        f"{'batch size':>10} {'mods/s':>10} {'coalesced':>10} "
        f"{'batches':>8} {'cut':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['batch_size']:>10} {row['throughput']:>10,.0f} "
            f"{row['coalescing_ratio']:>10.1%} {row['batches']:>8} "
            f"{row['cut']:>6}"
        )
    text = "\n".join(lines)
    _RESULTS.mkdir(parents=True, exist_ok=True)
    (_RESULTS / "stream.txt").write_text(text + "\n")
    benchmark.extra_info["report"] = text

    # The eval driver consumes the same telemetry shape.
    experiment = run_stream_experiment(
        num_vertices=400, iterations=4, modifiers_per_iteration=20
    )
    assert experiment.telemetry["batches"] >= 1
