"""Section VI.C policy bench: the adaptive FGP fallback.

The paper recommends falling back to full partitioning when modifier
volume becomes a large fraction of the graph.  This bench compares three
strategies on a *heavy* workload (batches around the quality cliff of
Figure 8):

* pure incremental iG-kway (fast, but cut drifts),
* pure G-kway† (best cut, slowest),
* the adaptive hybrid (occasional fallbacks bound the drift at a
  fraction of the baseline's cost).

Shape assertions: adaptive is much cheaper than always-FGP while its
final cut stays within a modest factor of the always-FGP cut and beats
(or matches) pure-incremental quality on heavy workloads.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro import AdaptiveIGKway, GKwayDagger, IGKway, PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import circuit_graph

_ITERATIONS = 12
_MODIFIERS = 120  # heavy: ~6% of |V| per iteration


def _run(strategy: str):
    csr = circuit_graph(2000, 1.3, seed=21)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=_ITERATIONS,
            modifiers_per_iteration=_MODIFIERS,
            seed=21,
        ),
    )
    config = PartitionConfig(k=2, seed=21)
    if strategy == "incremental":
        system = IGKway(csr, config)
    elif strategy == "baseline":
        system = GKwayDagger(csr, config)
    else:
        system = AdaptiveIGKway(
            csr, config, volume_threshold=0.25, batch_threshold=0.15
        )
    system.full_partition()
    total = 0.0
    for batch in trace:
        report = system.apply(batch)
        iteration = report.iteration if strategy == "adaptive" else report
        total += (
            iteration.modification_seconds
            + iteration.partitioning_seconds
        )
    final_cut = (
        system.cut_size()
        if strategy != "baseline"
        else system.cut_size()
    )
    fallbacks = (
        system.fallbacks_taken if strategy == "adaptive" else 0
    )
    return total, final_cut, fallbacks


@pytest.mark.parametrize(
    "strategy", ["incremental", "adaptive", "baseline"]
)
def test_adaptive_policy(benchmark, strategy):
    total, cut, fallbacks = once(benchmark, _run, strategy)
    benchmark.extra_info["modeled_seconds"] = round(total, 4)
    benchmark.extra_info["final_cut"] = cut
    benchmark.extra_info["fallbacks"] = fallbacks
    assert cut > 0


def test_adaptive_tradeoff(benchmark):
    """The hybrid sits between the extremes on cost and bounds the
    quality drift (the Section VI.C claim)."""

    def run_all():
        return {
            s: _run(s) for s in ("incremental", "adaptive", "baseline")
        }

    results = once(benchmark, run_all)
    inc_time, inc_cut, _ = results["incremental"]
    ada_time, ada_cut, ada_fallbacks = results["adaptive"]
    bl_time, bl_cut, _ = results["baseline"]
    benchmark.extra_info["times"] = {
        "incremental": round(inc_time, 4),
        "adaptive": round(ada_time, 4),
        "baseline": round(bl_time, 4),
    }
    benchmark.extra_info["cuts"] = {
        "incremental": inc_cut,
        "adaptive": ada_cut,
        "baseline": bl_cut,
    }
    # Heavy workload triggers fallbacks.
    assert ada_fallbacks >= 1
    # Cost ordering: incremental <= adaptive << always-FGP.
    assert inc_time <= ada_time
    assert ada_time < bl_time * 0.8
    # Quality: adaptive stays within a modest factor of always-FGP.
    assert ada_cut <= max(2.5 * bl_cut, bl_cut + 40)
