"""Shared helpers for the benchmark suite.

Each ``bench_*`` file regenerates one table or figure of the paper at
reduced iteration counts (so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; use ``igkway-eval`` for the full 100-iteration
protocol).  Benchmarks measure the *wall time of the reproduction* with
pytest-benchmark and additionally assert the paper's *shape* claims on
the modeled-GPU results — who wins, by roughly what factor, and how the
trend moves with k and with the modifier count.
"""

from __future__ import annotations

import pytest

from bench_common import (  # noqa: F401  (re-exported for bench scripts)
    SCHEMA,
    bench_record,
    partition_digest,
    seeded_workload,
)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment runs are seconds-long and deterministic, so one round is
    both representative and keeps the suite fast.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def run_once():
    return once
