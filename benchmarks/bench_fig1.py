"""Figure 1: the cumulative runtime advantage of IGP over FGP.

The motivation figure: as incremental iterations accumulate, the
incremental flow's total runtime stays nearly flat while the
re-partition-from-scratch flow grows linearly.  Shape assertions:

* both cumulative curves are increasing,
* the FGP curve grows much faster (the gap widens monotonically),
* the final-ratio advantage is large.
"""

from __future__ import annotations

import numpy as np

from conftest import once
from repro.eval.figures import build_fig1


def test_fig1_igp_advantage(benchmark):
    data = once(benchmark, build_fig1, graph="usb", iterations=15, seed=0)
    ig = data.igp_cumulative
    fgp = data.fgp_cumulative
    assert np.all(np.diff(ig) > 0)
    assert np.all(np.diff(fgp) > 0)
    gap = fgp - ig
    assert np.all(np.diff(gap) > 0), "FGP's disadvantage must widen"
    final_ratio = fgp[-1] / ig[-1]
    benchmark.extra_info["final_ratio"] = round(float(final_ratio), 1)
    assert final_ratio > 5
