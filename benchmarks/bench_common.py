"""Shared workload generation and result schema for the bench suite.

Every bench script draws its inputs from :func:`seeded_workload` (one
deterministic generator, so two scripts asking for the same scale and
seed measure the *same* graph and modifier trace) and reports through
:func:`bench_record` (one JSON schema, so ``tools/perf_gate.py`` and the
results post-processing can consume any bench output uniformly).

Record schema (``schema: repro-bench-v1``)::

    {
      "schema": "repro-bench-v1",
      "name": "<bench name>",
      "workload": {"n_vertices", "n_edges", "batches", "k", "mode", "seed"},
      "host_seconds": {"<phase>": float, ..., "sweep_total": float},
      "device_seconds": {"modification": float, "partitioning": float},
      "ledger": {"warp_instructions": int, "transactions": int},
      "final_cut": int,
      "partition_sha256": "<hex digest of the label array>"
    }

``host_seconds`` are wall-clock and machine-dependent; everything else
is deterministic output of the simulated GPU and must be bit-identical
across machines and runs.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.eval.workloads import (
    TraceConfig,
    auto_modifier_range,
    generate_trace,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import circuit_graph
from repro.graph.modifiers import Modifier

SCHEMA = "repro-bench-v1"


def seeded_workload(
    n_vertices: int,
    batches: int,
    seed: int = 7,
    edge_ratio: float = 1.3,
) -> tuple[CSRGraph, list[Sequence[Modifier]]]:
    """The canonical bench workload: a circuit graph plus an
    incremental modifier trace, fully determined by the arguments."""
    csr = circuit_graph(n_vertices, edge_ratio=edge_ratio, seed=seed)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=batches,
            modifiers_per_iteration=auto_modifier_range(csr.num_vertices),
            seed=seed,
        ),
    )
    return csr, trace


def partition_digest(partition: np.ndarray) -> str:
    """SHA-256 of the raw label array (bit-identity witness)."""
    return hashlib.sha256(
        np.ascontiguousarray(partition).tobytes()
    ).hexdigest()


def bench_record(
    name: str,
    *,
    workload: dict,
    host_seconds: dict,
    device_seconds: dict,
    ledger: dict,
    final_cut: int,
    partition_sha256: str,
) -> dict:
    """Assemble one result in the common schema (see module docstring)."""
    return {
        "schema": SCHEMA,
        "name": name,
        "workload": workload,
        "host_seconds": {k: float(v) for k, v in host_seconds.items()},
        "device_seconds": {
            k: float(v) for k, v in device_seconds.items()
        },
        "ledger": {k: int(v) for k, v in ledger.items()},
        "final_cut": int(final_cut),
        "partition_sha256": partition_sha256,
    }
