"""Serving bench: protocol overhead and tenant-scaling shape.

The serving layer must be plumbing, not physics: hosting a stream
behind the TCP protocol adds host-side cost (framing, JSON, the event
loop) but charges not one extra simulated device cycle, and packing
more tenants onto one shared device divides throughput without
changing any tenant's bits.  This bench measures both claims:

* **protocol overhead** — the same seeded single-tenant stream run (a)
  standalone through ``StreamSession`` and (b) hosted through
  ``ServeClient`` against an in-process server; reports host-side
  modifiers/second for each, their ratio, and asserts the device-cycle
  totals and final partition sha256 match exactly;
* **tenant scaling** — 1, 2, and 4 tenants with identical per-tenant
  workloads over one shared device; reports aggregate and per-tenant
  host throughput and the per-worker cycle-attribution residual
  (always ~0: attribution is exact by construction);
* **tracing overhead** — the per-call cost of the distributed-tracing
  hooks when tracing is *off* (no ``TraceRecorder`` configured): one
  inactive ``span()`` enter/exit plus one wire-trace parse of an
  untraced request.  Asserted under ``MAX_DISABLED_TRACING_NS`` — the
  same bound ``tools/obs_gate.py --max-off-ns`` enforces — so the PR 10
  tracing plumbing stays free for servers that never turn it on.

Host numbers are wall clock and machine-dependent; every cycle count
and digest in the record is deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graph.generators import circuit_graph  # noqa: E402
from repro.graph.modifiers import EdgeInsert  # noqa: E402
from repro.obs.distrib import parse_wire_trace  # noqa: E402
from repro.obs.tracer import span  # noqa: E402
from repro.partition.config import PartitionConfig  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    ServerConfig,
    ServerThread,
    partition_sha256,
)
from repro.stream.scheduler import ledger_cycles  # noqa: E402
from repro.stream.session import StreamSession  # noqa: E402

SMOKE_SCALE = {"n_vertices": 400, "modifiers": 120, "chunk": 10}
FULL_SCALE = {"n_vertices": 1500, "modifiers": 600, "chunk": 25}

GRAPH_SEED = 11
PARTITION_SEED = 3
K = 4

#: Per-call budget for the disabled tracing path, matching the bound
#: ``tools/obs_gate.py --max-off-ns`` holds the span tracer to.
MAX_DISABLED_TRACING_NS = 5000.0


def _graph_spec(n_vertices: int) -> dict:
    return {
        "generator": "circuit",
        "args": {
            "num_vertices": n_vertices,
            "edge_ratio": 1.4,
            "seed": GRAPH_SEED,
        },
    }


def _stream(n_vertices: int, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        u = int(rng.integers(0, n_vertices))
        v = int(rng.integers(0, n_vertices))
        if u == v:
            v = (v + 1) % n_vertices
        out.append(EdgeInsert(u=u, v=v))
    return out


def run_standalone(scale: dict, tmp: Path) -> dict:
    csr = circuit_graph(**_graph_spec(scale["n_vertices"])["args"])
    session = StreamSession(
        csr,
        PartitionConfig(k=K, seed=PARTITION_SEED),
        journal_dir=tmp / "standalone",
        policy="reject",
    )
    session.start()
    modifiers = _stream(scale["n_vertices"], scale["modifiers"], seed=5)
    start = time.perf_counter()
    for modifier in modifiers:
        session.submit(modifier)
    session.drain()
    elapsed = time.perf_counter() - start
    record = {
        "host_seconds": elapsed,
        "modifiers_per_second": len(modifiers) / max(elapsed, 1e-12),
        "device_cycles": ledger_cycles(session.partitioner.ctx.ledger),
        "sha256": partition_sha256(session.partition),
    }
    session.close()
    return record


def run_hosted(scale: dict, tenants: int) -> dict:
    modifiers = _stream(scale["n_vertices"], scale["modifiers"], seed=5)
    names = [f"t{i}" for i in range(tenants)]
    with ServerThread(ServerConfig(workers=1)) as server:
        clients = {
            name: ServeClient(
                "127.0.0.1", server.tcp_port, tenant=name
            )
            for name in names
        }
        for name in names:
            clients[name].create(
                "main",
                _graph_spec(scale["n_vertices"]),
                k=K,
                seed=PARTITION_SEED,
            )
        start = time.perf_counter()
        chunk = scale["chunk"]
        for offset in range(0, len(modifiers), chunk):
            for name in names:
                clients[name].submit(
                    "main", modifiers[offset : offset + chunk]
                )
        for name in names:
            clients[name].flush("main", drain=True)
        elapsed = time.perf_counter() - start
        digests = {
            name: clients[name].digest("main")["sha256"]
            for name in names
        }
        stats = clients[names[0]].stats()
        for client in clients.values():
            client.close()
    worker = stats["workers"][0]
    residual = abs(
        sum(worker["cycles_by_tenant"].values())
        - worker["total_cycles"]
    )
    total_modifiers = len(modifiers) * tenants
    return {
        "tenants": tenants,
        "host_seconds": elapsed,
        "modifiers_per_second": total_modifiers / max(elapsed, 1e-12),
        "per_tenant_modifiers_per_second": (
            len(modifiers) / max(elapsed, 1e-12)
        ),
        "device_cycles_total": worker["total_cycles"],
        "attribution_residual": residual,
        "sha256": digests[names[0]],
        "digests_identical": len(set(digests.values())) == 1,
    }


def run_tracing_overhead(iterations: int = 50_000) -> dict:
    """Cost of the tracing hooks when no recorder is configured.

    Measures the two per-request hooks an untraced server still
    executes: an inactive ``span()`` (one global read) and
    ``parse_wire_trace`` on a request that carries no ``"trace"``
    field.  Both are pure host cost; the assertion pins their sum.
    """
    request = {"op": "submit", "session": "bench"}
    start = time.perf_counter_ns()
    for _ in range(iterations):
        with span("serve.bench.probe"):
            pass
    span_off_ns = (time.perf_counter_ns() - start) / iterations
    start = time.perf_counter_ns()
    for _ in range(iterations):
        parse_wire_trace(request)
    wire_parse_ns = (time.perf_counter_ns() - start) / iterations
    per_call = span_off_ns + wire_parse_ns
    if per_call >= MAX_DISABLED_TRACING_NS:
        raise AssertionError(
            f"disabled tracing path costs {per_call:.0f} ns/call, "
            f"over the {MAX_DISABLED_TRACING_NS:.0f} ns budget"
        )
    return {
        "iterations": iterations,
        "span_off_ns": span_off_ns,
        "wire_parse_ns": wire_parse_ns,
        "per_call_ns": per_call,
        "max_ns": MAX_DISABLED_TRACING_NS,
    }


def run_bench(scale: dict, tmp: Path) -> dict:
    standalone = run_standalone(scale, tmp)
    hosted = run_hosted(scale, tenants=1)
    if hosted["sha256"] != standalone["sha256"]:
        raise AssertionError(
            "hosted single-tenant digest diverged from standalone: "
            f"{hosted['sha256'][:16]} != {standalone['sha256'][:16]}"
        )
    scaling = [hosted] + [
        run_hosted(scale, tenants=n) for n in (2, 4)
    ]
    for row in scaling:
        if not row["digests_identical"]:
            raise AssertionError(
                f"{row['tenants']}-tenant run: identical workloads "
                "produced different digests"
            )
    return {
        "schema": "repro-bench-v1",
        "name": "serve",
        "workload": {
            "n_vertices": scale["n_vertices"],
            "modifiers": scale["modifiers"],
            "chunk": scale["chunk"],
            "k": K,
            "graph_seed": GRAPH_SEED,
            "partition_seed": PARTITION_SEED,
        },
        "standalone": standalone,
        "hosted": scaling,
        "serve_tracing_overhead": run_tracing_overhead(),
        "protocol_overhead_ratio": (
            standalone["modifiers_per_second"]
            / max(scaling[0]["modifiers_per_second"], 1e-12)
        ),
    }


def test_serve_bench_smoke(tmp_path):
    """Pytest entry point: hosting must not change bits or cycles."""
    record = run_bench(SMOKE_SCALE, tmp_path)
    assert record["standalone"]["sha256"] == record["hosted"][0]["sha256"]
    assert all(r["attribution_residual"] < 1.0 for r in record["hosted"])
    overhead = record["serve_tracing_overhead"]
    assert overhead["per_call_ns"] < MAX_DISABLED_TRACING_NS


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        record = run_bench(scale, Path(tmp))
    text = json.dumps(record, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
    print(
        f"\nprotocol overhead: standalone is "
        f"{record['protocol_overhead_ratio']:.2f}x the hosted "
        "throughput (host-side only; device cycles and bits identical "
        "by assertion)",
        file=sys.stderr,
    )
    for row in record["hosted"]:
        print(
            f"{row['tenants']} tenant(s): "
            f"{row['modifiers_per_second']:.0f} mods/s aggregate, "
            f"{row['per_tenant_modifiers_per_second']:.0f} per tenant, "
            f"attribution residual {row['attribution_residual']:.3g}",
            file=sys.stderr,
        )
    overhead = record["serve_tracing_overhead"]
    print(
        f"disabled tracing path: {overhead['per_call_ns']:.0f} ns/call "
        f"(span {overhead['span_off_ns']:.0f} + wire parse "
        f"{overhead['wire_parse_ns']:.0f}; budget "
        f"{overhead['max_ns']:.0f})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
