"""Figure 7: speedup and cut improvement at k in {2, 4, 8, 16, 32}.

Paper claims: iG-kway is consistently faster regardless of k; the
speedup *decreases* as k grows (each affected vertex must examine more
candidate partitions, Algorithm 4's per-partition rescans); it remains
well above 1 even at k = 32; and the cut stays comparable at every k.

Two graphs stand in for the paper's four (tv80's circuit class and
adaptive's mesh class); the full sweep is ``igkway-eval fig7``.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.eval.figures import build_fig7

_K_VALUES = (2, 8, 32)


@pytest.mark.parametrize("graph", ["tv80", "adaptive"])
def test_fig7_k_sweep(benchmark, graph):
    data = once(
        benchmark,
        build_fig7,
        graphs=(graph,),
        k_values=_K_VALUES,
        iterations=4,
        seed=0,
    )
    by_k = data.results[graph]
    speedups = {k: by_k[k].part_speedup for k in _K_VALUES}
    for k in _K_VALUES:
        benchmark.extra_info[f"speedup_k{k}"] = round(speedups[k], 1)
        # Consistently faster at every k, including k = 32.
        assert speedups[k] > 3, f"k={k}: {speedups[k]:.1f}x"
        # Comparable cut at every k.
        assert 0.3 < by_k[k].cut_improvement < 3.5
    if graph == "tv80":
        # Circuit graphs reproduce the paper's declining k-curve: the
        # per-partition bucket rescans of Algorithm 4 are a visible
        # fraction of iG-kway's iteration cost.
        assert speedups[2] > speedups[32], (
            f"speedup should fall with k: {speedups}"
        )
    else:
        # Known scale deviation (EXPERIMENTS.md): on the large mesh the
        # k-independent |V|-warp dispatch dominates iG-kway's cost at
        # reproduction scale, so the curve flattens instead of falling.
        # We assert bounded variation rather than strict decline.
        assert speedups[32] < speedups[2] * 1.4, (
            f"k=32 should not outgrow k=2 substantially: {speedups}"
        )
