"""Table I: iG-kway vs G-kway† on all ten benchmark graphs (k = 2).

The paper reports, per graph, modification time, partitioning time, the
partitioning speedup and the cut sizes, averaged over 100 iterations.
Here each graph runs a reduced number of iterations (the per-iteration
behavior is stationary); the full table is produced by
``igkway-eval table1``.

Shape assertions per row:
* iG-kway's modeled partitioning time beats G-kway†'s by a large factor,
* iG-kway's modeled modification time beats G-kway†'s on large graphs
  (CSR rebuild cost grows with |E|; bucket-list updates do not),
* cut sizes are comparable (ratio within a loose band around 1).
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.eval.runner import run_experiment
from repro.eval.tables import TABLE1_GRAPHS

#: Reduced iteration counts: big graphs get fewer baseline repartitions.
_ITERATIONS = {
    "mem_ctrl": 2,
    "wb_dma": 3,
    "systemcase": 3,
    "adaptive": 3,
    "NLR": 3,
}
_DEFAULT_ITERATIONS = 5


@pytest.mark.parametrize("name", TABLE1_GRAPHS)
def test_table1_row(benchmark, name):
    iterations = _ITERATIONS.get(name, _DEFAULT_ITERATIONS)
    result = once(
        benchmark,
        run_experiment,
        name,
        k=2,
        iterations=iterations,
        modifiers_per_iteration="auto",
        seed=0,
    )
    benchmark.extra_info["part_speedup"] = round(result.part_speedup, 2)
    benchmark.extra_info["mod_speedup"] = round(result.mod_speedup, 2)
    benchmark.extra_info["cut_improvement"] = round(
        result.cut_improvement, 3
    )
    benchmark.extra_info["ig_cut"] = result.ig_cut_mean
    benchmark.extra_info["bl_cut"] = result.bl_cut_mean

    # Who wins: iG-kway, by a large factor, on every graph.
    assert result.part_speedup > 8, (
        f"{name}: partitioning speedup {result.part_speedup:.1f}x too low"
    )
    # Comparable cut size (Table I's Impr. column stays near 1.0).
    assert 0.4 < result.cut_improvement < 3.0, (
        f"{name}: cut ratio {result.cut_improvement:.2f} out of band"
    )
    # Modification: the bucket list wins clearly on graphs with a
    # substantial rebuild cost.
    if result.num_edges > 20_000:
        assert result.mod_speedup > 2, (
            f"{name}: modification speedup {result.mod_speedup:.1f}x"
        )
