"""Figure 8: usb with varying numbers of modifiers per iteration.

Paper claims: the advantage is most pronounced for small batches; the
speedup decreases as the modifier count per iteration grows (more
affected vertices to refine); and at very large batches the incremental
cut quality degrades, to the point where falling back to FGP is advised.

The sweep spans 0.25%-25% of |V| per iteration on the scaled usb graph
(matching the relative range of the paper's 50-5K on the 139k-vertex
usb; see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import once
from repro.eval.figures import build_fig8

_COUNTS = (5, 50, 500)


def test_fig8_modifier_sweep(benchmark):
    data = once(
        benchmark,
        build_fig8,
        graph="usb",
        modifier_counts=_COUNTS,
        iterations=8,
        seed=0,
    )
    speedups = {m: data.results[m].part_speedup for m in _COUNTS}
    for m in _COUNTS:
        benchmark.extra_info[f"speedup_{m}mods"] = round(speedups[m], 1)
        assert speedups[m] > 3
    # The advantage shrinks as batches grow.
    assert speedups[5] > speedups[500], f"shape violated: {speedups}"
    # Small batches: iG-kway's cut stays comparable.
    assert 0.5 < data.results[5].cut_improvement < 2.5
